// In-memory filesystem model for guest root filesystems. The SODA Daemon's
// rootfs customization (paper §4.3) manipulates this tree: pruning /etc
// service entries and unneeded libraries, and measuring the resulting image
// size to decide RAM-disk eligibility.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/format.hpp"
#include "util/result.hpp"

namespace soda::os {

enum class FileType { kRegular, kDirectory };

/// Metadata returned by FileSystem::stat.
struct FileInfo {
  FileType type = FileType::kRegular;
  std::int64_t size_bytes = 0;  // 0 for directories
};

/// A rooted tree of directories and sized regular files, addressed by
/// absolute slash-separated paths ("/etc/init.d/httpd"). File *content* is
/// not stored — only structure and size, which is all the priming pipeline
/// needs.
class FileSystem {
 public:
  FileSystem();
  // Deep-copying a filesystem is meaningful (image replication onto nodes).
  FileSystem(const FileSystem& other);
  FileSystem& operator=(const FileSystem& other);
  FileSystem(FileSystem&&) noexcept = default;
  FileSystem& operator=(FileSystem&&) noexcept = default;
  ~FileSystem() = default;

  /// Creates a directory and any missing ancestors. Fails if a regular file
  /// is in the way.
  Status mkdir_p(std::string_view path);

  /// Creates or replaces a regular file, creating ancestor directories.
  /// Fails if the path names an existing directory.
  Status add_file(std::string_view path, std::int64_t size_bytes);

  /// Removes a file or directory subtree. Fails if the path does not exist
  /// or names the root.
  Status remove(std::string_view path);

  [[nodiscard]] bool exists(std::string_view path) const;
  [[nodiscard]] std::optional<FileInfo> stat(std::string_view path) const;

  /// Immediate children names of a directory (sorted); error for files or
  /// missing paths.
  Result<std::vector<std::string>> list(std::string_view path) const;

  /// All regular-file paths under `path` (depth-first, sorted per level).
  [[nodiscard]] std::vector<std::string> files_under(std::string_view path) const;

  /// Sum of all regular-file sizes.
  [[nodiscard]] std::int64_t total_size() const noexcept;

  /// Number of regular files.
  [[nodiscard]] std::size_t file_count() const noexcept;

  /// Copies the subtree rooted at `src_path` in `src` to `dst_path` here
  /// (merging into existing directories).
  Status copy_from(const FileSystem& src, std::string_view src_path,
                   std::string_view dst_path);

  /// Splits "/a/b/c" into {"a","b","c"}; rejects empty components and
  /// non-absolute paths.
  static Result<std::vector<std::string>> split_path(std::string_view path);

  /// Checkpoints the whole tree (structure + sizes — content is never
  /// stored). Children serialize in map order, so save is deterministic.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  struct Node {
    FileType type = FileType::kDirectory;
    std::int64_t size_bytes = 0;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  static std::unique_ptr<Node> clone(const Node& node);
  Node* find(std::string_view path) const;
  /// Walks to the parent of `path`, creating directories; returns
  /// (parent, leaf name) or error.
  Result<std::pair<Node*, std::string>> walk_to_parent(std::string_view path,
                                                       bool create);
  static void collect_files(const Node& node, const std::string& prefix,
                            std::vector<std::string>& out);
  static std::int64_t subtree_size(const Node& node) noexcept;
  static std::size_t subtree_files(const Node& node) noexcept;
  static void copy_tree(const Node& from, Node& into);

  std::unique_ptr<Node> root_;
};

}  // namespace soda::os
