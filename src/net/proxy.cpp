#include "net/proxy.hpp"

#include "util/contract.hpp"

namespace soda::net {

ProxyTable::ProxyTable(std::string host_name, Ipv4Address public_address,
                       int first_port, int port_count)
    : host_name_(std::move(host_name)),
      public_(public_address),
      first_port_(first_port),
      port_count_(port_count),
      next_port_(first_port) {
  SODA_EXPECTS(first_port > 0 && first_port + port_count <= 65536);
  SODA_EXPECTS(port_count >= 1);
}

Result<int> ProxyTable::forward(ProxyTarget target) {
  // Scan from the cursor for a free port; wrap once.
  for (int probe = 0; probe < port_count_; ++probe) {
    const int port = first_port_ + (next_port_ - first_port_ + probe) % port_count_;
    if (table_.count(port) == 0) {
      table_.emplace(port, Entry{target, 0, false});
      next_port_ = port + 1;
      if (next_port_ >= first_port_ + port_count_) next_port_ = first_port_;
      return port;
    }
  }
  return Error{"proxy@" + host_name_ + ": public port range exhausted"};
}

Status ProxyTable::forward_on(int public_port, ProxyTarget target) {
  if (public_port < first_port_ || public_port >= first_port_ + port_count_) {
    return Error{"proxy@" + host_name_ + ": port " + std::to_string(public_port) +
                 " outside managed range"};
  }
  auto [it, inserted] = table_.emplace(public_port, Entry{target, 0, false});
  (void)it;
  if (!inserted) {
    return Error{"proxy@" + host_name_ + ": port " + std::to_string(public_port) +
                 " already forwarded"};
  }
  return {};
}

bool ProxyTable::remove(int public_port) { return table_.erase(public_port) > 0; }

bool ProxyTable::begin_drain(int public_port) {
  auto it = table_.find(public_port);
  if (it == table_.end()) return false;
  if (it->second.active == 0) {
    table_.erase(it);
  } else {
    it->second.draining = true;
  }
  return true;
}

void ProxyTable::connection_closed(int public_port) {
  auto it = table_.find(public_port);
  if (it == table_.end()) return;
  SODA_EXPECTS(it->second.active > 0);
  --it->second.active;
  if (it->second.draining && it->second.active == 0) table_.erase(it);
}

std::optional<ProxyTarget> ProxyTable::forward_lookup(int public_port) {
  auto it = table_.find(public_port);
  if (it == table_.end() || it->second.draining) {
    ++missed_;
    return std::nullopt;
  }
  ++forwarded_;
  ++it->second.active;
  return it->second.target;
}

std::optional<ProxyTarget> ProxyTable::peek(int public_port) const {
  auto it = table_.find(public_port);
  if (it == table_.end()) return std::nullopt;
  return it->second.target;
}

bool ProxyTable::draining(int public_port) const {
  auto it = table_.find(public_port);
  return it != table_.end() && it->second.draining;
}

}  // namespace soda::net
