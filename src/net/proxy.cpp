#include "net/proxy.hpp"

#include "util/contract.hpp"

namespace soda::net {

ProxyTable::ProxyTable(std::string host_name, Ipv4Address public_address,
                       int first_port, int port_count)
    : host_name_(std::move(host_name)),
      public_(public_address),
      first_port_(first_port),
      port_count_(port_count),
      next_port_(first_port),
      slots_(static_cast<std::size_t>(port_count)) {
  SODA_EXPECTS(first_port > 0 && first_port + port_count <= 65536);
  SODA_EXPECTS(port_count >= 1);
}

ProxyTable::Entry* ProxyTable::slot(int public_port) noexcept {
  if (public_port < first_port_ || public_port >= first_port_ + port_count_) {
    return nullptr;
  }
  return &slots_[static_cast<std::size_t>(public_port - first_port_)];
}

const ProxyTable::Entry* ProxyTable::slot(int public_port) const noexcept {
  if (public_port < first_port_ || public_port >= first_port_ + port_count_) {
    return nullptr;
  }
  return &slots_[static_cast<std::size_t>(public_port - first_port_)];
}

void ProxyTable::erase(Entry& entry) noexcept {
  entry = Entry{};
  --entries_;
}

Result<int> ProxyTable::forward(ProxyTarget target) {
  // Scan from the cursor for a free port; wrap once.
  for (int probe = 0; probe < port_count_; ++probe) {
    const int port = first_port_ + (next_port_ - first_port_ + probe) % port_count_;
    Entry& entry = slots_[static_cast<std::size_t>(port - first_port_)];
    if (!entry.in_use) {
      entry = Entry{target, 0, true, false};
      ++entries_;
      next_port_ = port + 1;
      if (next_port_ >= first_port_ + port_count_) next_port_ = first_port_;
      return port;
    }
  }
  return Error{"proxy@" + host_name_ + ": public port range exhausted"};
}

Status ProxyTable::forward_on(int public_port, ProxyTarget target) {
  Entry* entry = slot(public_port);
  if (!entry) {
    return Error{"proxy@" + host_name_ + ": port " + std::to_string(public_port) +
                 " outside managed range"};
  }
  if (entry->in_use) {
    return Error{"proxy@" + host_name_ + ": port " + std::to_string(public_port) +
                 " already forwarded"};
  }
  *entry = Entry{target, 0, true, false};
  ++entries_;
  return {};
}

bool ProxyTable::remove(int public_port) {
  Entry* entry = slot(public_port);
  if (!entry || !entry->in_use) return false;
  erase(*entry);
  return true;
}

bool ProxyTable::begin_drain(int public_port) {
  Entry* entry = slot(public_port);
  if (!entry || !entry->in_use) return false;
  if (entry->active == 0) {
    erase(*entry);
  } else {
    entry->draining = true;
  }
  return true;
}

void ProxyTable::connection_closed(int public_port) {
  Entry* entry = slot(public_port);
  if (!entry || !entry->in_use) return;
  SODA_EXPECTS(entry->active > 0);
  --entry->active;
  if (entry->draining && entry->active == 0) erase(*entry);
}

std::optional<ProxyTarget> ProxyTable::forward_lookup(int public_port) {
  Entry* entry = slot(public_port);
  if (!entry || !entry->in_use || entry->draining) {
    ++missed_;
    return std::nullopt;
  }
  ++forwarded_;
  ++entry->active;
  return entry->target;
}

std::optional<ProxyTarget> ProxyTable::peek(int public_port) const {
  const Entry* entry = slot(public_port);
  if (!entry || !entry->in_use) return std::nullopt;
  return entry->target;
}

bool ProxyTable::draining(int public_port) const {
  const Entry* entry = slot(public_port);
  return entry != nullptr && entry->in_use && entry->draining;
}

void ProxyTable::save_state(snapshot::Writer& writer) const {
  writer.begin_section("proxy");
  writer.u32(public_.value());
  writer.i64(first_port_);
  writer.i64(port_count_);
  writer.i64(next_port_);
  writer.u64(entries_);
  std::uint64_t in_use = 0;
  for (const Entry& entry : slots_) in_use += entry.in_use ? 1 : 0;
  writer.u64(in_use);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Entry& entry = slots_[i];
    if (!entry.in_use) continue;
    writer.u64(i);
    writer.u32(entry.target.private_address.value());
    writer.i64(entry.target.private_port);
    writer.u64(entry.active);
    writer.boolean(entry.draining);
  }
  writer.u64(forwarded_);
  writer.u64(missed_);
  writer.end_section();
}

void ProxyTable::load_state(snapshot::Reader& reader) {
  reader.begin_section("proxy");
  const std::uint32_t public_address = reader.u32();
  const std::int64_t first_port = reader.i64();
  const std::int64_t port_count = reader.i64();
  if (reader.ok() && (public_address != public_.value() ||
                      first_port != first_port_ || port_count != port_count_)) {
    reader.fail("proxy table range mismatch");
    return;
  }
  next_port_ = static_cast<int>(reader.i64());
  entries_ = reader.u64();
  for (Entry& entry : slots_) entry = Entry{};
  const std::uint64_t in_use = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < in_use; ++i) {
    const std::uint64_t index = reader.u64();
    if (index >= slots_.size()) {
      reader.fail("proxy slot index out of range");
      return;
    }
    Entry& entry = slots_[index];
    entry.in_use = true;
    entry.target.private_address = Ipv4Address{reader.u32()};
    entry.target.private_port = static_cast<int>(reader.i64());
    entry.active = reader.u64();
    entry.draining = reader.boolean();
  }
  forwarded_ = reader.u64();
  missed_ = reader.u64();
  reader.end_section();
}

}  // namespace soda::net
