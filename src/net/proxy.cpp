#include "net/proxy.hpp"

#include "util/contract.hpp"

namespace soda::net {

ProxyTable::ProxyTable(std::string host_name, Ipv4Address public_address,
                       int first_port, int port_count)
    : host_name_(std::move(host_name)),
      public_(public_address),
      first_port_(first_port),
      port_count_(port_count),
      next_port_(first_port),
      slots_(static_cast<std::size_t>(port_count)) {
  SODA_EXPECTS(first_port > 0 && first_port + port_count <= 65536);
  SODA_EXPECTS(port_count >= 1);
}

ProxyTable::Entry* ProxyTable::slot(int public_port) noexcept {
  if (public_port < first_port_ || public_port >= first_port_ + port_count_) {
    return nullptr;
  }
  return &slots_[static_cast<std::size_t>(public_port - first_port_)];
}

const ProxyTable::Entry* ProxyTable::slot(int public_port) const noexcept {
  if (public_port < first_port_ || public_port >= first_port_ + port_count_) {
    return nullptr;
  }
  return &slots_[static_cast<std::size_t>(public_port - first_port_)];
}

void ProxyTable::erase(Entry& entry) noexcept {
  entry = Entry{};
  --entries_;
}

Result<int> ProxyTable::forward(ProxyTarget target) {
  // Scan from the cursor for a free port; wrap once.
  for (int probe = 0; probe < port_count_; ++probe) {
    const int port = first_port_ + (next_port_ - first_port_ + probe) % port_count_;
    Entry& entry = slots_[static_cast<std::size_t>(port - first_port_)];
    if (!entry.in_use) {
      entry = Entry{target, 0, true, false};
      ++entries_;
      next_port_ = port + 1;
      if (next_port_ >= first_port_ + port_count_) next_port_ = first_port_;
      return port;
    }
  }
  return Error{"proxy@" + host_name_ + ": public port range exhausted"};
}

Status ProxyTable::forward_on(int public_port, ProxyTarget target) {
  Entry* entry = slot(public_port);
  if (!entry) {
    return Error{"proxy@" + host_name_ + ": port " + std::to_string(public_port) +
                 " outside managed range"};
  }
  if (entry->in_use) {
    return Error{"proxy@" + host_name_ + ": port " + std::to_string(public_port) +
                 " already forwarded"};
  }
  *entry = Entry{target, 0, true, false};
  ++entries_;
  return {};
}

bool ProxyTable::remove(int public_port) {
  Entry* entry = slot(public_port);
  if (!entry || !entry->in_use) return false;
  erase(*entry);
  return true;
}

bool ProxyTable::begin_drain(int public_port) {
  Entry* entry = slot(public_port);
  if (!entry || !entry->in_use) return false;
  if (entry->active == 0) {
    erase(*entry);
  } else {
    entry->draining = true;
  }
  return true;
}

void ProxyTable::connection_closed(int public_port) {
  Entry* entry = slot(public_port);
  if (!entry || !entry->in_use) return;
  SODA_EXPECTS(entry->active > 0);
  --entry->active;
  if (entry->draining && entry->active == 0) erase(*entry);
}

std::optional<ProxyTarget> ProxyTable::forward_lookup(int public_port) {
  Entry* entry = slot(public_port);
  if (!entry || !entry->in_use || entry->draining) {
    ++missed_;
    return std::nullopt;
  }
  ++forwarded_;
  ++entry->active;
  return entry->target;
}

std::optional<ProxyTarget> ProxyTable::peek(int public_port) const {
  const Entry* entry = slot(public_port);
  if (!entry || !entry->in_use) return std::nullopt;
  return entry->target;
}

bool ProxyTable::draining(int public_port) const {
  const Entry* entry = slot(public_port);
  return entry != nullptr && entry->in_use && entry->draining;
}

}  // namespace soda::net
