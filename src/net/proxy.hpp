// Proxying as the alternative to bridging (paper §3.3 footnote 3): when
// public IP addresses are scarce, a virtual service node keeps a reserved
// (private) address and becomes reachable through a port on the HUP host's
// public address. The ProxyTable is the host-OS forwarding table the SODA
// Daemon programs: public port -> (private address, private port).
//
// The table is a dense per-port slot array over the managed range, sized
// once at construction: the per-connection forward_lookup() is a bounds
// check plus an index — no tree walk, no allocation — matching the
// allocation-free switch data plane it sits in front of.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "snapshot/format.hpp"
#include "util/result.hpp"

namespace soda::net {

/// A private endpoint behind the proxy.
struct ProxyTarget {
  Ipv4Address private_address;
  int private_port = 0;

  friend bool operator==(const ProxyTarget&, const ProxyTarget&) = default;
};

/// One HUP host's port-forwarding table. Public ports are allocated from
/// [first_port, first_port + port_count); explicit ports may also be
/// requested.
class ProxyTable {
 public:
  /// `public_address` is the host address clients connect to.
  ProxyTable(std::string host_name, Ipv4Address public_address,
             int first_port = 20000, int port_count = 1000);

  [[nodiscard]] Ipv4Address public_address() const noexcept { return public_; }
  [[nodiscard]] const std::string& host_name() const noexcept { return host_name_; }

  /// Installs a forwarding entry on an automatically allocated public port;
  /// returns that port. Fails when the port range is exhausted.
  Result<int> forward(ProxyTarget target);

  /// Installs a forwarding entry on a specific public port; fails when the
  /// port is outside the range or already taken.
  Status forward_on(int public_port, ProxyTarget target);

  /// Removes the entry for `public_port` immediately, in-flight connections
  /// or not; false when absent.
  bool remove(int public_port);

  /// Graceful removal: the entry stops accepting new connections now and is
  /// erased when its last in-flight connection closes (immediately when
  /// idle). False when absent.
  bool begin_drain(int public_port);

  /// A connection previously handed out by forward_lookup closed. Erases
  /// the entry when it is draining and this was its last connection.
  void connection_closed(int public_port);

  /// The private endpoint behind `public_port`, if mapped and not draining.
  /// Counts the lookup as a forwarded connection when found (draining
  /// entries count as misses — the port is closing to new traffic).
  std::optional<ProxyTarget> forward_lookup(int public_port);

  /// Read-only lookup (no counter; draining entries still visible).
  [[nodiscard]] std::optional<ProxyTarget> peek(int public_port) const;
  [[nodiscard]] bool draining(int public_port) const;

  [[nodiscard]] std::size_t entry_count() const noexcept { return entries_; }
  [[nodiscard]] std::uint64_t connections_forwarded() const noexcept {
    return forwarded_;
  }
  [[nodiscard]] std::uint64_t lookups_missed() const noexcept { return missed_; }

  /// Checkpoints the forwarding slots, the next-port cursor, and the
  /// counters. load_state expects a table over the same port range.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  struct Entry {
    ProxyTarget target;
    std::uint64_t active = 0;  // connections handed out and not yet closed
    bool in_use = false;
    bool draining = false;
  };

  /// The slot for `public_port`, or nullptr when outside the managed range.
  [[nodiscard]] Entry* slot(int public_port) noexcept;
  [[nodiscard]] const Entry* slot(int public_port) const noexcept;
  void erase(Entry& entry) noexcept;

  std::string host_name_;
  Ipv4Address public_;
  int first_port_;
  int port_count_;
  int next_port_;
  std::vector<Entry> slots_;  // dense, index = public_port - first_port_
  std::size_t entries_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t missed_ = 0;
};

}  // namespace soda::net
