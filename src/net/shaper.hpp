// Outbound traffic shaping (paper §4.2, "Network bandwidth isolation"): a
// token-bucket abstraction plus the per-IP shaper the SODA Daemon installs in
// the host OS. Shaping keys on the source IP of outgoing packets, i.e. on the
// virtual service node, and is realized in the flow network as a per-IP
// virtual bottleneck link that every outbound flow of that node must cross.
#pragma once

#include <map>
#include <optional>

#include "net/address.hpp"
#include "net/flow_network.hpp"
#include "sim/time.hpp"
#include "snapshot/format.hpp"

namespace soda::net {

/// Classic token bucket: `rate` tokens (bytes) accrue per second up to
/// `burst`. Used directly for per-packet admission in unit tests and as the
/// reference model for the flow-level shaper.
class TokenBucket {
 public:
  /// rate_bytes_per_sec > 0; burst_bytes >= 1.
  TokenBucket(double rate_bytes_per_sec, double burst_bytes);

  /// Consumes `bytes` tokens if available at `now`; returns success.
  bool try_consume(double bytes, sim::SimTime now);

  /// Time at which `bytes` tokens will be available (may be `now`).
  [[nodiscard]] sim::SimTime available_at(double bytes, sim::SimTime now) const;

  /// Tokens currently in the bucket at `now`.
  [[nodiscard]] double tokens(sim::SimTime now) const;

  [[nodiscard]] double rate() const noexcept { return rate_; }
  [[nodiscard]] double burst() const noexcept { return burst_; }

 private:
  void refill(sim::SimTime now) const;

  double rate_;
  double burst_;
  mutable double tokens_;
  mutable sim::SimTime last_refill_;
};

/// Per-source-IP outbound bandwidth enforcement for one HUP host. Each shaped
/// IP owns a virtual link in the flow network; flows originating from that IP
/// include the link in their path, so the node's aggregate outbound rate can
/// never exceed its allocation no matter how many flows it opens.
class TrafficShaper {
 public:
  explicit TrafficShaper(FlowNetwork& network) : network_(network) {}

  /// Installs or updates the outbound limit for `address`.
  void configure(Ipv4Address address, double limit_mbps);

  /// Removes shaping for `address` (subsequent flows are unshaped).
  /// Returns false if the address was not shaped.
  bool remove(Ipv4Address address);

  /// The virtual link flows from `address` must include, if shaped.
  [[nodiscard]] std::optional<LinkId> link_for(Ipv4Address address) const;

  /// Configured limit for `address`, if shaped.
  [[nodiscard]] std::optional<double> limit_mbps(Ipv4Address address) const;

  [[nodiscard]] std::size_t shaped_count() const noexcept { return entries_.size(); }

  /// Checkpoints the per-IP entries and the spare-link pool by LinkId. The
  /// virtual links themselves live in the FlowNetwork's tables (restored
  /// separately), so loading only rebuilds the maps — no network calls.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  struct Entry {
    LinkId link;
    double limit_mbps;
  };
  FlowNetwork& network_;
  std::map<Ipv4Address, Entry> entries_;
  // Virtual links cannot be deleted from the network; removed entries park
  // their link here for reuse by later configure() calls.
  std::vector<LinkId> spare_links_;
};

}  // namespace soda::net
