#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/strings.hpp"

namespace soda::net {

namespace {

constexpr std::string_view kCrlf = "\r\n";

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Splits `raw` into (head lines, body) at the first blank line; returns
/// nullopt when no blank line exists.
std::optional<std::pair<std::vector<std::string>, std::string_view>> split_head(
    std::string_view raw) {
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string_view::npos) return std::nullopt;
  std::string_view head = raw.substr(0, head_end);
  std::string_view body = raw.substr(head_end + 4);
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= head.size()) {
    std::size_t eol = head.find(kCrlf, pos);
    if (eol == std::string_view::npos) {
      lines.emplace_back(head.substr(pos));
      break;
    }
    lines.emplace_back(head.substr(pos, eol - pos));
    pos = eol + 2;
  }
  return std::make_pair(std::move(lines), body);
}

/// Parses "Name: value" field lines (lines[1..]) into `headers`.
Status parse_fields(const std::vector<std::string>& lines, HeaderMap& headers) {
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) {
      return Error{"malformed header field: " + line};
    }
    std::string name(util::trim(std::string_view(line).substr(0, colon)));
    std::string value(util::trim(std::string_view(line).substr(colon + 1)));
    if (name.empty()) return Error{"empty header name"};
    headers.append(std::move(name), std::move(value));
  }
  return {};
}

/// Extracts the message body per Content-Length; rejects truncated bodies.
Result<std::string> take_body(const HeaderMap& headers, std::string_view body) {
  if (auto length_str = headers.get("Content-Length")) {
    const auto length = util::parse_int(*length_str);
    if (!length) return Error{"bad Content-Length: " + *length_str};
    if (static_cast<std::size_t>(*length) > body.size()) {
      return Error{"body shorter than Content-Length"};
    }
    return std::string(body.substr(0, static_cast<std::size_t>(*length)));
  }
  return std::string(body);
}

void serialize_fields(std::string& out, const HeaderMap& headers,
                      std::size_t body_size) {
  bool has_length = headers.contains("Content-Length") ||
                    headers.contains("Transfer-Encoding");
  for (const auto& [name, value] : headers.fields()) {
    out += name;
    out += ": ";
    out += value;
    out += kCrlf;
  }
  if (!has_length && body_size > 0) {
    out += "Content-Length: ";
    out += std::to_string(body_size);
    out += kCrlf;
  }
  out += kCrlf;
}

}  // namespace

void HeaderMap::set(std::string name, std::string value) {
  for (auto& [n, v] : fields_) {
    if (iequals(n, name)) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(std::move(name), std::move(value));
}

void HeaderMap::append(std::string name, std::string value) {
  fields_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string> HeaderMap::get(std::string_view name) const {
  for (const auto& [n, v] : fields_) {
    if (iequals(n, name)) return v;
  }
  return std::nullopt;
}

bool HeaderMap::contains(std::string_view name) const {
  return get(name).has_value();
}

std::string HttpRequest::serialize() const {
  std::string out;
  out += method;
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += kCrlf;
  serialize_fields(out, headers, body.size());
  out += body;
  return out;
}

Result<HttpRequest> HttpRequest::parse(std::string_view raw) {
  auto parts = split_head(raw);
  if (!parts) return Error{"no end of header section"};
  const auto& [lines, body] = *parts;
  if (lines.empty()) return Error{"empty message"};
  const auto request_line = util::split_whitespace(lines[0]);
  if (request_line.size() != 3) return Error{"malformed request line: " + lines[0]};
  HttpRequest req;
  req.method = request_line[0];
  req.target = request_line[1];
  req.version = request_line[2];
  if (!util::starts_with(req.version, "HTTP/")) {
    return Error{"bad HTTP version: " + req.version};
  }
  if (auto status = parse_fields(lines, req.headers); !status.ok()) {
    return status.error();
  }
  auto taken = take_body(req.headers, body);
  if (!taken.ok()) return taken.error();
  req.body = std::move(taken).value();
  return req;
}

std::string HttpResponse::serialize() const {
  std::string out;
  out += version;
  out += ' ';
  out += std::to_string(status);
  out += ' ';
  out += reason;
  out += kCrlf;
  serialize_fields(out, headers, body.size());
  out += body;
  return out;
}

Result<HttpResponse> HttpResponse::parse(std::string_view raw) {
  auto parts = split_head(raw);
  if (!parts) return Error{"no end of header section"};
  const auto& [lines, body] = *parts;
  if (lines.empty()) return Error{"empty message"};
  const std::string& status_line = lines[0];
  const auto fields = util::split_whitespace(status_line);
  if (fields.size() < 2) return Error{"malformed status line: " + status_line};
  HttpResponse resp;
  resp.version = fields[0];
  if (!util::starts_with(resp.version, "HTTP/")) {
    return Error{"bad HTTP version: " + resp.version};
  }
  const auto status = util::parse_int(fields[1]);
  if (!status || *status < 100 || *status > 599) {
    return Error{"bad status code: " + fields[1]};
  }
  resp.status = static_cast<int>(*status);
  // Reason phrase is everything after the code.
  const std::size_t code_pos = status_line.find(fields[1]);
  const std::size_t reason_pos = code_pos + fields[1].size();
  resp.reason = std::string(util::trim(
      std::string_view(status_line).substr(reason_pos)));
  if (auto st = parse_fields(lines, resp.headers); !st.ok()) return st.error();
  auto taken = take_body(resp.headers, body);
  if (!taken.ok()) return taken.error();
  resp.body = std::move(taken).value();
  return resp;
}

HttpResponse HttpResponse::ok(std::string body, std::string content_type) {
  HttpResponse resp;
  resp.headers.set("Content-Type", std::move(content_type));
  resp.body = std::move(body);
  return resp;
}

HttpResponse HttpResponse::not_found() {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.body = "404 not found";
  return resp;
}

HttpResponse HttpResponse::server_error(std::string message) {
  HttpResponse resp;
  resp.status = 500;
  resp.reason = "Internal Server Error";
  resp.body = std::move(message);
  return resp;
}

std::string chunk_encode(std::string_view body, std::size_t chunk_size) {
  if (chunk_size == 0) chunk_size = body.size() ? body.size() : 1;
  std::string out;
  std::size_t pos = 0;
  char size_buf[32];
  while (pos < body.size()) {
    const std::size_t len = std::min(chunk_size, body.size() - pos);
    std::snprintf(size_buf, sizeof size_buf, "%zx", len);
    out += size_buf;
    out += kCrlf;
    out.append(body.substr(pos, len));
    out += kCrlf;
    pos += len;
  }
  out += "0";
  out += kCrlf;
  out += kCrlf;
  return out;
}

Result<std::string> chunk_decode(std::string_view coded) {
  std::string out;
  std::size_t pos = 0;
  while (true) {
    const std::size_t eol = coded.find(kCrlf, pos);
    if (eol == std::string_view::npos) return Error{"missing chunk size line"};
    const std::string_view size_text = coded.substr(pos, eol - pos);
    std::size_t chunk_len = 0;
    const auto [ptr, ec] = std::from_chars(
        size_text.data(), size_text.data() + size_text.size(), chunk_len, 16);
    if (ec != std::errc() || ptr != size_text.data() + size_text.size()) {
      return Error{"bad chunk size: " + std::string(size_text)};
    }
    pos = eol + 2;
    if (chunk_len == 0) {
      if (coded.substr(pos, 2) != kCrlf) return Error{"missing final CRLF"};
      return out;
    }
    if (pos + chunk_len + 2 > coded.size()) return Error{"truncated chunk"};
    out.append(coded.substr(pos, chunk_len));
    if (coded.substr(pos + chunk_len, 2) != kCrlf) {
      return Error{"missing chunk terminator"};
    }
    pos += chunk_len + 2;
  }
}

std::string_view reason_phrase(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 301: return "Moved Permanently";
    case 302: return "Found";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace soda::net
