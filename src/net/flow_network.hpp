// Flow-level network simulation. Transfers (HTTP downloads, request/response
// payloads) are modeled as fluid flows over a topology of directed links;
// link bandwidth is shared max-min fairly among competing flows, with
// optional per-flow rate caps (used by the traffic shaper). This captures
// exactly what the paper's experiments depend on — transfer times under a
// shared 100 Mbps LAN and per-IP outbound shaping — without packet-level cost.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "snapshot/format.hpp"
#include "util/result.hpp"

namespace soda::net {

struct NodeId {
  std::size_t value = SIZE_MAX;
  [[nodiscard]] bool valid() const noexcept { return value != SIZE_MAX; }
  friend constexpr auto operator<=>(NodeId, NodeId) noexcept = default;
};

struct LinkId {
  std::size_t value = SIZE_MAX;
  [[nodiscard]] bool valid() const noexcept { return value != SIZE_MAX; }
  friend constexpr auto operator<=>(LinkId, LinkId) noexcept = default;
};

struct FlowId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend constexpr auto operator<=>(FlowId, FlowId) noexcept = default;
};

/// Unlimited per-flow rate.
inline constexpr double kUncapped = std::numeric_limits<double>::infinity();

/// Event-driven fluid-flow network on a directed-link topology.
/// Single-threaded; driven by one sim::Engine.
class FlowNetwork {
 public:
  using CompletionCallback = std::function<void(sim::SimTime completed_at)>;

  explicit FlowNetwork(sim::Engine& engine) : engine_(engine) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Adds a named endpoint (machine / switch).
  NodeId add_node(std::string name);

  /// Adds one directed link a->b. Capacity in Mbps, propagation latency.
  LinkId add_link(NodeId from, NodeId to, double capacity_mbps,
                  sim::SimTime latency);

  /// Adds a full-duplex link (two directed links with identical parameters).
  /// Returns {a->b, b->a}.
  std::pair<LinkId, LinkId> add_duplex_link(NodeId a, NodeId b,
                                            double capacity_mbps,
                                            sim::SimTime latency);

  /// Adds a link not attached to the topology graph; it only constrains flows
  /// that explicitly include it in `extra_links` (the traffic shaper's per-IP
  /// bottleneck).
  LinkId add_virtual_link(double capacity_mbps);

  /// Changes a link's capacity and re-shares bandwidth (service resizing /
  /// shaper reconfiguration). Capacity must be > 0.
  void set_link_capacity(LinkId link, double capacity_mbps);

  [[nodiscard]] double link_capacity_mbps(LinkId link) const;
  [[nodiscard]] const std::string& node_name(NodeId node) const;
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }

  /// Starts a transfer of `bytes` from `src` to `dst`; `on_complete` fires
  /// when the last byte arrives. `rate_cap_mbps` bounds this flow alone;
  /// `extra_links` (e.g. a shaper's virtual link) are appended to the routed
  /// path. Fails when no route exists.
  Result<FlowId> start_flow(NodeId src, NodeId dst, std::int64_t bytes,
                            CompletionCallback on_complete,
                            double rate_cap_mbps = kUncapped,
                            std::vector<LinkId> extra_links = {});

  /// Aborts an in-progress flow (its callback never fires). Returns false if
  /// the flow already completed or was already cancelled.
  bool cancel_flow(FlowId flow);

  /// The flow's currently allocated rate in Mbps; 0 for unknown flows.
  [[nodiscard]] double flow_rate_mbps(FlowId flow) const;

  /// Number of in-progress flows.
  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }

  /// Total bytes delivered by completed flows since construction.
  [[nodiscard]] std::int64_t bytes_delivered() const noexcept { return bytes_delivered_; }

  /// Checkpoints the full topology (nodes, links — including virtual links
  /// and capacities changed since construction) and counters. The world must
  /// be quiesced: in-flight flows hold completion closures that cannot be
  /// externalized, so save_state requires active_flows() == 0. LinkId and
  /// NodeId values are preserved exactly — max-min fair sharing iterates
  /// links in id order, so isomorphic-but-renumbered topologies would
  /// diverge in floating-point rounding.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  struct Link {
    NodeId from;  // invalid for virtual links
    NodeId to;
    double capacity_bps = 0;  // bytes per second
    sim::SimTime latency;
  };
  struct Flow {
    FlowId id;
    std::vector<std::size_t> path;  // link indices
    std::int64_t total_bytes = 0;
    double remaining_bytes = 0;
    double rate_bps = 0;  // bytes per second
    double cap_bps = std::numeric_limits<double>::infinity();
    sim::SimTime latency;  // summed path latency, applied to completion
    sim::SimTime ready_at = sim::SimTime::max();  // pinned when drained
    CompletionCallback on_complete;
  };

  /// Shortest-hop route using topology links only; empty when unreachable.
  std::optional<std::vector<std::size_t>> route(NodeId src, NodeId dst) const;

  /// Applies progress since last recompute to all flows' remaining bytes.
  void settle_progress();
  /// Max-min fair re-allocation of all flow rates, then reschedules the next
  /// completion event.
  void reallocate_and_schedule();
  /// Fires completions due now, removes finished flows.
  void on_completion_event();

  sim::Engine& engine_;
  std::vector<std::string> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<std::size_t>> out_links_;  // per node, topology only
  std::vector<Flow> flows_;
  std::uint64_t next_flow_id_ = 1;
  sim::SimTime last_settle_;
  sim::EventId pending_event_{};
  bool event_scheduled_ = false;
  std::int64_t bytes_delivered_ = 0;
};

/// Convenience: bits-per-second from Mbps.
constexpr double mbps_to_bytes_per_sec(double mbps) noexcept {
  return mbps * 1e6 / 8.0;
}
constexpr double bytes_per_sec_to_mbps(double bps) noexcept {
  return bps * 8.0 / 1e6;
}

}  // namespace soda::net
