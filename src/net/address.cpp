#include "net/address.hpp"

#include <cstdio>

#include "util/contract.hpp"
#include "util/strings.hpp"

namespace soda::net {

namespace {

/// Strict dotted-quad component: 1-3 decimal digits, nothing else — no
/// whitespace, no sign, no zero padding. util::parse_int deliberately trims
/// (config files rely on that), so the strictness lives here.
std::optional<std::uint32_t> parse_strict_quad(std::string_view part) noexcept {
  if (part.empty() || part.size() > 3) return std::nullopt;
  if (part.size() > 1 && part.front() == '0') return std::nullopt;
  std::uint32_t quad = 0;
  for (const char c : part) {
    if (c < '0' || c > '9') return std::nullopt;
    quad = quad * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (quad > 255) return std::nullopt;
  return quad;
}

}  // namespace

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) noexcept {
  const auto parts = util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    const auto quad = parse_strict_quad(part);
    if (!quad) return std::nullopt;
    value = (value << 8) | *quad;
  }
  return Ipv4Address(value);
}

std::string Ipv4Address::to_string() const {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xFF,
                (value_ >> 16) & 0xFF, (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

IpPool::IpPool(Ipv4Address first, std::size_t count)
    : first_(first), allocated_(count, false) {
  SODA_EXPECTS(count >= 1);
}

Result<Ipv4Address> IpPool::allocate() {
  for (std::size_t i = 0; i < allocated_.size(); ++i) {
    if (!allocated_[i]) {
      allocated_[i] = true;
      ++in_use_;
      return first_.offset(static_cast<std::uint32_t>(i));
    }
  }
  return Error{"IP pool exhausted"};
}

void IpPool::release(Ipv4Address address) {
  SODA_EXPECTS(contains(address));
  const std::size_t idx = address.value() - first_.value();
  SODA_EXPECTS(allocated_[idx]);
  allocated_[idx] = false;
  --in_use_;
}

bool IpPool::contains(Ipv4Address address) const noexcept {
  return address.value() >= first_.value() &&
         address.value() < first_.value() + allocated_.size();
}

bool IpPool::is_allocated(Ipv4Address address) const noexcept {
  if (!contains(address)) return false;
  return allocated_[address.value() - first_.value()];
}

void IpPool::save_state(snapshot::Writer& writer) const {
  writer.begin_section("ip_pool");
  writer.u32(first_.value());
  writer.u64(allocated_.size());
  for (const bool taken : allocated_) writer.boolean(taken);
  writer.u64(in_use_);
  writer.end_section();
}

void IpPool::load_state(snapshot::Reader& reader) {
  reader.begin_section("ip_pool");
  const std::uint32_t first = reader.u32();
  const std::uint64_t capacity = reader.u64();
  if (reader.ok() &&
      (first != first_.value() || capacity != allocated_.size())) {
    reader.fail("ip pool range mismatch");
    return;
  }
  for (std::size_t i = 0; i < allocated_.size(); ++i) {
    allocated_[i] = reader.boolean();
  }
  in_use_ = reader.u64();
  reader.end_section();
}

bool IpPool::disjoint(const IpPool& a, const IpPool& b) noexcept {
  const std::uint64_t a_lo = a.first_.value();
  const std::uint64_t a_hi = a_lo + a.allocated_.size();
  const std::uint64_t b_lo = b.first_.value();
  const std::uint64_t b_hi = b_lo + b.allocated_.size();
  return a_hi <= b_lo || b_hi <= a_lo;
}

}  // namespace soda::net
