#include "net/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/contract.hpp"

namespace soda::net {

namespace {
// Flows with less than this many bytes left are considered drained; sub-byte
// remainders are floating-point residue after rate changes, not payload.
constexpr double kEpsilonBytes = 0.5;
}  // namespace

NodeId FlowNetwork::add_node(std::string name) {
  nodes_.push_back(std::move(name));
  out_links_.emplace_back();
  return NodeId{nodes_.size() - 1};
}

LinkId FlowNetwork::add_link(NodeId from, NodeId to, double capacity_mbps,
                             sim::SimTime latency) {
  SODA_EXPECTS(from.value < nodes_.size() && to.value < nodes_.size());
  SODA_EXPECTS(capacity_mbps > 0);
  links_.push_back(Link{from, to, mbps_to_bytes_per_sec(capacity_mbps), latency});
  out_links_[from.value].push_back(links_.size() - 1);
  return LinkId{links_.size() - 1};
}

std::pair<LinkId, LinkId> FlowNetwork::add_duplex_link(NodeId a, NodeId b,
                                                       double capacity_mbps,
                                                       sim::SimTime latency) {
  return {add_link(a, b, capacity_mbps, latency),
          add_link(b, a, capacity_mbps, latency)};
}

LinkId FlowNetwork::add_virtual_link(double capacity_mbps) {
  SODA_EXPECTS(capacity_mbps > 0);
  links_.push_back(Link{NodeId{}, NodeId{}, mbps_to_bytes_per_sec(capacity_mbps),
                        sim::SimTime::zero()});
  return LinkId{links_.size() - 1};
}

void FlowNetwork::set_link_capacity(LinkId link, double capacity_mbps) {
  SODA_EXPECTS(link.value < links_.size());
  SODA_EXPECTS(capacity_mbps > 0);
  settle_progress();
  links_[link.value].capacity_bps = mbps_to_bytes_per_sec(capacity_mbps);
  reallocate_and_schedule();
}

double FlowNetwork::link_capacity_mbps(LinkId link) const {
  SODA_EXPECTS(link.value < links_.size());
  return bytes_per_sec_to_mbps(links_[link.value].capacity_bps);
}

const std::string& FlowNetwork::node_name(NodeId node) const {
  SODA_EXPECTS(node.value < nodes_.size());
  return nodes_[node.value];
}

std::optional<std::vector<std::size_t>> FlowNetwork::route(NodeId src,
                                                           NodeId dst) const {
  if (src == dst) return std::vector<std::size_t>{};
  // BFS by hop count over topology links.
  std::vector<std::size_t> via_link(nodes_.size(), SIZE_MAX);
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<std::size_t> frontier{src.value};
  seen[src.value] = true;
  while (!frontier.empty()) {
    const std::size_t node = frontier.front();
    frontier.pop_front();
    for (std::size_t link_idx : out_links_[node]) {
      const std::size_t next = links_[link_idx].to.value;
      if (seen[next]) continue;
      seen[next] = true;
      via_link[next] = link_idx;
      if (next == dst.value) {
        std::vector<std::size_t> path;
        for (std::size_t at = dst.value; at != src.value;
             at = links_[via_link[at]].from.value) {
          path.push_back(via_link[at]);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

Result<FlowId> FlowNetwork::start_flow(NodeId src, NodeId dst,
                                       std::int64_t bytes,
                                       CompletionCallback on_complete,
                                       double rate_cap_mbps,
                                       std::vector<LinkId> extra_links) {
  SODA_EXPECTS(src.value < nodes_.size() && dst.value < nodes_.size());
  SODA_EXPECTS(bytes >= 0);
  SODA_EXPECTS(on_complete != nullptr);
  SODA_EXPECTS(rate_cap_mbps > 0);

  auto path = route(src, dst);
  if (!path) {
    return Error{"no route from " + nodes_[src.value] + " to " + nodes_[dst.value]};
  }
  sim::SimTime latency = sim::SimTime::zero();
  for (std::size_t link_idx : *path) latency += links_[link_idx].latency;
  for (LinkId extra : extra_links) {
    SODA_EXPECTS(extra.value < links_.size());
    path->push_back(extra.value);
  }

  settle_progress();
  Flow flow;
  flow.id = FlowId{next_flow_id_++};
  flow.path = std::move(*path);
  flow.total_bytes = bytes;
  flow.remaining_bytes = static_cast<double>(bytes);
  flow.cap_bps = std::isinf(rate_cap_mbps)
                     ? std::numeric_limits<double>::infinity()
                     : mbps_to_bytes_per_sec(rate_cap_mbps);
  flow.latency = latency;
  flow.ready_at = sim::SimTime::max();
  flow.on_complete = std::move(on_complete);
  const FlowId id = flow.id;
  flows_.push_back(std::move(flow));
  reallocate_and_schedule();
  return id;
}

bool FlowNetwork::cancel_flow(FlowId flow) {
  auto it = std::find_if(flows_.begin(), flows_.end(),
                         [&](const Flow& f) { return f.id == flow; });
  if (it == flows_.end()) return false;
  settle_progress();
  flows_.erase(it);
  reallocate_and_schedule();
  return true;
}

double FlowNetwork::flow_rate_mbps(FlowId flow) const {
  auto it = std::find_if(flows_.begin(), flows_.end(),
                         [&](const Flow& f) { return f.id == flow; });
  return it == flows_.end() ? 0.0 : bytes_per_sec_to_mbps(it->rate_bps);
}

void FlowNetwork::settle_progress() {
  const sim::SimTime now = engine_.now();
  const double dt = (now - last_settle_).to_seconds();
  if (dt > 0) {
    for (Flow& flow : flows_) {
      flow.remaining_bytes =
          std::max(0.0, flow.remaining_bytes - flow.rate_bps * dt);
    }
  }
  last_settle_ = now;
}

void FlowNetwork::reallocate_and_schedule() {
  const sim::SimTime now = engine_.now();
  const std::size_t flow_count = flows_.size();
  std::vector<bool> frozen(flow_count, false);
  std::size_t frozen_count = 0;

  // Drained flows (and zero-hop flows, which see no link constraint) no
  // longer compete for bandwidth; they only wait out their path latency.
  // ready_at is pinned the first time a flow drains and never moves again.
  for (std::size_t f = 0; f < flow_count; ++f) {
    Flow& flow = flows_[f];
    if (flow.remaining_bytes <= kEpsilonBytes || flow.path.empty()) {
      flow.rate_bps = 0;
      if (flow.ready_at == sim::SimTime::max()) flow.ready_at = now + flow.latency;
      frozen[f] = true;
      ++frozen_count;
    } else {
      flow.rate_bps = 0;
    }
  }

  // --- Max-min fair allocation with per-flow caps (progressive filling). ---
  while (frozen_count < flow_count) {
    // Residual capacity per link and unfrozen-flow count per link.
    std::vector<double> residual(links_.size());
    std::vector<std::size_t> demand(links_.size(), 0);
    for (std::size_t l = 0; l < links_.size(); ++l) {
      residual[l] = links_[l].capacity_bps;
    }
    for (std::size_t f = 0; f < flow_count; ++f) {
      for (std::size_t l : flows_[f].path) {
        if (frozen[f]) {
          residual[l] -= flows_[f].rate_bps;
        } else {
          ++demand[l];
        }
      }
    }

    // Fair share offered by the tightest link crossed by any unfrozen flow.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < links_.size(); ++l) {
      if (demand[l] == 0) continue;
      bottleneck_share =
          std::min(bottleneck_share,
                   std::max(0.0, residual[l]) / static_cast<double>(demand[l]));
    }
    SODA_ENSURES(std::isfinite(bottleneck_share));  // every unfrozen flow has links

    // Smallest unfrozen cap competes with the link bottleneck.
    double min_cap = std::numeric_limits<double>::infinity();
    for (std::size_t f = 0; f < flow_count; ++f) {
      if (!frozen[f]) min_cap = std::min(min_cap, flows_[f].cap_bps);
    }

    bool froze_any = false;
    if (min_cap <= bottleneck_share) {
      // Cap-limited flows take their cap and stop competing.
      for (std::size_t f = 0; f < flow_count; ++f) {
        if (!frozen[f] && flows_[f].cap_bps <= bottleneck_share) {
          flows_[f].rate_bps = flows_[f].cap_bps;
          frozen[f] = true;
          ++frozen_count;
          froze_any = true;
        }
      }
    } else {
      // Freeze every unfrozen flow crossing a link at the bottleneck share.
      for (std::size_t l = 0; l < links_.size(); ++l) {
        if (demand[l] == 0) continue;
        const double share =
            std::max(0.0, residual[l]) / static_cast<double>(demand[l]);
        if (share <= bottleneck_share * (1 + 1e-12)) {
          for (std::size_t f = 0; f < flow_count; ++f) {
            if (frozen[f]) continue;
            if (std::find(flows_[f].path.begin(), flows_[f].path.end(), l) !=
                flows_[f].path.end()) {
              flows_[f].rate_bps = bottleneck_share;
              frozen[f] = true;
              ++frozen_count;
              froze_any = true;
            }
          }
        }
      }
    }
    SODA_ENSURES(froze_any);  // each round must make progress
  }

  // Project completion times for still-transmitting flows. The projected
  // transfer time is floored at 1 ns: SimTime truncates to integer
  // nanoseconds, and a zero-length step would fire the completion event at
  // the same timestamp without draining any bytes — forever.
  for (Flow& flow : flows_) {
    if (flow.remaining_bytes > kEpsilonBytes && !flow.path.empty()) {
      if (flow.rate_bps > 0) {
        const sim::SimTime transfer = std::max(
            sim::SimTime::nanoseconds(1),
            sim::SimTime::seconds(flow.remaining_bytes / flow.rate_bps));
        flow.ready_at = now + transfer + flow.latency;
      } else {
        flow.ready_at = sim::SimTime::max();
      }
    }
  }

  // --- Schedule the earliest completion. ---
  if (event_scheduled_) {
    engine_.cancel(pending_event_);
    event_scheduled_ = false;
  }
  sim::SimTime earliest = sim::SimTime::max();
  for (const Flow& flow : flows_) earliest = std::min(earliest, flow.ready_at);
  if (earliest < sim::SimTime::max()) {
    pending_event_ = engine_.schedule_at(std::max(earliest, now),
                                         [this] { on_completion_event(); });
    event_scheduled_ = true;
  }
}

void FlowNetwork::on_completion_event() {
  event_scheduled_ = false;
  settle_progress();
  const sim::SimTime now = engine_.now();
  // Collect finished flows first: completion callbacks may start new flows,
  // which mutates flows_. A flow is finished when its bytes have drained AND
  // its pinned latency deadline has passed. Flows that drained exactly now
  // still owe their latency; reallocate pins their ready_at below.
  std::vector<Flow> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    const bool drained = it->remaining_bytes <= kEpsilonBytes || it->path.empty();
    if (drained && it->ready_at <= now) {
      done.push_back(std::move(*it));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  reallocate_and_schedule();
  for (Flow& flow : done) {
    bytes_delivered_ += flow.total_bytes;
    flow.on_complete(now);
  }
}

void FlowNetwork::save_state(snapshot::Writer& writer) const {
  SODA_EXPECTS(flows_.empty());  // quiesce before checkpointing
  writer.begin_section("flow_network");
  writer.u64(nodes_.size());
  for (const std::string& name : nodes_) writer.str(name);
  writer.u64(links_.size());
  for (const Link& link : links_) {
    writer.boolean(link.from.valid());
    if (link.from.valid()) {
      writer.u64(link.from.value);
      writer.u64(link.to.value);
    }
    writer.f64(link.capacity_bps);
    writer.time(link.latency);
  }
  writer.u64(next_flow_id_);
  writer.time(last_settle_);
  writer.i64(bytes_delivered_);
  writer.end_section();
}

void FlowNetwork::load_state(snapshot::Reader& reader) {
  SODA_EXPECTS(flows_.empty());
  reader.begin_section("flow_network");
  nodes_.clear();
  links_.clear();
  out_links_.clear();
  const std::uint64_t node_count = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < node_count; ++i) {
    nodes_.push_back(reader.str());
    out_links_.emplace_back();
  }
  const std::uint64_t link_count = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < link_count; ++i) {
    Link link;
    if (reader.boolean()) {
      link.from = NodeId{static_cast<std::size_t>(reader.u64())};
      link.to = NodeId{static_cast<std::size_t>(reader.u64())};
      if (link.from.value >= nodes_.size() || link.to.value >= nodes_.size()) {
        reader.fail("link endpoint out of range");
        return;
      }
      out_links_[link.from.value].push_back(links_.size());
    }
    link.capacity_bps = reader.f64();
    link.latency = reader.time();
    links_.push_back(link);
  }
  next_flow_id_ = reader.u64();
  last_settle_ = reader.time();
  bytes_delivered_ = reader.i64();
  event_scheduled_ = false;
  pending_event_ = {};
  reader.end_section();
}

}  // namespace soda::net
