#include "net/bridge.hpp"

namespace soda::net {

Bridge::Bridge(std::string host_name, NodeId uplink)
    : host_name_(std::move(host_name)), uplink_(uplink) {}

Status Bridge::attach(Ipv4Address address, NodeId vm_port) {
  auto [it, inserted] = table_.emplace(address, vm_port);
  (void)it;
  if (!inserted) {
    return Error{"bridge@" + host_name_ + ": " + address.to_string() +
                 " already attached"};
  }
  return {};
}

Status Bridge::detach(Ipv4Address address) {
  if (table_.erase(address) == 0) {
    return Error{"bridge@" + host_name_ + ": " + address.to_string() +
                 " not attached"};
  }
  return {};
}

std::optional<NodeId> Bridge::lookup(Ipv4Address address) const {
  auto it = table_.find(address);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

NodeId Bridge::forward(Ipv4Address address) {
  if (auto port = lookup(address)) {
    ++frames_to_vms_;
    return *port;
  }
  ++frames_to_uplink_;
  return uplink_;
}

}  // namespace soda::net
