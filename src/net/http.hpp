// HTTP/1.1 message model (paper §4.3: service images are downloaded with
// HTTP/1.1; the service switch fronts HTTP application services). Full
// serialization and parsing of request/response heads, Content-Length bodies,
// and chunked transfer coding — enough protocol surface for the image
// downloader, the web content service, and the switch to speak one format.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.hpp"

namespace soda::net {

/// Ordered, case-insensitive-lookup header collection (HTTP field names are
/// case-insensitive; insertion order is preserved for serialization).
class HeaderMap {
 public:
  void set(std::string name, std::string value);
  void append(std::string name, std::string value);
  [[nodiscard]] std::optional<std::string> get(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const noexcept { return fields_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& fields()
      const noexcept {
    return fields_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// An HTTP/1.1 request message.
struct HttpRequest {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  /// Serializes head + body; sets Content-Length when a body is present and
  /// no transfer coding was specified.
  [[nodiscard]] std::string serialize() const;

  /// Parses a complete request message (head + Content-Length body).
  static Result<HttpRequest> parse(std::string_view raw);
};

/// An HTTP/1.1 response message.
struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  [[nodiscard]] std::string serialize() const;
  static Result<HttpResponse> parse(std::string_view raw);

  /// Convenience constructors for common statuses.
  static HttpResponse ok(std::string body, std::string content_type = "text/plain");
  static HttpResponse not_found();
  static HttpResponse server_error(std::string message);
};

/// Encodes `body` with HTTP/1.1 chunked transfer coding using `chunk_size`
/// byte chunks (the trailer is a bare CRLF).
std::string chunk_encode(std::string_view body, std::size_t chunk_size);

/// Decodes a chunked-coded payload; fails on malformed chunk framing.
Result<std::string> chunk_decode(std::string_view coded);

/// The standard reason phrase for a status code ("OK", "Not Found", ...).
std::string_view reason_phrase(int status) noexcept;

}  // namespace soda::net
