// IPv4 addressing for virtual service nodes. Each SODA Daemon owns a pool of
// addresses; pools of different HUP hosts must be disjoint (paper §4.3,
// "Dynamic configuration for internetworking").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "snapshot/format.hpp"
#include "util/result.hpp"

namespace soda::net {

/// An IPv4 address as a host-order 32-bit value with dotted-quad formatting.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept : value_(0) {}
  constexpr explicit Ipv4Address(std::uint32_t host_order) noexcept
      : value_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parses "128.10.9.125"; rejects malformed or out-of-range quads.
  static std::optional<Ipv4Address> parse(std::string_view text) noexcept;

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// The address numerically `offset` above this one.
  [[nodiscard]] constexpr Ipv4Address offset(std::uint32_t n) const noexcept {
    return Ipv4Address(value_ + n);
  }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t value_;
};

/// A contiguous, exclusive range [first, first + count) of addresses owned by
/// one SODA Daemon. Allocation is lowest-free-first so released addresses are
/// reused deterministically.
class IpPool {
 public:
  /// count must be >= 1.
  IpPool(Ipv4Address first, std::size_t count);

  /// Allocates the lowest free address, or an error when exhausted.
  Result<Ipv4Address> allocate();

  /// Returns an address to the pool. It is a contract violation to release an
  /// address outside the pool or one that is not currently allocated.
  void release(Ipv4Address address);

  [[nodiscard]] bool contains(Ipv4Address address) const noexcept;
  [[nodiscard]] bool is_allocated(Ipv4Address address) const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return allocated_.size(); }
  [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
  [[nodiscard]] std::size_t available() const noexcept { return capacity() - in_use_; }
  [[nodiscard]] Ipv4Address first() const noexcept { return first_; }

  /// True when the address ranges of `a` and `b` do not overlap — the
  /// cross-host invariant the SODA Master enforces.
  static bool disjoint(const IpPool& a, const IpPool& b) noexcept;

  /// Checkpoints the allocation bitmap. Because allocation is
  /// lowest-free-first, the bitmap fully determines every future allocation,
  /// so a restored pool hands out the same addresses the original would
  /// have. load_state expects a pool constructed over the same range.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  Ipv4Address first_;
  std::vector<bool> allocated_;
  std::size_t in_use_ = 0;
};

}  // namespace soda::net
