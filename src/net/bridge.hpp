// The host-OS bridging module (paper §3.3): a transparent bridge that
// connects every virtual service node on a HUP host to the LAN. The SODA
// Daemon registers each new 'UML-IP' mapping so frames are forwarded to the
// right virtual machine port.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "net/address.hpp"
#include "net/flow_network.hpp"
#include "snapshot/format.hpp"
#include "util/result.hpp"

namespace soda::net {

/// One HUP host's transparent bridge. Ports are the flow-network nodes of the
/// virtual machines attached to this host; the uplink port faces the LAN.
class Bridge {
 public:
  /// `host_name` is used in error messages; `uplink` is the LAN-facing node.
  Bridge(std::string host_name, NodeId uplink);

  /// Registers a new UML-IP mapping (called by the SODA Daemon during
  /// bootstrapping). Fails if the address is already mapped.
  Status attach(Ipv4Address address, NodeId vm_port);

  /// Removes a mapping (service tear-down). Fails if not mapped.
  Status detach(Ipv4Address address);

  /// The VM port for `address`, or nullopt -> frame goes to the uplink.
  [[nodiscard]] std::optional<NodeId> lookup(Ipv4Address address) const;

  /// Destination port for a frame to `address`: the mapped VM port, or the
  /// uplink when the address is not local. Counts the forwarding decision.
  NodeId forward(Ipv4Address address);

  [[nodiscard]] NodeId uplink() const noexcept { return uplink_; }
  [[nodiscard]] std::size_t attached_count() const noexcept { return table_.size(); }
  [[nodiscard]] std::uint64_t frames_to_vms() const noexcept { return frames_to_vms_; }
  [[nodiscard]] std::uint64_t frames_to_uplink() const noexcept {
    return frames_to_uplink_;
  }
  [[nodiscard]] const std::string& host_name() const noexcept { return host_name_; }

  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("bridge");
    writer.u64(table_.size());
    for (const auto& [address, port] : table_) {
      writer.u32(address.value());
      writer.u64(port.value);
    }
    writer.u64(frames_to_vms_);
    writer.u64(frames_to_uplink_);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) {
    reader.begin_section("bridge");
    table_.clear();
    const std::uint64_t count = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < count; ++i) {
      const Ipv4Address address{reader.u32()};
      table_[address] = NodeId{static_cast<std::size_t>(reader.u64())};
    }
    frames_to_vms_ = reader.u64();
    frames_to_uplink_ = reader.u64();
    reader.end_section();
  }

 private:
  std::string host_name_;
  NodeId uplink_;
  std::map<Ipv4Address, NodeId> table_;
  std::uint64_t frames_to_vms_ = 0;
  std::uint64_t frames_to_uplink_ = 0;
};

}  // namespace soda::net
