#include "net/shaper.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace soda::net {

TokenBucket::TokenBucket(double rate_bytes_per_sec, double burst_bytes)
    : rate_(rate_bytes_per_sec), burst_(burst_bytes), tokens_(burst_bytes) {
  SODA_EXPECTS(rate_ > 0);
  SODA_EXPECTS(burst_ >= 1);
}

void TokenBucket::refill(sim::SimTime now) const {
  if (now <= last_refill_) return;
  const double dt = (now - last_refill_).to_seconds();
  tokens_ = std::min(burst_, tokens_ + rate_ * dt);
  last_refill_ = now;
}

bool TokenBucket::try_consume(double bytes, sim::SimTime now) {
  SODA_EXPECTS(bytes >= 0);
  SODA_EXPECTS(bytes <= burst_);
  refill(now);
  if (tokens_ + 1e-9 < bytes) return false;
  tokens_ -= bytes;
  return true;
}

sim::SimTime TokenBucket::available_at(double bytes, sim::SimTime now) const {
  SODA_EXPECTS(bytes >= 0);
  SODA_EXPECTS(bytes <= burst_);
  refill(now);
  if (tokens_ >= bytes) return now;
  // Round the wait up to a whole simulated nanosecond so that consuming at
  // the returned instant always succeeds; truncating would promise a time at
  // which the bucket is still up to one tick of refill short.
  const double wait_sec = (bytes - tokens_) / rate_;
  return now + sim::SimTime::nanoseconds(
                   static_cast<std::int64_t>(std::ceil(wait_sec * 1e9)));
}

double TokenBucket::tokens(sim::SimTime now) const {
  refill(now);
  return tokens_;
}

void TrafficShaper::configure(Ipv4Address address, double limit_mbps) {
  SODA_EXPECTS(limit_mbps > 0);
  auto it = entries_.find(address);
  if (it != entries_.end()) {
    it->second.limit_mbps = limit_mbps;
    network_.set_link_capacity(it->second.link, limit_mbps);
    return;
  }
  LinkId link;
  if (!spare_links_.empty()) {
    link = spare_links_.back();
    spare_links_.pop_back();
    network_.set_link_capacity(link, limit_mbps);
  } else {
    link = network_.add_virtual_link(limit_mbps);
  }
  entries_.emplace(address, Entry{link, limit_mbps});
}

bool TrafficShaper::remove(Ipv4Address address) {
  auto it = entries_.find(address);
  if (it == entries_.end()) return false;
  spare_links_.push_back(it->second.link);
  entries_.erase(it);
  return true;
}

std::optional<LinkId> TrafficShaper::link_for(Ipv4Address address) const {
  auto it = entries_.find(address);
  if (it == entries_.end()) return std::nullopt;
  return it->second.link;
}

std::optional<double> TrafficShaper::limit_mbps(Ipv4Address address) const {
  auto it = entries_.find(address);
  if (it == entries_.end()) return std::nullopt;
  return it->second.limit_mbps;
}

void TrafficShaper::save_state(snapshot::Writer& writer) const {
  writer.begin_section("shaper");
  writer.u64(entries_.size());
  for (const auto& [address, entry] : entries_) {
    writer.u32(address.value());
    writer.u64(entry.link.value);
    writer.f64(entry.limit_mbps);
  }
  writer.u64(spare_links_.size());
  for (const LinkId link : spare_links_) writer.u64(link.value);
  writer.end_section();
}

void TrafficShaper::load_state(snapshot::Reader& reader) {
  reader.begin_section("shaper");
  entries_.clear();
  spare_links_.clear();
  const std::uint64_t shaped = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < shaped; ++i) {
    const Ipv4Address address{reader.u32()};
    Entry entry;
    entry.link = LinkId{static_cast<std::size_t>(reader.u64())};
    entry.limit_mbps = reader.f64();
    entries_.emplace(address, entry);
  }
  const std::uint64_t spares = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < spares; ++i) {
    spare_links_.push_back(LinkId{static_cast<std::size_t>(reader.u64())});
  }
  reader.end_section();
}

}  // namespace soda::net
