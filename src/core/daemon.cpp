#include "core/daemon.hpp"

#include <algorithm>
#include <utility>

#include "core/events.hpp"
#include "os/rootfs.hpp"
#include "util/contract.hpp"
#include "util/log.hpp"

namespace soda::core {

namespace {

const sim::SimTime kBridgeLatency = sim::SimTime::microseconds(20);

// CPU cost of tailoring the rootfs: dependency walks plus file pruning,
// roughly proportional to the number of candidate services.
constexpr double kCustomizePerServiceGhzS = 0.02;

constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

// name < (service + "/"), evaluated without materializing the needle.
bool name_below_service_slash(std::string_view name, std::string_view service) {
  const std::size_t n = std::min(name.size(), service.size());
  if (const int c = name.substr(0, n).compare(service.substr(0, n)); c != 0) {
    return c < 0;
  }
  if (name.size() <= service.size()) return true;  // proper prefix of needle
  return name[service.size()] < '/';
}

}  // namespace

std::size_t SodaDaemon::node_index(std::string_view node_name) const {
  const auto it =
      std::lower_bound(node_names_.begin(), node_names_.end(), node_name);
  if (it == node_names_.end() || *it != node_name) return kNoNode;
  return static_cast<std::size_t>(it - node_names_.begin());
}

SodaDaemon::NodeRecord& SodaDaemon::insert_node(
    std::string_view node_name, std::unique_ptr<NodeRecord> record) {
  const auto it =
      std::lower_bound(node_names_.begin(), node_names_.end(), node_name);
  const auto at = it - node_names_.begin();
  node_names_.insert(it, std::string(node_name));
  NodeRecord& stable = *record;
  node_records_.insert(node_records_.begin() + at, std::move(record));
  return stable;
}

void SodaDaemon::erase_node(std::size_t index) {
  node_names_.erase(node_names_.begin() + static_cast<std::ptrdiff_t>(index));
  node_records_.erase(node_records_.begin() +
                      static_cast<std::ptrdiff_t>(index));
}

bool SodaDaemon::serves_service(std::string_view service_name) const {
  const auto it = std::lower_bound(node_names_.begin(), node_names_.end(),
                                   service_name, name_below_service_slash);
  if (it == node_names_.end()) return false;
  const std::string_view name = *it;
  return name.size() > service_name.size() &&
         name[service_name.size()] == '/' &&
         name.substr(0, service_name.size()) == service_name;
}

void SodaDaemon::emit(sim::SimTime at, TraceKind kind,
                      const std::string& subject, std::string detail) {
  if (bus_ != nullptr) {
    bus_->publish(at, kind, "daemon@" + host_.name(), subject,
                  std::move(detail));
  } else if (trace_ != nullptr) {
    trace_->record(at, kind, "daemon@" + host_.name(), subject,
                   std::move(detail));
  }
}

std::string_view address_mode_name(AddressMode mode) noexcept {
  switch (mode) {
    case AddressMode::kBridging: return "bridging";
    case AddressMode::kProxying: return "proxying";
  }
  return "unknown";
}

SodaDaemon::SodaDaemon(sim::Engine& engine, net::FlowNetwork& network,
                       host::HupHost& host, net::TrafficShaper& shaper)
    : engine_(engine),
      network_(network),
      host_(host),
      shaper_(shaper),
      distributor_(engine, network, host.lan_node(), host.name()) {}

void SodaDaemon::prime_node(PrimeCommand command, PrimeCallback done) {
  SODA_EXPECTS(done != nullptr);
  SODA_EXPECTS(command.repository != nullptr);
  SODA_EXPECTS(command.capacity_units >= 1);
  auto& log = util::global_logger();

  if (!alive_) {
    done(Error{"daemon@" + host_.name() + ": host is down"}, engine_.now());
    return;
  }
  if (node_index(command.node_name) != kNoNode) {
    done(Error{"node already exists: " + command.node_name}, engine_.now());
    return;
  }

  // 1. Reserve the slice. Everything later rolls this back on failure.
  auto slice = host_.reserve(command.service_name, command.reserve);
  if (!slice.ok()) {
    done(slice.error(), engine_.now());
    return;
  }
  if (log.enabled(util::LogLevel::kInfo)) {
    log.info("daemon@" + host_.name(),
             "reserved slice for " + command.node_name + " (" +
                 command.reserve.to_string() + ")");
  }
  emit(engine_.now(), TraceKind::kPrimingStarted, command.node_name,
       command.reserve.to_string());

  // 2. Download the service image from the ASP's repository. Copy the
  //    arguments out first: `command` moves into the callback, and argument
  //    evaluation order would otherwise race the move.
  const sim::SimTime download_started = engine_.now();
  const image::ImageRepository& repository = *command.repository;
  const image::ImageLocation location = command.location;
  distributor_.fetch(
      repository, location,
      [this, command = std::move(command), slice = slice.value(),
       download_started,
       done = std::move(done)](Result<image::ServiceImage> image,
                               sim::SimTime now) mutable {
        if (!alive_) {
          // crash_host() already released the slice with the rest of the
          // host state; releasing again would double-free it.
          done(Error{"daemon@" + host_.name() + ": host crashed mid-priming"},
               now);
          return;
        }
        if (!image.ok()) {
          must(host_.release(slice));
          done(Error{"image download failed: " + image.error().message}, now);
          return;
        }
        emit(now, TraceKind::kImageDownloaded, command.node_name,
             std::to_string(image.value().packaged_bytes()) + " bytes");
        continue_priming(std::move(command), std::move(image).value(), slice,
                         download_started, now, std::move(done));
      });
}

void SodaDaemon::continue_priming(PrimeCommand command,
                                  image::ServiceImage image,
                                  host::SliceId slice,
                                  sim::SimTime download_started,
                                  sim::SimTime downloaded_at,
                                  PrimeCallback done) {
  auto& log = util::global_logger();
  auto fail = [&](std::string message) {
    must(host_.release(slice));
    done(Error{std::move(message)}, engine_.now());
  };

  // Effective application parameters: the component's when this node runs
  // one component of a partitioned service, the image's otherwise.
  const std::vector<std::string>& required_services =
      command.component ? command.component->required_services
                        : image.required_services;
  const std::string entry_command =
      command.component ? command.component->entry_command : image.entry_command;
  const double app_start_ghz_s =
      command.component ? command.component->app_start_ghz_s
                        : image.app_start_ghz_s;
  const std::int64_t app_memory_mb =
      command.component ? command.component->app_memory_mb : image.app_memory_mb;
  const int listen_port =
      command.component ? command.component->listen_port : command.listen_port;

  // 3. Build the guest root filesystem: template, optional tailoring, then
  //    merge the application image into the root (the service image is part
  //    of the root file system, §4.3). The built (and customized) template
  //    is a pure function of (template, services) and comes from the shared
  //    cache — the node pays one tree copy, not a rebuild plus a customize
  //    pass. Simulated customize *time* is still charged per node: the cache
  //    is a simulator optimization, not a change to the modeled daemon.
  sim::SimTime customize_time = sim::SimTime::zero();
  os::RootFs rootfs;
  if (command.customize_rootfs) {
    auto customized =
        os::cached_customized_rootfs(image.rootfs_template, required_services);
    if (!customized.ok()) {
      fail("rootfs customization failed: " + customized.error().message);
      return;
    }
    const std::size_t candidates =
        os::cached_base_rootfs(image.rootfs_template).enabled_services.size();
    customize_time = sim::SimTime::seconds(
        kCustomizePerServiceGhzS * static_cast<double>(candidates) /
        host_.spec().cpu_ghz);
    rootfs = *customized.value();
  } else {
    rootfs = os::cached_base_rootfs(image.rootfs_template);
  }
  if (auto merged = rootfs.fs.copy_from(image.payload, "/", "/"); !merged.ok()) {
    fail("image merge failed: " + merged.error().message);
    return;
  }

  // 4. Create the UML with the slice's memory as its usage limit.
  const std::int64_t memory_mb = command.reserve.memory_mb;
  if (memory_mb <= vm::UserModeLinux::kKernelMemoryMb + app_memory_mb) {
    fail("slice memory too small for guest kernel + application");
    return;
  }
  auto uml = std::make_unique<vm::UserModeLinux>(std::move(rootfs), memory_mb);
  const vm::BootReport boot_plan = uml->plan_boot(host_.spec());
  const sim::SimTime app_start_time =
      sim::SimTime::seconds(app_start_ghz_s / host_.spec().cpu_ghz);

  // 5. Networking: IP from the host pool, a network port for the VM, the
  //    bridge mapping, and the outbound bandwidth share in the shaper.
  auto address = host_.ip_pool().allocate();
  if (!address.ok()) {
    fail("no free IP on " + host_.name() + ": " + address.error().message);
    return;
  }
  const net::Ipv4Address ip = address.value();
  const net::NodeId vm_node = network_.add_node(command.node_name);
  // The VM's hop through the host runs at UML's effective NIC rate —
  // tracing every frame costs about half the host's line rate.
  network_.add_duplex_link(vm_node, host_.lan_node(),
                           vm::uml_effective_nic_mbps(host_.spec().nic_mbps),
                           kBridgeLatency);
  int public_port = 0;
  if (command.address_mode == AddressMode::kBridging) {
    if (auto attached = host_.bridge().attach(ip, vm_node); !attached.ok()) {
      host_.ip_pool().release(ip);
      fail(attached.error().message);
      return;
    }
  } else {
    // Proxying: the node keeps its reserved address; clients reach it via a
    // forwarded port on the host's public address.
    auto forwarded =
        host_.proxy().forward(net::ProxyTarget{ip, listen_port});
    if (!forwarded.ok()) {
      host_.ip_pool().release(ip);
      fail(forwarded.error().message);
      return;
    }
    public_port = forwarded.value();
  }
  // The shaper enforces the *un-inflated* bandwidth share the service paid
  // for; the inflation headroom absorbs virtualization overhead.
  shaper_.configure(
      ip, command.unit.bandwidth_mbps * command.capacity_units);

  auto node = std::make_unique<vm::VirtualServiceNode>(
      vm::NodeName{command.node_name}, command.service_name, host_.name(), slice,
      ip, vm_node, command.capacity_units, std::move(uml));
  node->set_service_port(listen_port);
  if (command.component) node->set_component(command.component->name);
  if (command.address_mode == AddressMode::kProxying) {
    node->set_public_endpoint(
        vm::PublicEndpoint{host_.public_address(), public_port});
  }
  vm::VirtualServiceNode* node_ptr = node.get();

  auto record = std::make_unique<NodeRecord>();
  record->node = std::move(node);
  record->address_mode = command.address_mode;
  record->public_port = public_port;
  record->report.download_time = downloaded_at - download_started;
  record->report.customize_time = customize_time;
  record->report.boot = boot_plan;
  record->report.app_start_time = app_start_time;
  record->report.image_bytes = image.packaged_bytes();
  record->report.rootfs_bytes = node_ptr->uml().rootfs().image_bytes();
  record->unit = command.unit;
  insert_node(command.node_name, std::move(record));

  // 6. Boot the guest, then start the application inside it.
  must(node_ptr->uml().begin_boot(engine_.now()));
  const sim::SimTime ready_in = customize_time + boot_plan.total() + app_start_time;
  if (log.enabled(util::LogLevel::kInfo)) {
    log.info("daemon@" + host_.name(),
             command.node_name + ": priming, ip " + ip.to_string() +
                 ", boot plan " + std::to_string(ready_in.to_seconds()) + "s" +
                 (boot_plan.used_ram_disk ? " (ram disk)" : " (disk)"));
  }
  engine_.schedule_after(
      ready_in, [this, name = command.node_name, entry = entry_command,
                 app_mem = app_memory_mb, done = std::move(done)] {
        // Re-find the node: if the host crashed while the guest was booting,
        // crash_host() destroyed the NodeRecord and the pointer is gone.
        const std::size_t index = node_index(name);
        if (!alive_ || index == kNoNode) {
          done(Error{"daemon@" + host_.name() + ": host crashed mid-priming"},
               engine_.now());
          return;
        }
        vm::VirtualServiceNode* node_ptr = node_records_[index]->node.get();
        must(node_ptr->uml().finish_boot(engine_.now()));
        const std::string uid = "svc-" + node_ptr->service_name();
        must(node_ptr->uml().spawn_process(entry, uid, engine_.now()));
        must(node_ptr->uml().allocate_memory(app_mem));
        emit(engine_.now(), TraceKind::kNodeBooted, node_ptr->name().value,
             "ip " + node_ptr->address().to_string() + " runs " + entry);
        done(node_ptr, engine_.now());
      });
}

void SodaDaemon::release_node_state(NodeRecord& record, bool crashed) {
  vm::VirtualServiceNode& node = *record.node;
  if (crashed) {
    node.uml().crash();
  } else {
    node.uml().shutdown();
  }
  if (record.address_mode == AddressMode::kBridging) {
    must(host_.bridge().detach(node.address()));
  } else {
    host_.proxy().remove(record.public_port);
  }
  shaper_.remove(node.address());
  host_.ip_pool().release(node.address());
  must(host_.release(node.slice()));
}

Status SodaDaemon::teardown_node(std::string_view node_name) {
  const std::size_t index = node_index(node_name);
  if (index == kNoNode) {
    return Error{"daemon@" + host_.name() + ": no node " +
                 std::string(node_name)};
  }
  release_node_state(*node_records_[index], /*crashed=*/false);
  erase_node(index);
  // The VM's flow-network port remains in the topology (links cannot be
  // removed), but nothing routes to it once the bridge entry is gone.
  return {};
}

Status SodaDaemon::resize_node(std::string_view node_name, int new_units,
                               const host::ResourceVector& new_reserve) {
  SODA_EXPECTS(new_units >= 1);
  const std::size_t index = node_index(node_name);
  if (index == kNoNode) {
    return Error{"daemon@" + host_.name() + ": no node " +
                 std::string(node_name)};
  }
  NodeRecord& record = *node_records_[index];
  vm::VirtualServiceNode& node = *record.node;
  if (auto resized = host_.resize(node.slice(), new_reserve); !resized.ok()) {
    return resized;
  }
  node.set_capacity_units(new_units);
  shaper_.configure(node.address(), record.unit.bandwidth_mbps * new_units);
  return {};
}

vm::VirtualServiceNode* SodaDaemon::find_node(std::string_view node_name) {
  const std::size_t index = node_index(node_name);
  return index == kNoNode ? nullptr : node_records_[index]->node.get();
}

const vm::VirtualServiceNode* SodaDaemon::find_node(
    std::string_view node_name) const {
  const std::size_t index = node_index(node_name);
  return index == kNoNode ? nullptr : node_records_[index]->node.get();
}

const PrimingReport* SodaDaemon::priming_report(
    std::string_view node_name) const {
  const std::size_t index = node_index(node_name);
  return index == kNoNode ? nullptr : &node_records_[index]->report;
}

void SodaDaemon::crash_host() {
  if (!alive_) return;
  alive_ = false;
  // Fail-stop: every guest dies with the host, and a rebooting machine comes
  // back with nothing reserved — release all host-side state now so recover()
  // reports a free host. Records go in name order, as the seed's map did.
  for (auto& record : node_records_) {
    release_node_state(*record, /*crashed=*/true);
  }
  node_names_.clear();
  node_records_.clear();
  // Image distribution dies with the host: in-flight fetches fail (their
  // prime callbacks observe !alive_), the chunk cache and keep-alive
  // connections are gone, and the Master's chunk registry drops this host
  // so peers fail over mid-transfer.
  distributor_.handle_local_crash();
  util::global_logger().warn("daemon@" + host_.name(), "host crashed");
}

void SodaDaemon::recover() {
  if (alive_) return;
  alive_ = true;
  util::global_logger().info("daemon@" + host_.name(),
                             "host rebooted, daemon back");
}

void SodaDaemon::start_heartbeat(sim::SimTime interval, HeartbeatSink sink) {
  SODA_EXPECTS(interval > sim::SimTime::zero());
  SODA_EXPECTS(sink != nullptr);
  heartbeat_interval_ = interval;
  heartbeat_sink_ = std::move(sink);
  if (heartbeating_) return;
  heartbeating_ = true;
  heartbeat_next_ = engine_.now() + heartbeat_interval_;
  heartbeat_event_ = engine_.schedule_after_sharded(
      heartbeat_interval_, shard_key(), [this] { heartbeat_tick(); });
}

void SodaDaemon::heartbeat_tick() {
  // Host-sharded event: the tick body only reads daemon-local flags; the
  // sink (Master wheel re-arm — global state) and the reschedule (event
  // queue) are effects, deferred to the serial commit. Without sharding the
  // defer runs inline, which is byte-for-byte the pre-sharding behaviour.
  if (!heartbeating_) return;
  engine_.defer([this] {
    if (!heartbeating_) return;
    // A dead host sends nothing, but the loop keeps ticking so heartbeats
    // resume by themselves once the host recovers.
    if (alive_) heartbeat_sink_(*this, engine_.now());
    heartbeat_next_ = engine_.now() + heartbeat_interval_;
    heartbeat_event_ = engine_.schedule_after_sharded(
        heartbeat_interval_, shard_key(), [this] { heartbeat_tick(); });
  });
}

void SodaDaemon::restore_heartbeat(sim::SimTime interval, HeartbeatSink sink,
                                   bool active) {
  SODA_EXPECTS(interval > sim::SimTime::zero());
  SODA_EXPECTS(sink != nullptr);
  heartbeat_interval_ = interval;
  heartbeat_sink_ = std::move(sink);
  heartbeating_ = active;
}

void SodaDaemon::rearm_heartbeat_at(sim::SimTime when) {
  SODA_EXPECTS(heartbeating_ && heartbeat_sink_ != nullptr);
  heartbeat_next_ = when;
  heartbeat_event_ = engine_.schedule_at_sharded(when, shard_key(),
                                                 [this] { heartbeat_tick(); });
}

void SodaDaemon::save_state(snapshot::Writer& writer) const {
  writer.begin_section("daemon");
  writer.u32(host_id_.value);
  writer.boolean(alive_);
  writer.boolean(heartbeating_);
  writer.time(heartbeat_interval_);
  distributor_.save_state(writer);
  writer.u64(node_names_.size());
  for (std::size_t i = 0; i < node_names_.size(); ++i) {
    const NodeRecord& record = *node_records_[i];
    const vm::VirtualServiceNode& node = *record.node;
    writer.str(node_names_[i]);
    writer.str(node.service_name());
    writer.u64(node.slice().value);
    writer.u32(node.address().value());
    writer.u64(node.net_node().value);
    writer.i64(node.capacity_units());
    writer.i64(node.service_port());
    writer.str(node.component());
    writer.boolean(node.public_endpoint().has_value());
    if (node.public_endpoint()) {
      writer.u32(node.public_endpoint()->address.value());
      writer.i64(node.public_endpoint()->port);
    }
    writer.i64(node.uml().memory_cap_mb());
    os::save_rootfs(writer, node.uml().rootfs());
    node.uml().save_state(writer);
    // Priming report (Table 2 series) and slice bookkeeping.
    writer.time(record.report.download_time);
    writer.time(record.report.customize_time);
    writer.time(record.report.boot.mount_time);
    writer.time(record.report.boot.kernel_time);
    writer.time(record.report.boot.services_time);
    writer.boolean(record.report.boot.used_ram_disk);
    writer.u64(record.report.boot.services_started);
    writer.time(record.report.app_start_time);
    writer.i64(record.report.image_bytes);
    writer.i64(record.report.rootfs_bytes);
    writer.f64(record.unit.cpu_mhz);
    writer.i64(record.unit.memory_mb);
    writer.i64(record.unit.disk_mb);
    writer.f64(record.unit.bandwidth_mbps);
    writer.u8(static_cast<std::uint8_t>(record.address_mode));
    writer.i64(record.public_port);
  }
  writer.end_section();
}

void SodaDaemon::load_state(snapshot::Reader& reader) {
  reader.begin_section("daemon");
  host_id_ = HostId{reader.u32()};
  alive_ = reader.boolean();
  heartbeating_ = reader.boolean();
  heartbeat_interval_ = reader.time();
  distributor_.load_state(reader);
  node_names_.clear();
  node_records_.clear();
  const std::uint64_t nodes = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < nodes; ++i) {
    std::string node_name = reader.str();
    std::string service_name = reader.str();
    const host::SliceId slice{reader.u64()};
    const net::Ipv4Address address{reader.u32()};
    const net::NodeId net_node{static_cast<std::size_t>(reader.u64())};
    const auto capacity_units = static_cast<int>(reader.i64());
    const auto service_port = static_cast<int>(reader.i64());
    std::string component = reader.str();
    std::optional<vm::PublicEndpoint> endpoint;
    if (reader.boolean()) {
      vm::PublicEndpoint ep;
      ep.address = net::Ipv4Address{reader.u32()};
      ep.port = static_cast<int>(reader.i64());
      endpoint = ep;
    }
    const std::int64_t memory_mb = reader.i64();
    os::RootFs rootfs = os::load_rootfs(reader);
    // Host slices, IP assignments, bridge/proxy entries, shaper shares, and
    // the node's flow-network port were all restored wholesale with the host
    // and network tables — reconstruction here must NOT touch any of them.
    auto uml = std::make_unique<vm::UserModeLinux>(std::move(rootfs), memory_mb);
    uml->load_state(reader);
    auto record = std::make_unique<NodeRecord>();
    record->node = std::make_unique<vm::VirtualServiceNode>(
        vm::NodeName{node_name}, std::move(service_name), host_.name(), slice,
        address, net_node, capacity_units, std::move(uml));
    record->node->set_service_port(service_port);
    if (!component.empty()) record->node->set_component(std::move(component));
    if (endpoint) record->node->set_public_endpoint(*endpoint);
    record->report.download_time = reader.time();
    record->report.customize_time = reader.time();
    record->report.boot.mount_time = reader.time();
    record->report.boot.kernel_time = reader.time();
    record->report.boot.services_time = reader.time();
    record->report.boot.used_ram_disk = reader.boolean();
    record->report.boot.services_started = static_cast<std::size_t>(reader.u64());
    record->report.app_start_time = reader.time();
    record->report.image_bytes = reader.i64();
    record->report.rootfs_bytes = reader.i64();
    record->unit.cpu_mhz = reader.f64();
    record->unit.memory_mb = reader.i64();
    record->unit.disk_mb = reader.i64();
    record->unit.bandwidth_mbps = reader.f64();
    record->address_mode = static_cast<AddressMode>(reader.u8());
    record->public_port = static_cast<int>(reader.i64());
    if (!reader.ok()) return;
    // Names were saved in sorted order, so push_back preserves the store's
    // sorted-names invariant.
    node_names_.push_back(std::move(node_name));
    node_records_.push_back(std::move(record));
  }
  reader.end_section();
}

}  // namespace soda::core
