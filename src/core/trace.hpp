// Structured control-plane tracing. Every SODA entity emits typed events
// (admission, priming stages, boot, switch creation, resize, teardown,
// health transitions) into a bounded in-memory trace. Operators read it as
// text; tests assert on exact event sequences — which freezes the
// control-plane protocol far more precisely than log-string matching.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "snapshot/format.hpp"

namespace soda::core {

enum class TraceKind {
  kRequestReceived,   // agent accepted an API call
  kAdmitted,          // master admitted <n, M>
  kRejected,          // master rejected a request
  kPrimingStarted,    // daemon began priming a node
  kImageDownloaded,   // image arrived at the daemon
  kNodeBooted,        // guest running, app started
  kSwitchCreated,     // switch up with its config file
  kServiceRunning,    // creation complete
  kResized,           // resize applied
  kTornDown,          // service gone
  kHealthChanged,     // monitor flipped a backend
  kPrimingFailed,     // a node's priming pipeline failed
  kHostDown,          // failure detector declared a HUP host dead
  kHostUp,            // a dead host's heartbeats resumed
  kNodeLost,          // a placement died with its host
  kDegraded,          // service running below its admitted capacity
  kRecovered,         // lost capacity re-created on surviving hosts
};

std::string_view trace_kind_name(TraceKind kind) noexcept;

/// One trace record.
struct TraceEvent {
  sim::SimTime at;
  TraceKind kind;
  std::string actor;    // "master", "daemon@seattle", "agent", "monitor"
  std::string subject;  // service or node name
  std::string detail;   // free-form specifics
};

/// Bounded FIFO of control-plane events. Not thread-safe (simulation is
/// single-threaded); cheap enough to stay enabled everywhere.
class TraceLog {
 public:
  explicit TraceLog(std::size_t capacity = 4096);

  void record(sim::SimTime at, TraceKind kind, std::string actor,
              std::string subject, std::string detail = {});

  [[nodiscard]] const std::deque<TraceEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  void clear();

  /// Events about `subject` (service or node), in order.
  [[nodiscard]] std::vector<TraceEvent> for_subject(
      const std::string& subject) const;

  /// The ordered kinds observed for `subject` — what sequence tests check.
  [[nodiscard]] std::vector<TraceKind> kinds_for(const std::string& subject) const;

  /// Renders "t=1.234s [daemon@seattle] node-booted web/0: ..." lines.
  [[nodiscard]] std::string render() const;

  /// Checkpoints the retained window and the dropped counter; chaos digests
  /// fold trace events, so the ring must restore bit-for-bit.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  std::size_t capacity_;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace soda::core
