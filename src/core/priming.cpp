#include "core/priming.hpp"

#include <memory>
#include <utility>

#include "util/contract.hpp"
#include "vm/vsnode.hpp"

namespace soda::core {

NodeDescriptor describe_node(const vm::VirtualServiceNode& vsn,
                             int listen_port) {
  NodeDescriptor descriptor;
  descriptor.node_name = vsn.name().value;
  descriptor.host_name = vsn.host_name();
  descriptor.capacity_units = vsn.capacity_units();
  descriptor.component = vsn.component();
  if (vsn.public_endpoint()) {
    descriptor.address = vsn.public_endpoint()->address;
    descriptor.port = vsn.public_endpoint()->port;
  } else {
    descriptor.address = vsn.address();
    descriptor.port = vsn.service_port() > 0 ? vsn.service_port() : listen_port;
  }
  return descriptor;
}

PrimingCoordinator::PrimingCoordinator(
    sim::Engine& engine, const image::RepositoryDirectory& directory,
    const std::vector<SodaDaemon*>& daemons)
    : engine_(engine), directory_(directory), daemons_(daemons) {}

PrimeCommand PrimingCoordinator::make_command(
    const PrimeSpec& spec, const Placement& placement,
    const image::ImageRepository& repo) const {
  PrimeCommand command;
  command.node_name = placement.node_name;
  command.service_name = spec.service_name;
  command.repository = &repo;
  command.location = spec.location;
  command.unit = spec.unit;
  command.capacity_units = placement.units;
  command.reserve = spec.inflated_unit.scaled(placement.units);
  command.customize_rootfs = spec.customize_rootfs;
  command.address_mode = spec.address_mode;
  command.listen_port = spec.listen_port;
  if (!placement.component.empty() && spec.components != nullptr) {
    for (const auto& component : *spec.components) {
      if (component.name == placement.component) command.component = component;
    }
  }
  return command;
}

void PrimingCoordinator::prime(std::vector<Placement> placements,
                               const PrimeSpec& spec, NodeSink on_node,
                               DoneSink on_done) {
  SODA_EXPECTS(on_done != nullptr);
  ++fanouts_;
  // Re-resolve the repository by name for every fan-out: creation validated
  // it moments ago, but resize and recovery may run long after the ASP
  // withdrew it — then the whole fan-out fails cleanly here.
  const image::ImageRepository* repo =
      directory_.find(spec.location.repository);
  if (repo == nullptr) {
    on_done(Outcome{true, "unknown repository: " + spec.location.repository},
            engine_.now());
    return;
  }
  SODA_EXPECTS(!placements.empty());

  struct Join {
    std::size_t pending = 0;
    Outcome outcome;
  };
  auto join = std::make_shared<Join>();
  join->pending = placements.size();
  for (const Placement& placement : placements) {
    placement.daemon->prime_node(
        make_command(spec, placement, *repo),
        [this, join, on_node, on_done](Result<vm::VirtualServiceNode*> node,
                                       sim::SimTime now) {
          if (node.ok()) {
            ++nodes_primed_;
            if (on_node) on_node(*node.value(), now);
          } else if (!join->outcome.failed) {
            join->outcome.failed = true;
            join->outcome.first_error = node.error().message;
          }
          if (--join->pending > 0) return;
          on_done(join->outcome, now);
        });
  }
}

void PrimingCoordinator::rollback(std::vector<NodeDescriptor>& nodes) {
  for (const NodeDescriptor& node : nodes) {
    for (SodaDaemon* daemon : daemons_) {
      // A crashed host already released everything it carried; there is
      // nothing left to tear down there.
      if (daemon->host_name() == node.host_name && daemon->alive()) {
        must(daemon->teardown_node(node.node_name));
      }
    }
  }
  nodes.clear();
}

}  // namespace soda::core
