#include "core/events.hpp"

#include <algorithm>

namespace soda::core {

MetricsRegistry::MetricsRegistry() {
  for (const char* name :
       {"admissions", "rejections", "primings", "priming_failures", "boots",
        "services_started", "resizes", "teardowns", "failures",
        "host_recoveries", "placements_lost", "recoveries"}) {
    counters_[name] = 0;
  }
}

double MetricsRegistry::value(const std::string& name) const {
  if (auto it = counters_.find(name); it != counters_.end()) {
    return static_cast<double>(it->second);
  }
  if (auto it = gauges_.find(name); it != gauges_.end()) return it->second();
  return 0.0;
}

bool MetricsRegistry::has(const std::string& name) const {
  return counters_.count(name) > 0 || gauges_.count(name) > 0;
}

std::vector<std::string> MetricsRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, count] : counters_) out.push_back(name);
  for (const auto& [name, read] : gauges_) {
    if (counters_.count(name) == 0) out.push_back(name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void MetricsRegistry::observe(const ControlPlaneEvent& event) {
  switch (event.kind) {
    case TraceKind::kAdmitted:       increment("admissions"); break;
    case TraceKind::kRejected:       increment("rejections"); break;
    case TraceKind::kPrimingStarted: increment("primings"); break;
    case TraceKind::kPrimingFailed:  increment("priming_failures"); break;
    case TraceKind::kNodeBooted:     increment("boots"); break;
    case TraceKind::kServiceRunning: increment("services_started"); break;
    case TraceKind::kResized:        increment("resizes"); break;
    case TraceKind::kTornDown:       increment("teardowns"); break;
    case TraceKind::kHostDown:       increment("failures"); break;
    case TraceKind::kHostUp:         increment("host_recoveries"); break;
    case TraceKind::kNodeLost:       increment("placements_lost"); break;
    case TraceKind::kRecovered:      increment("recoveries"); break;
    default: break;
  }
}

std::size_t ControlPlaneBus::subscribe(Subscriber subscriber) {
  const std::size_t id = next_id_++;
  subscribers_.emplace_back(id, std::move(subscriber));
  return id;
}

void ControlPlaneBus::unsubscribe(std::size_t id) {
  subscribers_.erase(
      std::remove_if(subscribers_.begin(), subscribers_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      subscribers_.end());
}

void ControlPlaneBus::publish(sim::SimTime at, TraceKind kind,
                              std::string actor, std::string subject,
                              std::string detail) {
  ++published_;
  ControlPlaneEvent event{at, kind, std::move(actor), std::move(subject),
                          std::move(detail)};
  if (trace_) trace_->record(event.at, event.kind, event.actor, event.subject,
                             event.detail);
  metrics_.observe(event);
  for (const auto& [id, subscriber] : subscribers_) subscriber(event);
}

}  // namespace soda::core
