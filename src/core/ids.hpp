// Fleet-scale identity layer (DESIGN.md §11): every hot control-plane path
// keys its state by dense uint32 handles instead of std::string. An
// InternTable assigns each distinct name a stable, dense id (never reused,
// never rehashed on the hot path) with heterogeneous std::string_view
// lookup, so façade APIs that must keep string signatures resolve names
// without materializing a temporary std::string. HostId / ServiceId /
// NodeId are distinct wrapper types over those handles — a HostId cannot be
// confused with a ServiceId at compile time — and IdBitSet is the dense
// replacement for std::set<std::string> membership tests (down hosts,
// visited sets): one bit per id, O(1) test/set/reset.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "snapshot/format.hpp"

namespace soda::core {

/// Sentinel for "name was never interned".
inline constexpr std::uint32_t kInvalidInternId = 0xffffffffU;

namespace detail {

/// Transparent FNV-1a hash so lookups take std::string_view without
/// building a std::string key.
struct StringViewHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view text) const noexcept {
    std::uint64_t hash = 1469598103934665603ULL;
    for (const char c : text) {
      hash = (hash ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    }
    return static_cast<std::size_t>(hash);
  }
};

struct StringViewEq {
  using is_transparent = void;
  [[nodiscard]] bool operator()(std::string_view a,
                                std::string_view b) const noexcept {
    return a == b;
  }
};

}  // namespace detail

/// Bidirectional name <-> dense-id table. Ids are assigned in intern order
/// starting at 0 and are never removed, so they index vectors directly.
/// Names live in a deque — element addresses are stable under growth, which
/// lets the index keep string_views into the stored names (one string per
/// name, ever).
class InternTable {
 public:
  InternTable() = default;
  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;

  /// Id for `name`, interning it on first sight.
  std::uint32_t intern(std::string_view name) {
    if (const auto it = index_.find(name); it != index_.end()) {
      return it->second;
    }
    const auto id = static_cast<std::uint32_t>(names_.size());
    const std::string& stored = names_.emplace_back(name);
    index_.emplace(std::string_view(stored), id);
    return id;
  }

  /// Id for `name` if it was interned before, kInvalidInternId otherwise.
  /// Never allocates.
  [[nodiscard]] std::uint32_t find(std::string_view name) const noexcept {
    const auto it = index_.find(name);
    return it == index_.end() ? kInvalidInternId : it->second;
  }

  [[nodiscard]] bool contains(std::string_view name) const noexcept {
    return find(name) != kInvalidInternId;
  }

  /// The name behind a valid id (reference stable for the table's life).
  [[nodiscard]] const std::string& name(std::uint32_t id) const noexcept {
    return names_[id];
  }

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

  /// Checkpoints names in intern order — ids are positions, so restoring
  /// the sequence restores every dense id bit-for-bit.
  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("intern_table");
    writer.u64(names_.size());
    for (const std::string& name : names_) writer.str(name);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) {
    reader.begin_section("intern_table");
    names_.clear();
    index_.clear();
    const std::uint64_t count = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < count; ++i) {
      const std::string& stored = names_.emplace_back(reader.str());
      index_.emplace(std::string_view(stored),
                     static_cast<std::uint32_t>(names_.size() - 1));
    }
    reader.end_section();
  }

 private:
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, std::uint32_t, detail::StringViewHash,
                     detail::StringViewEq>
      index_;
};

/// CRTP-free strong id wrapper: distinct types per entity kind, all sharing
/// the dense-uint32 representation. Default-constructed ids are invalid.
template <typename Tag>
struct DenseId {
  std::uint32_t value = kInvalidInternId;

  constexpr DenseId() = default;
  constexpr explicit DenseId(std::uint32_t v) noexcept : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value != kInvalidInternId;
  }
  /// The id as a vector index (callers must check valid() first).
  [[nodiscard]] constexpr std::size_t index() const noexcept { return value; }

  friend constexpr auto operator<=>(DenseId, DenseId) noexcept = default;
};

/// One HUP host == one registered daemon. HostIds are assigned in daemon
/// registration order, so "iterate hosts by HostId" is exactly the seed's
/// registration-order iteration.
using HostId = DenseId<struct HostIdTag>;
/// One hosted service. Interned at admission; a name re-created after
/// teardown keeps its id (the intern table never forgets).
using ServiceId = DenseId<struct ServiceIdTag>;
/// One virtual service node ("web/3"). Ordinals are never reused within a
/// record's life, so NodeIds identify node incarnations unambiguously.
using NodeId = DenseId<struct NodeIdTag>;

/// Dense bitset keyed by DenseId: the fleet-scale replacement for
/// std::set<std::string> membership (down hosts, scratch visited sets).
/// Word-addressed storage grows on set(); test() of an id past the end is
/// simply false, so readers never resize.
template <typename Id>
class IdBitSet {
 public:
  void set(Id id) {
    const std::size_t word = id.index() >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    const std::uint64_t bit = 1ULL << (id.index() & 63);
    if ((words_[word] & bit) == 0) {
      words_[word] |= bit;
      ++count_;
    }
  }

  void reset(Id id) noexcept {
    const std::size_t word = id.index() >> 6;
    if (word >= words_.size()) return;
    const std::uint64_t bit = 1ULL << (id.index() & 63);
    if ((words_[word] & bit) != 0) {
      words_[word] &= ~bit;
      --count_;
    }
  }

  [[nodiscard]] bool test(Id id) const noexcept {
    const std::size_t word = id.index() >> 6;
    return word < words_.size() &&
           (words_[word] & (1ULL << (id.index() & 63))) != 0;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  void clear() noexcept {
    words_.clear();
    count_ = 0;
  }

  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("id_bitset");
    writer.u64(words_.size());
    for (const std::uint64_t word : words_) writer.u64(word);
    writer.u64(count_);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) {
    reader.begin_section("id_bitset");
    words_.clear();
    const std::uint64_t words = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < words; ++i) {
      words_.push_back(reader.u64());
    }
    count_ = static_cast<std::size_t>(reader.u64());
    reader.end_section();
  }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

using HostSet = IdBitSet<HostId>;

/// Human-readable "name#id" tag for logs and test failure messages.
[[nodiscard]] std::string intern_debug_tag(const InternTable& table,
                                           std::uint32_t id);

}  // namespace soda::core
