#include "core/profiler.hpp"

#include <cmath>

#include "vm/syscall.hpp"

namespace soda::core {

namespace {
// HTTP framing overhead per response (matches the workload model's).
constexpr std::int64_t kResponseHeaderBytes = 300;
}  // namespace

std::string_view binding_resource_name(BindingResource binding) noexcept {
  switch (binding) {
    case BindingResource::kCpu:       return "cpu";
    case BindingResource::kMemory:    return "memory";
    case BindingResource::kDisk:      return "disk";
    case BindingResource::kBandwidth: return "bandwidth";
  }
  return "unknown";
}

Result<ProfileReport> profile_requirement(const WorkloadProfile& workload,
                                          const host::MachineConfig& m) {
  if (workload.peak_request_rate <= 0) {
    return Error{"peak_request_rate must be > 0"};
  }
  if (workload.target_utilization <= 0 || workload.target_utilization > 1) {
    return Error{"target_utilization must be in (0, 1]"};
  }
  if (workload.response_bytes < 0 || workload.dataset_mb < 0) {
    return Error{"negative workload sizes"};
  }

  // CPU: traced request cost, since the service runs inside a UML.
  const vm::SyscallCostModel cost_model;
  const auto request =
      vm::static_request_cost(cost_model, workload.response_bytes);
  const double cycles_per_request =
      static_cast<double>(request.total_cycles(vm::ExecMode::kUmlTraced));
  const double cpu_mhz_needed = workload.peak_request_rate *
                                cycles_per_request / 1e6 /
                                workload.target_utilization;

  // Bandwidth: response payload plus framing, outbound.
  const double bits_per_request =
      static_cast<double>(workload.response_bytes + kResponseHeaderBytes) * 8.0;
  const double bandwidth_mbps_needed = workload.peak_request_rate *
                                       bits_per_request / 1e6 /
                                       workload.target_utilization;

  // Per-node footprints must fit inside one M: memory and the dataset are
  // replicated per node, not divisible across them.
  if (m.memory_mb < workload.resident_memory_mb) {
    return Error{"machine configuration memory (" + std::to_string(m.memory_mb) +
                 " MB) below per-node footprint (" +
                 std::to_string(workload.resident_memory_mb) + " MB)"};
  }
  if (m.disk_mb < workload.dataset_mb) {
    return Error{"machine configuration disk (" + std::to_string(m.disk_mb) +
                 " MB) below dataset (" + std::to_string(workload.dataset_mb) +
                 " MB)"};
  }

  // Divisible demands: how many M-units does each dimension need?
  const double n_cpu = cpu_mhz_needed / m.cpu_mhz;
  const double n_bw = bandwidth_mbps_needed / m.bandwidth_mbps;

  ProfileReport report;
  report.cpu_mhz_needed = cpu_mhz_needed;
  report.bandwidth_mbps_needed = bandwidth_mbps_needed;
  double n = n_cpu;
  report.binding = BindingResource::kCpu;
  if (n_bw > n) {
    n = n_bw;
    report.binding = BindingResource::kBandwidth;
  }
  report.requirement.n = std::max(1, static_cast<int>(std::ceil(n - 1e-9)));
  report.requirement.m = m;
  return report;
}

}  // namespace soda::core
