// Service monitoring (paper §1: the ASP "should be able to perform service
// monitoring and management, as if the service were hosted locally", and
// §3.4: crashed guests must stop receiving requests). Two pieces:
//
//  * HealthMonitor — a Master-side prober that periodically inspects every
//    virtual service node and flips the corresponding switch backend
//    unhealthy/healthy as guests crash and recover, so the switch never
//    directs clients into a dead guest.
//  * ServiceStatusReport — the ASP-facing snapshot served through the Agent
//    (guest state, process count, memory, per-backend routing counters).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/master.hpp"
#include "sim/engine.hpp"
#include "vm/uml.hpp"

namespace soda::core {

/// One virtual service node's health/metrics snapshot.
struct NodeStatus {
  std::string node_name;
  std::string host_name;
  net::Ipv4Address address;
  int port = 0;
  vm::VmState vm_state = vm::VmState::kStopped;
  std::size_t process_count = 0;
  std::int64_t memory_used_mb = 0;
  std::int64_t memory_cap_mb = 0;
  int capacity_units = 0;
  bool healthy_in_switch = true;
  std::uint64_t requests_routed = 0;
};

/// The ASP-facing view of one service.
struct ServiceStatusReport {
  std::string service_name;
  ServiceState state = ServiceState::kRequested;
  std::vector<NodeStatus> nodes;
  std::uint64_t requests_routed = 0;
  std::uint64_t requests_refused = 0;
};

/// Builds a status report for a service known to `master`; error when the
/// service does not exist.
Result<ServiceStatusReport> collect_service_status(SodaMaster& master,
                                                   const std::string& service_name);

/// Periodic prober that keeps switch backend health in sync with guest
/// state. One monitor per HUP; it watches every service the Master knows.
class HealthMonitor {
 public:
  /// Probes every `interval` once started. Subscribes to the Master's
  /// control-plane bus for the monitor's passive view of the HUP.
  HealthMonitor(sim::Engine& engine, SodaMaster& master,
                sim::SimTime interval = sim::SimTime::milliseconds(500));
  ~HealthMonitor();
  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Starts the periodic probing loop (idempotent). While the loop runs the
  /// engine always has a pending event, so drive the simulation with
  /// Engine::run_until (or call stop()) rather than Engine::run().
  void start();
  /// Stops after the current tick.
  void stop() noexcept { running_ = false; }

  /// One probing pass over every service/node; public so tests and callers
  /// can force an immediate sweep. Returns the number of health
  /// transitions applied to switches.
  std::size_t probe_once();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] std::uint64_t probes() const noexcept { return probes_; }
  [[nodiscard]] std::uint64_t transitions_to_unhealthy() const noexcept {
    return to_unhealthy_;
  }
  [[nodiscard]] std::uint64_t transitions_to_healthy() const noexcept {
    return to_healthy_;
  }
  /// Control-plane events observed through the bus subscription.
  [[nodiscard]] std::uint64_t bus_events_seen() const noexcept {
    return bus_events_seen_;
  }

  // --- Checkpoint / restore ------------------------------------------------

  /// Absolute time of the next probe tick (valid while running).
  [[nodiscard]] sim::SimTime tick_next() const noexcept { return tick_next_; }
  /// Engine id of the pending probe tick (valid while running).
  [[nodiscard]] sim::EventId tick_event() const noexcept { return tick_event_; }
  /// Re-arms the probe tick at the absolute time saved in the checkpoint's
  /// timers section (load_state does not schedule).
  void rearm_tick_at(sim::SimTime when);

  /// Checkpoints the probe counters; the interval is a constructor argument
  /// and is verified on load.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  void tick();

  sim::Engine& engine_;
  SodaMaster& master_;
  sim::SimTime interval_;
  bool running_ = false;
  std::uint64_t probes_ = 0;
  std::uint64_t to_unhealthy_ = 0;
  std::uint64_t to_healthy_ = 0;
  std::uint64_t bus_events_seen_ = 0;
  std::size_t subscription_ = 0;
  sim::SimTime tick_next_ = sim::SimTime::zero();
  sim::EventId tick_event_{};
};

}  // namespace soda::core
