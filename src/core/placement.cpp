#include "core/placement.hpp"

#include <algorithm>
#include <cmath>

#include "core/daemon.hpp"
#include "util/contract.hpp"

namespace soda::core {

namespace {

class FirstFitStrategy final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementPolicy policy() const noexcept override {
    return PlacementPolicy::kFirstFit;
  }
  [[nodiscard]] bool ordered_before(
      const PlacementCandidate& a,
      const PlacementCandidate& b) const noexcept override {
    // Registration order is the first-fit order.
    return a.index < b.index;
  }
};

class BestFitStrategy final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementPolicy policy() const noexcept override {
    return PlacementPolicy::kBestFit;
  }
  [[nodiscard]] bool ordered_before(
      const PlacementCandidate& a,
      const PlacementCandidate& b) const noexcept override {
    if (a.spare_cpu != b.spare_cpu) return a.spare_cpu < b.spare_cpu;
    return a.index < b.index;
  }
};

class WorstFitStrategy final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementPolicy policy() const noexcept override {
    return PlacementPolicy::kWorstFit;
  }
  [[nodiscard]] bool ordered_before(
      const PlacementCandidate& a,
      const PlacementCandidate& b) const noexcept override {
    if (a.spare_cpu != b.spare_cpu) return a.spare_cpu > b.spare_cpu;
    return a.index < b.index;
  }
};

/// Prefers hosts that already hold the image's chunks in their distribution
/// cache (the Nth creation of a popular image lands where priming is nearly
/// free); ties break worst-fit-style on spare CPU, then registration order.
/// Without a manifest (image unknown, distribution disabled) it degrades to
/// worst-fit. The chunk counts land in each candidate's cached_chunks key
/// in prepare() — one pass per host, none per comparison.
class CacheAffinityStrategy final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementPolicy policy() const noexcept override {
    return PlacementPolicy::kCacheAffinity;
  }
  void prepare(std::vector<PlacementCandidate>& candidates,
               const PlacementQuery& query) const override {
    if (query.manifest == nullptr) return;
    for (PlacementCandidate& candidate : candidates) {
      std::uint32_t held = 0;
      const auto& cache = candidate.daemon->distributor().cache();
      for (const auto& chunk : query.manifest->chunks) {
        if (cache.contains(chunk.id)) ++held;
      }
      candidate.cached_chunks = held;
    }
  }
  [[nodiscard]] bool ordered_before(
      const PlacementCandidate& a,
      const PlacementCandidate& b) const noexcept override {
    if (a.cached_chunks != b.cached_chunks) {
      return a.cached_chunks > b.cached_chunks;
    }
    if (a.spare_cpu != b.spare_cpu) return a.spare_cpu > b.spare_cpu;
    return a.index < b.index;
  }
};

}  // namespace

void PlacementStrategy::order(std::vector<PlacementCandidate>& candidates,
                              const PlacementQuery& query) const {
  prepare(candidates, query);
  std::sort(candidates.begin(), candidates.end(),
            [this](const PlacementCandidate& a, const PlacementCandidate& b) {
              return ordered_before(a, b);
            });
}

std::string_view placement_policy_name(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kFirstFit: return "first-fit";
    case PlacementPolicy::kBestFit: return "best-fit";
    case PlacementPolicy::kWorstFit: return "worst-fit";
    case PlacementPolicy::kCacheAffinity: return "cache-affinity";
  }
  return "unknown";
}

int units_that_fit(const host::ResourceVector& avail,
                   const host::ResourceVector& unit) noexcept {
  double k = std::floor(avail.cpu_mhz / unit.cpu_mhz + 1e-9);
  if (unit.memory_mb > 0) {
    k = std::min(k, std::floor(static_cast<double>(avail.memory_mb) /
                               static_cast<double>(unit.memory_mb)));
  }
  if (unit.disk_mb > 0) {
    k = std::min(k, std::floor(static_cast<double>(avail.disk_mb) /
                               static_cast<double>(unit.disk_mb)));
  }
  if (unit.bandwidth_mbps > 0) {
    k = std::min(k, std::floor(avail.bandwidth_mbps / unit.bandwidth_mbps + 1e-9));
  }
  return std::max(0, static_cast<int>(k));
}

std::unique_ptr<PlacementStrategy> make_placement_strategy(
    PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      return std::make_unique<FirstFitStrategy>();
    case PlacementPolicy::kBestFit:
      return std::make_unique<BestFitStrategy>();
    case PlacementPolicy::kWorstFit:
      return std::make_unique<WorstFitStrategy>();
    case PlacementPolicy::kCacheAffinity:
      return std::make_unique<CacheAffinityStrategy>();
  }
  return std::make_unique<FirstFitStrategy>();
}

PlacementPlanner::PlacementPlanner(const std::vector<SodaDaemon*>& daemons,
                                   const HostSet& down_hosts)
    : daemons_(daemons),
      down_hosts_(down_hosts),
      strategy_(make_placement_strategy(PlacementPolicy::kWorstFit)) {}

void PlacementPlanner::configure(PlacementPolicy policy,
                                 double slowdown_factor,
                                 int max_nodes_per_service) {
  SODA_EXPECTS(slowdown_factor >= 1.0);
  SODA_EXPECTS(max_nodes_per_service >= 1);
  strategy_ = make_placement_strategy(policy);
  slowdown_factor_ = slowdown_factor;
  max_nodes_per_service_ = max_nodes_per_service;
}

host::ResourceVector PlacementPlanner::inflated_unit(
    const host::MachineConfig& m) const {
  host::ResourceVector unit = m.to_vector();
  // Only processing and transmission slow down under the guest OS; memory
  // and disk footprints are unchanged (paper §3.5).
  unit.cpu_mhz *= slowdown_factor_;
  unit.bandwidth_mbps *= slowdown_factor_;
  return unit;
}

void PlacementPlanner::collect_candidates(const PlacementQuery& query) const {
  // Hosts the failure detector has declared dead receive no placements
  // until their heartbeats resume. available() is an O(1) cached aggregate,
  // read once per host here rather than once per comparison.
  candidates_.clear();
  for (SodaDaemon* daemon : daemons_) {
    if (down_hosts_.test(daemon->host_id())) continue;
    PlacementCandidate candidate;
    candidate.daemon = daemon;
    candidate.index = static_cast<std::uint32_t>(candidates_.size());
    candidate.spare_cpu = daemon->available().cpu_mhz;
    candidates_.push_back(candidate);
  }
  strategy_->prepare(candidates_, query);
}

void PlacementPlanner::order_candidates(const PlacementQuery& query) const {
  collect_candidates(query);
  std::sort(candidates_.begin(), candidates_.end(),
            [this](const PlacementCandidate& a, const PlacementCandidate& b) {
              return strategy_->ordered_before(a, b);
            });
}

std::vector<SodaDaemon*> PlacementPlanner::ordered_daemons(
    const PlacementQuery& query) const {
  order_candidates(query);
  std::vector<SodaDaemon*> ordered;
  ordered.reserve(candidates_.size());
  for (const PlacementCandidate& candidate : candidates_) {
    ordered.push_back(candidate.daemon);
  }
  return ordered;
}

ApiResult<int> PlacementPlanner::plan_allocation_into(
    std::string_view service_name, const host::ResourceRequirement& req,
    const PlacementQuery& query, std::vector<Placement>& out) const {
  out.clear();
  if (req.n < 1) {
    return ApiError{ApiErrorCode::kInvalidRequest, "requirement n must be >= 1"};
  }
  const host::ResourceVector unit = inflated_unit(req.m);
  // Lazy selection: a full sort orders all 10k hosts when a decision
  // usually consumes two or three. Heapify is O(hosts); popping the heap
  // yields candidates in exactly the strategy's total order (ties broken
  // on index), so the plan is identical to the sorted path's.
  collect_candidates(query);
  const auto heap_after = [this](const PlacementCandidate& a,
                                 const PlacementCandidate& b) {
    return strategy_->ordered_before(b, a);  // max-heap on preference
  };
  std::make_heap(candidates_.begin(), candidates_.end(), heap_after);
  auto heap_end = candidates_.end();
  int remaining = req.n;
  int planned = 0;
  while (heap_end != candidates_.begin()) {
    if (planned >= max_nodes_per_service_) break;
    if (remaining == 0) break;
    std::pop_heap(candidates_.begin(), heap_end, heap_after);
    --heap_end;
    SodaDaemon* daemon = heap_end->daemon;
    // One node per host per service: replicas on the same host would share
    // the same failure domain and buy nothing.
    if (daemon->serves_service(service_name)) continue;
    const int k = std::min(units_that_fit(daemon->available(), unit), remaining);
    if (k >= 1) {
      out.push_back(Placement{daemon, "", k});
      ++planned;
      remaining -= k;
    }
  }
  if (remaining > 0) {
    return ApiError{ApiErrorCode::kInsufficientResources,
                    "HUP cannot satisfy " + req.to_string() + " (short by " +
                        std::to_string(remaining) + " instance(s) of M)"};
  }
  return planned;
}

ApiResult<std::vector<Placement>> PlacementPlanner::plan_allocation(
    const std::string& service_name, const host::ResourceRequirement& req,
    const PlacementQuery& query) const {
  std::vector<Placement> plan;
  if (auto planned = plan_allocation_into(service_name, req, query, plan);
      !planned.ok()) {
    return planned.error();
  }
  return plan;
}

ApiResult<std::vector<Placement>> PlacementPlanner::plan_components(
    const host::MachineConfig& m,
    const std::vector<image::ServiceComponent>& components,
    const PlacementQuery& query) const {
  SODA_EXPECTS(!components.empty());
  // available() is constant while planning (nothing is reserved), so one
  // candidate ordering serves every component; hypothetical usage
  // accumulates per candidate in the planned_ scratch.
  order_candidates(query);
  planned_.clear();
  planned_.resize(candidates_.size());
  std::vector<Placement> plan;
  for (const auto& component : components) {
    const host::ResourceVector need = inflated_unit(m).scaled(component.units);
    bool placed = false;
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      SodaDaemon* daemon = candidates_[i].daemon;
      const host::ResourceVector avail = daemon->available() - planned_[i];
      if (avail.fits(need)) {
        plan.push_back(Placement{daemon, "", component.units, component.name});
        planned_[i] += need;
        placed = true;
        break;
      }
    }
    if (!placed) {
      return ApiError{ApiErrorCode::kInsufficientResources,
                      "no host fits component '" + component.name + "' (" +
                          need.to_string() + ")"};
    }
  }
  return plan;
}

}  // namespace soda::core
