#include "core/placement.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/daemon.hpp"
#include "util/contract.hpp"

namespace soda::core {

namespace {

/// Decorates hosts with their registration index so every comparator can
/// close with an explicit, stable tie-break — determinism never leans on
/// sort stability.
struct Candidate {
  SodaDaemon* daemon;
  std::size_t index;
};

std::vector<Candidate> decorate(const std::vector<SodaDaemon*>& hosts) {
  std::vector<Candidate> out;
  out.reserve(hosts.size());
  for (std::size_t i = 0; i < hosts.size(); ++i) out.push_back({hosts[i], i});
  return out;
}

void strip(const std::vector<Candidate>& ordered,
           std::vector<SodaDaemon*>& hosts) {
  hosts.clear();
  for (const Candidate& candidate : ordered) hosts.push_back(candidate.daemon);
}

class FirstFitStrategy final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementPolicy policy() const noexcept override {
    return PlacementPolicy::kFirstFit;
  }
  void order(std::vector<SodaDaemon*>&, const PlacementQuery&) const override {
    // Registration order is the first-fit order.
  }
};

class BestFitStrategy final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementPolicy policy() const noexcept override {
    return PlacementPolicy::kBestFit;
  }
  void order(std::vector<SodaDaemon*>& hosts,
             const PlacementQuery&) const override {
    auto ordered = decorate(hosts);
    std::sort(ordered.begin(), ordered.end(),
              [](const Candidate& a, const Candidate& b) {
                const double ca = a.daemon->available().cpu_mhz;
                const double cb = b.daemon->available().cpu_mhz;
                if (ca != cb) return ca < cb;
                return a.index < b.index;
              });
    strip(ordered, hosts);
  }
};

class WorstFitStrategy final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementPolicy policy() const noexcept override {
    return PlacementPolicy::kWorstFit;
  }
  void order(std::vector<SodaDaemon*>& hosts,
             const PlacementQuery&) const override {
    auto ordered = decorate(hosts);
    std::sort(ordered.begin(), ordered.end(),
              [](const Candidate& a, const Candidate& b) {
                const double ca = a.daemon->available().cpu_mhz;
                const double cb = b.daemon->available().cpu_mhz;
                if (ca != cb) return ca > cb;
                return a.index < b.index;
              });
    strip(ordered, hosts);
  }
};

/// Prefers hosts that already hold the image's chunks in their distribution
/// cache (the Nth creation of a popular image lands where priming is nearly
/// free); ties break worst-fit-style on spare CPU, then registration order.
/// Without a manifest (image unknown, distribution disabled) it degrades to
/// worst-fit.
class CacheAffinityStrategy final : public PlacementStrategy {
 public:
  [[nodiscard]] PlacementPolicy policy() const noexcept override {
    return PlacementPolicy::kCacheAffinity;
  }
  void order(std::vector<SodaDaemon*>& hosts,
             const PlacementQuery& query) const override {
    auto ordered = decorate(hosts);
    std::map<std::size_t, std::size_t> cached;  // candidate index -> chunks
    if (query.manifest != nullptr) {
      for (const Candidate& candidate : ordered) {
        std::size_t held = 0;
        const auto& cache = candidate.daemon->distributor().cache();
        for (const auto& chunk : query.manifest->chunks) {
          if (cache.contains(chunk.id)) ++held;
        }
        cached[candidate.index] = held;
      }
    }
    std::sort(ordered.begin(), ordered.end(),
              [&](const Candidate& a, const Candidate& b) {
                const std::size_t ha = query.manifest ? cached.at(a.index) : 0;
                const std::size_t hb = query.manifest ? cached.at(b.index) : 0;
                if (ha != hb) return ha > hb;
                const double ca = a.daemon->available().cpu_mhz;
                const double cb = b.daemon->available().cpu_mhz;
                if (ca != cb) return ca > cb;
                return a.index < b.index;
              });
    strip(ordered, hosts);
  }
};

}  // namespace

std::string_view placement_policy_name(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kFirstFit: return "first-fit";
    case PlacementPolicy::kBestFit: return "best-fit";
    case PlacementPolicy::kWorstFit: return "worst-fit";
    case PlacementPolicy::kCacheAffinity: return "cache-affinity";
  }
  return "unknown";
}

int units_that_fit(const host::ResourceVector& avail,
                   const host::ResourceVector& unit) noexcept {
  double k = std::floor(avail.cpu_mhz / unit.cpu_mhz + 1e-9);
  if (unit.memory_mb > 0) {
    k = std::min(k, std::floor(static_cast<double>(avail.memory_mb) /
                               static_cast<double>(unit.memory_mb)));
  }
  if (unit.disk_mb > 0) {
    k = std::min(k, std::floor(static_cast<double>(avail.disk_mb) /
                               static_cast<double>(unit.disk_mb)));
  }
  if (unit.bandwidth_mbps > 0) {
    k = std::min(k, std::floor(avail.bandwidth_mbps / unit.bandwidth_mbps + 1e-9));
  }
  return std::max(0, static_cast<int>(k));
}

std::unique_ptr<PlacementStrategy> make_placement_strategy(
    PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFirstFit:
      return std::make_unique<FirstFitStrategy>();
    case PlacementPolicy::kBestFit:
      return std::make_unique<BestFitStrategy>();
    case PlacementPolicy::kWorstFit:
      return std::make_unique<WorstFitStrategy>();
    case PlacementPolicy::kCacheAffinity:
      return std::make_unique<CacheAffinityStrategy>();
  }
  return std::make_unique<FirstFitStrategy>();
}

PlacementPlanner::PlacementPlanner(const std::vector<SodaDaemon*>& daemons,
                                   const std::set<std::string>& down_hosts)
    : daemons_(daemons),
      down_hosts_(down_hosts),
      strategy_(make_placement_strategy(PlacementPolicy::kWorstFit)) {}

void PlacementPlanner::configure(PlacementPolicy policy,
                                 double slowdown_factor,
                                 int max_nodes_per_service) {
  SODA_EXPECTS(slowdown_factor >= 1.0);
  SODA_EXPECTS(max_nodes_per_service >= 1);
  strategy_ = make_placement_strategy(policy);
  slowdown_factor_ = slowdown_factor;
  max_nodes_per_service_ = max_nodes_per_service;
}

host::ResourceVector PlacementPlanner::inflated_unit(
    const host::MachineConfig& m) const {
  host::ResourceVector unit = m.to_vector();
  // Only processing and transmission slow down under the guest OS; memory
  // and disk footprints are unchanged (paper §3.5).
  unit.cpu_mhz *= slowdown_factor_;
  unit.bandwidth_mbps *= slowdown_factor_;
  return unit;
}

std::vector<SodaDaemon*> PlacementPlanner::ordered_daemons(
    const PlacementQuery& query) const {
  // Hosts the failure detector has declared dead receive no placements
  // until their heartbeats resume.
  std::vector<SodaDaemon*> ordered;
  ordered.reserve(daemons_.size());
  for (SodaDaemon* daemon : daemons_) {
    if (down_hosts_.count(daemon->host_name()) == 0) ordered.push_back(daemon);
  }
  strategy_->order(ordered, query);
  return ordered;
}

ApiResult<std::vector<Placement>> PlacementPlanner::plan_allocation(
    const std::string& service_name, const host::ResourceRequirement& req,
    const PlacementQuery& query) const {
  if (req.n < 1) {
    return ApiError{ApiErrorCode::kInvalidRequest, "requirement n must be >= 1"};
  }
  const host::ResourceVector unit = inflated_unit(req.m);
  std::vector<Placement> plan;
  int remaining = req.n;
  for (SodaDaemon* daemon : ordered_daemons(query)) {
    if (static_cast<int>(plan.size()) >= max_nodes_per_service_) break;
    if (remaining == 0) break;
    // One node per host per service: replicas on the same host would share
    // the same failure domain and buy nothing.
    if (daemon->find_node(service_name + "/0") != nullptr) continue;
    const int k = std::min(units_that_fit(daemon->available(), unit), remaining);
    if (k >= 1) {
      plan.push_back(Placement{daemon, "", k});
      remaining -= k;
    }
  }
  if (remaining > 0) {
    return ApiError{ApiErrorCode::kInsufficientResources,
                    "HUP cannot satisfy " + req.to_string() + " (short by " +
                        std::to_string(remaining) + " instance(s) of M)"};
  }
  return plan;
}

ApiResult<std::vector<Placement>> PlacementPlanner::plan_components(
    const host::MachineConfig& m,
    const std::vector<image::ServiceComponent>& components,
    const PlacementQuery& query) const {
  SODA_EXPECTS(!components.empty());
  // Hypothetical usage per host while planning (nothing is reserved yet).
  std::map<std::string, host::ResourceVector> planned;
  std::vector<Placement> plan;
  for (const auto& component : components) {
    const host::ResourceVector need = inflated_unit(m).scaled(component.units);
    bool placed = false;
    for (SodaDaemon* daemon : ordered_daemons(query)) {
      const host::ResourceVector avail =
          daemon->available() - planned[daemon->host_name()];
      if (avail.fits(need)) {
        plan.push_back(Placement{daemon, "", component.units, component.name});
        planned[daemon->host_name()] += need;
        placed = true;
        break;
      }
    }
    if (!placed) {
      return ApiError{ApiErrorCode::kInsufficientResources,
                      "no host fits component '" + component.name + "' (" +
                          need.to_string() + ")"};
    }
  }
  return plan;
}

}  // namespace soda::core
