// The SODA Agent (paper §3.1): the interface between ASPs and the HUP. It
// authenticates every call, enforces that an ASP only manages its own
// services, forwards validated requests to the SODA Master, and keeps the
// billing ledger (hosting is a utility: ASPs pay per machine-instance-hour).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/master.hpp"
#include "core/monitor.hpp"
#include "sim/engine.hpp"
#include "util/result.hpp"

namespace soda::core {

/// One billing ledger entry: a service's accrual window and size.
struct BillingEntry {
  std::string asp_id;
  std::string service_name;
  int machine_instances = 0;      // n of <n, M> at creation/last resize
  sim::SimTime started_at;
  sim::SimTime ended_at = sim::SimTime::max();  // max() = still accruing

  [[nodiscard]] bool open() const noexcept { return ended_at == sim::SimTime::max(); }
};

/// Accrues machine-instance-hours per ASP.
class BillingLedger {
 public:
  /// Opens an accrual window (service creation / post-resize segment).
  void open(const std::string& asp_id, const std::string& service_name,
            int machine_instances, sim::SimTime now);

  /// Closes the open window for `service_name` (tear-down or resize split).
  /// No-op when none is open.
  void close(const std::string& service_name, sim::SimTime now);

  /// Machine-instance-hours accrued by `asp_id` up to `now`.
  [[nodiscard]] double instance_hours(const std::string& asp_id,
                                      sim::SimTime now) const;

  /// Amount due at `rate_per_instance_hour`.
  [[nodiscard]] double amount_due(const std::string& asp_id, sim::SimTime now,
                                  double rate_per_instance_hour) const;

  [[nodiscard]] const std::vector<BillingEntry>& entries() const noexcept {
    return entries_;
  }

  /// Renders an itemized invoice for `asp_id` at `now`: one row per accrual
  /// segment (service, instances, window, hours, amount) plus a total line.
  [[nodiscard]] std::string render_invoice(const std::string& asp_id,
                                           sim::SimTime now,
                                           double rate_per_instance_hour) const;

  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("billing");
    writer.u64(entries_.size());
    for (const BillingEntry& entry : entries_) {
      writer.str(entry.asp_id);
      writer.str(entry.service_name);
      writer.i64(entry.machine_instances);
      writer.time(entry.started_at);
      writer.time(entry.ended_at);
    }
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) {
    reader.begin_section("billing");
    entries_.clear();
    const std::uint64_t entries = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < entries; ++i) {
      BillingEntry& entry = entries_.emplace_back();
      entry.asp_id = reader.str();
      entry.service_name = reader.str();
      entry.machine_instances = static_cast<int>(reader.i64());
      entry.started_at = reader.time();
      entry.ended_at = reader.time();
    }
    reader.end_section();
  }

 private:
  std::vector<BillingEntry> entries_;
};

/// The Agent. All ASP-facing API calls land here first.
class SodaAgent {
 public:
  SodaAgent(sim::Engine& engine, SodaMaster& master);

  /// Registers an ASP and its API key (out-of-band enrollment).
  void register_asp(const std::string& asp_id, const std::string& api_key);

  /// Validates credentials. Unknown ASP and wrong key are indistinguishable
  /// in the error (no account probing).
  Result<void, ApiError> authenticate(const Credentials& credentials) const;

  using CreateCallback = SodaMaster::CreateCallback;
  /// SODA_service_creation: authenticate, validate, forward to the Master,
  /// and start billing accrual on success.
  void service_creation(const ServiceCreationRequest& request,
                        CreateCallback done);

  /// SODA_service_teardown: authenticate, check ownership, forward, close
  /// the billing window.
  Result<void, ApiError> service_teardown(const ServiceTeardownRequest& request);

  using ResizeCallback = SodaMaster::ResizeCallback;
  /// SODA_service_resizing: authenticate, check ownership, forward; on
  /// success the billing window is split at the resize instant.
  void service_resizing(const ServiceResizingRequest& request,
                        ResizeCallback done);

  /// Service monitoring for the ASP (paper §1: "as if the service were
  /// hosted locally"): authenticate, check ownership, return the live
  /// status report.
  Result<ServiceStatusReport, ApiError> service_status(
      const Credentials& credentials, const std::string& service_name);

  [[nodiscard]] const BillingLedger& billing() const noexcept { return billing_; }
  /// Attaches a trace log (emission is skipped when unset).
  void set_trace(TraceLog* trace) noexcept { trace_ = trace; }
  [[nodiscard]] std::size_t asp_count() const noexcept { return api_keys_.size(); }

  /// The ASP owning `service_name`, if any.
  [[nodiscard]] const std::string* owner_of(const std::string& service_name) const;

  /// Checkpoints enrolled ASPs, service ownership, and the billing ledger.
  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("agent");
    writer.u64(api_keys_.size());
    for (const auto& [asp, key] : api_keys_) {
      writer.str(asp);
      writer.str(key);
    }
    writer.u64(owners_.size());
    for (const auto& [service, asp] : owners_) {
      writer.str(service);
      writer.str(asp);
    }
    billing_.save_state(writer);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) {
    reader.begin_section("agent");
    api_keys_.clear();
    owners_.clear();
    const std::uint64_t asps = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < asps; ++i) {
      std::string asp = reader.str();
      api_keys_.emplace(std::move(asp), reader.str());
    }
    const std::uint64_t owners = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < owners; ++i) {
      std::string service = reader.str();
      owners_.emplace(std::move(service), reader.str());
    }
    billing_.load_state(reader);
    reader.end_section();
  }

 private:
  Result<void, ApiError> check_owner(const Credentials& credentials,
                                     const std::string& service_name) const;

  sim::Engine& engine_;
  SodaMaster& master_;
  std::map<std::string, std::string> api_keys_;  // asp_id -> key
  std::map<std::string, std::string> owners_;    // service -> asp_id
  BillingLedger billing_;
  TraceLog* trace_ = nullptr;
};

}  // namespace soda::core
