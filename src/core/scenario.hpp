// A small scenario language for driving a HUP from text — the operator's
// and integration-test's view of SODA. A scenario is a line-oriented
// script:
//
//   # build the paper testbed and host a service
//   host seattle 128.10.9.120
//   host tacoma  128.10.9.140
//   repo asp-repo
//   asp bioinfo key-123
//   publish web content-mb=16
//   create web-content web n=3
//   expect-nodes web-content 1
//   status web-content
//   resize web-content 2
//   teardown web-content
//   expect-services 0
//
// Parsing is strict (unknown verbs, wrong arity, bad numbers are errors
// with line numbers); execution runs against a fresh Hup and returns the
// transcript. `expect-*` verbs turn scenarios into executable assertions.
#pragma once

#include <string>
#include <vector>

#include "util/result.hpp"

namespace soda::core {

/// One parsed scenario command.
struct ScenarioCommand {
  int line = 0;
  std::string verb;
  std::vector<std::string> args;
};

/// A parsed, validated scenario ready to run.
class Scenario {
 public:
  /// Parses and validates the script; errors carry the offending line.
  static Result<Scenario> parse(std::string_view text);

  /// Executes against a fresh paper-style HUP (empty; hosts come from the
  /// script). Returns the transcript (one line per effectful command), or
  /// the first execution/expectation error with its line number.
  Result<std::vector<std::string>> run() const;

  /// Runs `replicas` independent copies of the scenario fanned out across
  /// `threads` workers (0 = hardware concurrency) via sim::ParallelRunner.
  /// Each replica executes against its own fresh HUP; transcripts come back
  /// in replica order and are identical to calling run() `replicas` times
  /// serially. On failure, the error of the lowest-indexed failing replica
  /// is returned.
  Result<std::vector<std::vector<std::string>>> run_replicas(
      std::size_t replicas, std::size_t threads = 0) const;

  [[nodiscard]] const std::vector<ScenarioCommand>& commands() const noexcept {
    return commands_;
  }

 private:
  std::vector<ScenarioCommand> commands_;
};

}  // namespace soda::core
