#include "core/service.hpp"

namespace soda::core {

std::string_view service_state_name(ServiceState state) noexcept {
  switch (state) {
    case ServiceState::kRequested:   return "requested";
    case ServiceState::kAdmitted:    return "admitted";
    case ServiceState::kPriming:     return "priming";
    case ServiceState::kRunning:     return "running";
    case ServiceState::kResizing:    return "resizing";
    case ServiceState::kDegraded:    return "degraded";
    case ServiceState::kTearingDown: return "tearing-down";
    case ServiceState::kGone:        return "gone";
    case ServiceState::kFailed:      return "failed";
  }
  return "unknown";
}

Status ServiceLifecycle::transition(ServiceState to) {
  const ServiceState from = state_;
  bool legal = false;
  switch (from) {
    case ServiceState::kRequested:
      legal = to == ServiceState::kAdmitted || to == ServiceState::kFailed;
      break;
    case ServiceState::kAdmitted:
      legal = to == ServiceState::kPriming || to == ServiceState::kFailed;
      break;
    case ServiceState::kPriming:
      legal = to == ServiceState::kRunning || to == ServiceState::kFailed;
      break;
    case ServiceState::kRunning:
      legal = to == ServiceState::kResizing || to == ServiceState::kTearingDown ||
              to == ServiceState::kDegraded;
      break;
    case ServiceState::kResizing:
      legal = to == ServiceState::kRunning || to == ServiceState::kTearingDown;
      break;
    case ServiceState::kDegraded:
      legal = to == ServiceState::kRunning || to == ServiceState::kTearingDown;
      break;
    case ServiceState::kTearingDown:
      legal = to == ServiceState::kGone;
      break;
    case ServiceState::kGone:
    case ServiceState::kFailed:
      legal = false;  // terminal
      break;
  }
  if (!legal) {
    return Error{"service " + service_name_ + ": illegal transition " +
                 std::string(service_state_name(from)) + " -> " +
                 std::string(service_state_name(to))};
  }
  state_ = to;
  return {};
}

bool ServiceLifecycle::holds_resources() const noexcept {
  switch (state_) {
    case ServiceState::kAdmitted:
    case ServiceState::kPriming:
    case ServiceState::kRunning:
    case ServiceState::kResizing:
    case ServiceState::kDegraded:
    case ServiceState::kTearingDown:
      return true;
    default:
      return false;
  }
}

}  // namespace soda::core
