#include "core/federation.hpp"

#include <algorithm>

#include "util/contract.hpp"
#include "util/log.hpp"

namespace soda::core {

Federation::Federation(WanConfig wan) : wan_(wan) {}

Hup& Federation::add_site(const std::string& name, MasterConfig master_config) {
  SODA_EXPECTS(!name.empty());
  SODA_EXPECTS(find_site(name) == nullptr);
  auto site = std::make_unique<Site>();
  site->name = name;
  site->hup = std::make_unique<Hup>(engine_, network_, name, master_config);
  // Full WAN mesh with the existing sites.
  for (const auto& existing : sites_) {
    network_.add_duplex_link(site->hup->lan_switch(),
                             existing->hup->lan_switch(), wan_.mbps,
                             wan_.latency);
  }
  // Late joiners still learn every announced ASP and repository.
  for (const auto& [asp_id, key] : asps_) {
    site->hup->agent().register_asp(asp_id, key);
  }
  for (const auto* repository : repositories_) {
    site->hup->master().register_repository(repository);
  }
  sites_.push_back(std::move(site));
  return *sites_.back()->hup;
}

void Federation::register_asp(const std::string& asp_id,
                              const std::string& api_key) {
  asps_.emplace_back(asp_id, api_key);
  for (const auto& site : sites_) {
    site->hup->agent().register_asp(asp_id, api_key);
  }
}

void Federation::announce_repository(const image::ImageRepository* repository) {
  SODA_EXPECTS(repository != nullptr);
  repositories_.push_back(repository);
  for (const auto& site : sites_) {
    site->hup->master().register_repository(repository);
  }
}

std::vector<Federation::Site*> Federation::sites_by_capacity() {
  std::vector<Site*> order;
  order.reserve(sites_.size());
  for (const auto& site : sites_) order.push_back(site.get());
  std::stable_sort(order.begin(), order.end(), [](Site* a, Site* b) {
    return a->hup->master().hup_available().cpu_mhz >
           b->hup->master().hup_available().cpu_mhz;
  });
  return order;
}

void Federation::create_service(const ServiceCreationRequest& request,
                                CreateCallback done) {
  SODA_EXPECTS(done != nullptr);
  if (sites_.empty()) {
    done(ApiError{ApiErrorCode::kInternal, "federation has no member sites"},
         engine_.now());
    return;
  }
  auto order = std::make_shared<std::vector<Site*>>(sites_by_capacity());
  try_create(request, order, 0, std::move(done));
}

void Federation::try_create(const ServiceCreationRequest& request,
                            std::shared_ptr<std::vector<Site*>> order,
                            std::size_t index, CreateCallback done) {
  Site* site = (*order)[index];
  util::global_logger().info(
      "federation", "trying " + request.service_name + " at site " + site->name);
  site->hup->agent().service_creation(
      request, [this, request, order, index, site, done = std::move(done)](
                   ApiResult<ServiceCreationReply> reply,
                   sim::SimTime now) mutable {
        if (reply.ok()) {
          owner_site_[request.service_name] = site;
          done(std::move(reply), now);
          return;
        }
        // Only capacity exhaustion justifies spilling to a peer; every
        // other error (auth, bad image, bad request) is terminal.
        const bool spillable =
            reply.error().code == ApiErrorCode::kInsufficientResources ||
            reply.error().code == ApiErrorCode::kPrimingFailed;
        if (!spillable || index + 1 >= order->size()) {
          done(std::move(reply), now);
          return;
        }
        try_create(request, order, index + 1, std::move(done));
      });
}

Result<void, ApiError> Federation::teardown_service(
    const ServiceTeardownRequest& request) {
  Hup* site = site_of(request.service_name);
  if (!site) {
    return ApiError{ApiErrorCode::kNoSuchService,
                    "no federation site hosts " + request.service_name};
  }
  auto result = site->agent().service_teardown(request);
  if (result.ok()) owner_site_.erase(request.service_name);
  return result;
}

void Federation::resize_service(const ServiceResizingRequest& request,
                                ResizeCallback done) {
  SODA_EXPECTS(done != nullptr);
  Hup* site = site_of(request.service_name);
  if (!site) {
    done(ApiError{ApiErrorCode::kNoSuchService,
                  "no federation site hosts " + request.service_name},
         engine_.now());
    return;
  }
  site->agent().service_resizing(request, std::move(done));
}

Result<ServiceStatusReport, ApiError> Federation::service_status(
    const Credentials& credentials, const std::string& service_name) {
  Hup* site = site_of(service_name);
  if (!site) {
    return ApiError{ApiErrorCode::kNoSuchService,
                    "no federation site hosts " + service_name};
  }
  return site->agent().service_status(credentials, service_name);
}

Hup* Federation::site_of(const std::string& service_name) {
  auto it = owner_site_.find(service_name);
  return it == owner_site_.end() ? nullptr : it->second->hup.get();
}

Hup* Federation::find_site(const std::string& name) {
  for (const auto& site : sites_) {
    if (site->name == name) return site->hup.get();
  }
  return nullptr;
}

}  // namespace soda::core
