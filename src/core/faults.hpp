// Scriptable fault injection: a FaultPlan lists what breaks when (host
// crashes, guest crashes, slow hosts, lossy links), and a FaultInjector
// schedules the whole plan onto the simulation engine against a Hup. Faults
// fire at exact sim-times, so a run with a given plan and seed is fully
// deterministic — serial and parallel replicas see identical failures.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "util/result.hpp"

namespace soda::core {

class Hup;

enum class FaultKind {
  kHostCrash,    // fail-stop: host dies with all its guests
  kHostRecover,  // crashed host reboots empty, daemon resumes heartbeating
  kGuestCrash,   // one virtual service node's UML panics (target = node name)
  kSlowHost,     // host uplink degraded to severity x nominal rate
  kLossyLink,    // heavy loss ~ goodput collapse: like kSlowHost, harsher
};

std::string_view fault_kind_name(FaultKind kind) noexcept;

struct FaultEvent {
  sim::SimTime at;
  FaultKind kind = FaultKind::kHostCrash;
  /// Host name, or node name for kGuestCrash.
  std::string target;
  /// kSlowHost / kLossyLink: the factor applied to the nominal uplink rate
  /// (1.0 restores full speed). Ignored by the other kinds.
  double severity = 1.0;
};

/// Builder for a deterministic fault schedule. Events may be added in any
/// order; build() sorts them by time (stable, so same-time events keep
/// insertion order).
class FaultPlan {
 public:
  FaultPlan& crash_host(sim::SimTime at, std::string host);
  FaultPlan& recover_host(sim::SimTime at, std::string host);
  FaultPlan& crash_guest(sim::SimTime at, std::string node_name);
  FaultPlan& slow_host(sim::SimTime at, std::string host, double factor);
  FaultPlan& restore_host_speed(sim::SimTime at, std::string host);
  FaultPlan& lossy_link(sim::SimTime at, std::string host, double factor);
  FaultPlan& add(FaultEvent event);

  /// The schedule, sorted by time.
  [[nodiscard]] std::vector<FaultEvent> build() const;
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

/// Arms a plan against a HUP: schedules one engine event per fault. The
/// injector must outlive the simulation run.
class FaultInjector {
 public:
  explicit FaultInjector(Hup& hup) : hup_(hup) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event of `plan` at its absolute sim-time (events in the
  /// past are dropped). Can be called repeatedly to layer plans.
  ///
  /// The whole plan is validated first — all-or-nothing, so a rejected plan
  /// schedules none of its events: host-kind events must name a registered
  /// host, guest crashes must name a node some daemon is running right now,
  /// and slow-host / lossy-link factors must be positive. Errors name the
  /// offending event instead of silently no-opping mid-run.
  Status arm(const FaultPlan& plan);

  /// Applies one fault right now (also used by the scheduled events).
  void inject(const FaultEvent& event);

  [[nodiscard]] std::uint64_t injected() const noexcept { return injected_; }

 private:
  Hup& hup_;
  std::uint64_t injected_ = 0;
};

}  // namespace soda::core
