// The SODA Master (paper §3.2): coordinates service creation across the HUP.
// It collects resource availability from the SODA Daemons, admits or rejects
// each <n, M> request, maps admitted requests onto n' <= n virtual service
// nodes (each node's capacity an integer multiple of M; CPU and bandwidth
// conservatively inflated by the virtualization slow-down factor — 1.5 in
// the paper's prototype, no resource aggregation), drives the daemons'
// priming, creates the per-service switch with its configuration file, and
// executes resizing and tear-down.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/daemon.hpp"
#include "core/service.hpp"
#include "core/trace.hpp"
#include "core/switch.hpp"
#include "image/distributor.hpp"
#include "image/repository.hpp"
#include "sim/engine.hpp"
#include "util/result.hpp"

namespace soda::core {

/// How the Master orders hosts when placing slices.
enum class PlacementPolicy {
  kFirstFit,  // registration order
  kBestFit,   // least spare CPU first (pack tightly)
  kWorstFit,  // most spare CPU first (spread load)
};

std::string_view placement_policy_name(PlacementPolicy policy) noexcept;

/// Master tuning knobs. Defaults follow the paper's prototype.
struct MasterConfig {
  /// Conservative CPU/bandwidth inflation covering guest-OS overhead
  /// (paper footnote 2: factor 1.5, no resource aggregation).
  double slowdown_factor = 1.5;
  PlacementPolicy placement = PlacementPolicy::kWorstFit;
  /// Whether daemons tailor guest rootfs images during priming.
  bool customize_rootfs = true;
  /// Bridging (default) gives each node its own LAN IP; proxying keeps
  /// nodes on reserved addresses behind host ports (footnote 3).
  AddressMode address_mode = AddressMode::kBridging;
  /// Upper bound of nodes per service (one per host is the natural limit).
  int max_nodes_per_service = 16;
  /// Image-distribution tuning (chunk cache / coalescing / P2P priming),
  /// applied to every daemon's distributor at registration. Disabled by
  /// default: priming then uses the legacy whole-image download path.
  image::DistributionConfig distribution;
};

/// Failure-detector tuning. The Master declares a host dead when no
/// heartbeat arrived for `timeout` (several missed intervals, so one late
/// heartbeat does not flap the host).
struct FailureDetectorConfig {
  sim::SimTime heartbeat_interval = sim::SimTime::milliseconds(250);
  sim::SimTime timeout = sim::SimTime::seconds(1);
};

/// One planned (or live) node placement.
struct Placement {
  SodaDaemon* daemon = nullptr;
  std::string node_name;
  int units = 1;
  std::string component;  // partitioned services only
};

/// Everything the Master tracks per service.
struct ServiceRecord {
  std::string service_name;
  std::string asp_id;
  host::ResourceRequirement requirement;
  image::ImageLocation image_location;
  const image::ImageRepository* repository = nullptr;
  int listen_port = 0;
  std::vector<NodeDescriptor> nodes;
  std::vector<Placement> placements;
  std::vector<image::ServiceComponent> components;  // empty when replicated
  std::unique_ptr<ServiceSwitch> service_switch;
  ServiceLifecycle lifecycle{""};
  int next_ordinal = 0;  // node-name counter, never reused after teardown
};

template <typename T>
using ApiResult = Result<T, ApiError>;

class SodaMaster {
 public:
  SodaMaster(sim::Engine& engine, MasterConfig config = {});
  SodaMaster(const SodaMaster&) = delete;
  SodaMaster& operator=(const SodaMaster&) = delete;

  /// Wires a host's daemon into the HUP (registration order defines
  /// first-fit order). Pool disjointness against every registered host is
  /// enforced here — the cross-host invariant of §4.3.
  Status register_daemon(SodaDaemon* daemon);

  /// Makes a repository resolvable by name in image locations.
  void register_repository(const image::ImageRepository* repository);

  /// Withdraws a repository from name resolution: downloads already past
  /// their lookup finish, but every later attempt (including retries backing
  /// off right now) fails cleanly instead of dangling. False if unknown.
  bool unregister_repository(const std::string& name);

  /// HUP-wide repository name resolution (daemons' downloaders re-resolve
  /// through this on every attempt).
  [[nodiscard]] const image::RepositoryDirectory& repository_directory()
      const noexcept {
    return directory_;
  }

  /// The chunk-location registry behind peer-to-peer priming.
  [[nodiscard]] image::ChunkRegistry& chunk_registry() noexcept {
    return chunk_registry_;
  }
  [[nodiscard]] const image::ChunkRegistry& chunk_registry() const noexcept {
    return chunk_registry_;
  }

  using WarmCallback = std::function<void(Status, sim::SimTime)>;
  /// Admission-time prefetch: pre-populates the named hosts' chunk caches
  /// with `location`'s image (coalescing with any priming already in
  /// flight), so subsequent creations/boots on them skip the origin. Fires
  /// `done` once every target finished (first error wins). Hosts that are
  /// unknown, dead, or down are skipped; erroring only if none remain.
  void warm_hosts(const image::ImageLocation& location,
                  const std::vector<std::string>& hosts, WarmCallback done);

  using CreateCallback =
      std::function<void(ApiResult<ServiceCreationReply>, sim::SimTime)>;
  /// Admits, primes, and activates a service; `done` fires when the switch
  /// is up (or with the first error after rollback).
  void create_service(const ServiceCreationRequest& request, CreateCallback done);

  /// Synchronous: stops nodes, releases slices/IPs, removes the switch.
  ApiResult<ServiceCreationReply> describe_service(const std::string& name) const;
  Result<void, ApiError> teardown_service(const std::string& name);

  using ResizeCallback =
      std::function<void(ApiResult<ServiceResizingReply>, sim::SimTime)>;
  /// Grows or shrinks a service to n_new machine instances. Growth prefers
  /// in-place slice extension, then adds nodes; shrink releases units from
  /// the last nodes first (never the switch's colocation node).
  void resize_service(const std::string& name, int n_new, ResizeCallback done);

  [[nodiscard]] const ServiceRecord* find_service(const std::string& name) const;
  [[nodiscard]] ServiceSwitch* find_switch(const std::string& name);
  [[nodiscard]] std::size_t service_count() const noexcept { return services_.size(); }
  /// Names of all services currently known (any lifecycle state).
  [[nodiscard]] std::vector<std::string> service_names() const;
  /// Attaches a trace log (emission is skipped when unset).
  void set_trace(TraceLog* trace) noexcept { trace_ = trace; }
  [[nodiscard]] TraceLog* trace() const noexcept { return trace_; }
  [[nodiscard]] const MasterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<SodaDaemon*>& daemons() const noexcept {
    return daemons_;
  }

  /// Total resources currently available across the HUP (sum of daemon
  /// reports).
  [[nodiscard]] host::ResourceVector hup_available() const;

  /// The inflated per-unit reservation for `m` under this config.
  [[nodiscard]] host::ResourceVector inflated_unit(const host::MachineConfig& m) const;

  /// Pure planning (exposed for tests and the allocation ablation bench):
  /// how would <n, M> land on the current HUP? Error when it cannot.
  ApiResult<std::vector<Placement>> plan_allocation(
      const std::string& service_name, const host::ResourceRequirement& req) const;

  /// Planning for a partitioned image: one node per component, each sized
  /// component.units x M; a host may carry several components. Error when
  /// the HUP cannot fit them all.
  ApiResult<std::vector<Placement>> plan_components(
      const host::MachineConfig& m,
      const std::vector<image::ServiceComponent>& components) const;

  // --- Failure detection & recovery ---------------------------------------

  /// Arms the timeout-based failure detector: every registered daemon is
  /// considered heard-from now, and check_failures_once() declares any host
  /// silent for `config.timeout` dead. Call once, after registering hosts;
  /// daemons' heartbeat loops should deliver into on_heartbeat().
  void enable_failure_detection(FailureDetectorConfig config = {});

  /// Starts the periodic detector loop: one check_failures_once() per
  /// heartbeat interval (arms detection first if needed). While the loop
  /// runs the engine always has pending events — drive the simulation with
  /// Engine::run_until.
  void start_failure_detector(FailureDetectorConfig config = {});
  void stop_failure_detector() noexcept { detector_running_ = false; }

  /// Heartbeat sink for SodaDaemon::start_heartbeat. A heartbeat from a
  /// host previously declared dead brings it back (host-up) and re-attempts
  /// recovery of every degraded service.
  void on_heartbeat(SodaDaemon& daemon, sim::SimTime now);

  /// One timeout sweep: declares hosts whose last heartbeat is older than
  /// the configured timeout dead and runs the recovery policy for every
  /// service that lost placements. Returns the number of hosts newly
  /// declared dead. Requires enable_failure_detection().
  std::size_t check_failures_once();

  /// Active-probe variant for synchronous callers (scenarios, tests): polls
  /// each daemon's liveness directly instead of waiting out the heartbeat
  /// timeout; detects both failures and recoveries. Returns the number of
  /// hosts whose detected state changed.
  std::size_t poll_liveness_once();

  [[nodiscard]] bool host_down(const std::string& host_name) const {
    return down_hosts_.count(host_name) > 0;
  }
  [[nodiscard]] std::uint64_t host_failures_detected() const noexcept {
    return host_failures_;
  }
  [[nodiscard]] std::uint64_t placements_lost() const noexcept {
    return placements_lost_;
  }
  [[nodiscard]] std::uint64_t recoveries_completed() const noexcept {
    return recoveries_;
  }

 private:
  struct PrimeJoin;  // collects per-node priming completions

  void finish_creation(ServiceRecord& record, CreateCallback done);
  void rollback_nodes(ServiceRecord& record);
  [[nodiscard]] std::vector<SodaDaemon*> ordered_daemons() const;

  void detector_tick();
  /// Declares `daemon`'s host dead: strips its placements from every
  /// service (switch backends included), degrades affected services, then
  /// attempts to re-create the lost capacity on surviving hosts.
  void handle_host_failure(SodaDaemon& daemon);
  /// A dead host came back (heartbeat resumed or probe saw it alive).
  void handle_host_recovery(SodaDaemon& daemon);
  /// Re-creates as much of a degraded service's lost capacity as fits on
  /// live hosts; transitions Degraded -> Running when fully restored.
  void attempt_recovery(const std::string& service_name);
  /// Keeps the switch's colocation endpoint pointing at a live node.
  void maybe_rehome_switch(ServiceRecord& record);

  sim::Engine& engine_;
  MasterConfig config_;
  std::vector<SodaDaemon*> daemons_;
  image::RepositoryDirectory directory_;
  image::ChunkRegistry chunk_registry_;
  std::map<std::string, ServiceRecord> services_;
  TraceLog* trace_ = nullptr;

  bool detection_enabled_ = false;
  bool detector_running_ = false;
  FailureDetectorConfig detector_config_;
  std::map<std::string, sim::SimTime> last_heartbeat_;
  std::set<std::string> down_hosts_;
  std::uint64_t host_failures_ = 0;
  std::uint64_t placements_lost_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace soda::core
