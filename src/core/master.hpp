// The SODA Master (paper §3.2): coordinates service creation across the HUP.
// It collects resource availability from the SODA Daemons, admits or rejects
// each <n, M> request, maps admitted requests onto n' <= n virtual service
// nodes (each node's capacity an integer multiple of M; CPU and bandwidth
// conservatively inflated by the virtualization slow-down factor — 1.5 in
// the paper's prototype, no resource aggregation), drives the daemons'
// priming, creates the per-service switch with its configuration file, and
// executes resizing and tear-down.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/daemon.hpp"
#include "core/service.hpp"
#include "core/trace.hpp"
#include "core/switch.hpp"
#include "sim/engine.hpp"
#include "util/result.hpp"

namespace soda::core {

/// How the Master orders hosts when placing slices.
enum class PlacementPolicy {
  kFirstFit,  // registration order
  kBestFit,   // least spare CPU first (pack tightly)
  kWorstFit,  // most spare CPU first (spread load)
};

std::string_view placement_policy_name(PlacementPolicy policy) noexcept;

/// Master tuning knobs. Defaults follow the paper's prototype.
struct MasterConfig {
  /// Conservative CPU/bandwidth inflation covering guest-OS overhead
  /// (paper footnote 2: factor 1.5, no resource aggregation).
  double slowdown_factor = 1.5;
  PlacementPolicy placement = PlacementPolicy::kWorstFit;
  /// Whether daemons tailor guest rootfs images during priming.
  bool customize_rootfs = true;
  /// Bridging (default) gives each node its own LAN IP; proxying keeps
  /// nodes on reserved addresses behind host ports (footnote 3).
  AddressMode address_mode = AddressMode::kBridging;
  /// Upper bound of nodes per service (one per host is the natural limit).
  int max_nodes_per_service = 16;
};

/// One planned (or live) node placement.
struct Placement {
  SodaDaemon* daemon = nullptr;
  std::string node_name;
  int units = 1;
  std::string component;  // partitioned services only
};

/// Everything the Master tracks per service.
struct ServiceRecord {
  std::string service_name;
  std::string asp_id;
  host::ResourceRequirement requirement;
  image::ImageLocation image_location;
  const image::ImageRepository* repository = nullptr;
  int listen_port = 0;
  std::vector<NodeDescriptor> nodes;
  std::vector<Placement> placements;
  std::vector<image::ServiceComponent> components;  // empty when replicated
  std::unique_ptr<ServiceSwitch> service_switch;
  ServiceLifecycle lifecycle{""};
  int next_ordinal = 0;  // node-name counter, never reused after teardown
};

template <typename T>
using ApiResult = Result<T, ApiError>;

class SodaMaster {
 public:
  SodaMaster(sim::Engine& engine, MasterConfig config = {});
  SodaMaster(const SodaMaster&) = delete;
  SodaMaster& operator=(const SodaMaster&) = delete;

  /// Wires a host's daemon into the HUP (registration order defines
  /// first-fit order). Pool disjointness against every registered host is
  /// enforced here — the cross-host invariant of §4.3.
  Status register_daemon(SodaDaemon* daemon);

  /// Makes a repository resolvable by name in image locations.
  void register_repository(const image::ImageRepository* repository);

  using CreateCallback =
      std::function<void(ApiResult<ServiceCreationReply>, sim::SimTime)>;
  /// Admits, primes, and activates a service; `done` fires when the switch
  /// is up (or with the first error after rollback).
  void create_service(const ServiceCreationRequest& request, CreateCallback done);

  /// Synchronous: stops nodes, releases slices/IPs, removes the switch.
  ApiResult<ServiceCreationReply> describe_service(const std::string& name) const;
  Result<void, ApiError> teardown_service(const std::string& name);

  using ResizeCallback =
      std::function<void(ApiResult<ServiceResizingReply>, sim::SimTime)>;
  /// Grows or shrinks a service to n_new machine instances. Growth prefers
  /// in-place slice extension, then adds nodes; shrink releases units from
  /// the last nodes first (never the switch's colocation node).
  void resize_service(const std::string& name, int n_new, ResizeCallback done);

  [[nodiscard]] const ServiceRecord* find_service(const std::string& name) const;
  [[nodiscard]] ServiceSwitch* find_switch(const std::string& name);
  [[nodiscard]] std::size_t service_count() const noexcept { return services_.size(); }
  /// Names of all services currently known (any lifecycle state).
  [[nodiscard]] std::vector<std::string> service_names() const;
  /// Attaches a trace log (emission is skipped when unset).
  void set_trace(TraceLog* trace) noexcept { trace_ = trace; }
  [[nodiscard]] TraceLog* trace() const noexcept { return trace_; }
  [[nodiscard]] const MasterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<SodaDaemon*>& daemons() const noexcept {
    return daemons_;
  }

  /// Total resources currently available across the HUP (sum of daemon
  /// reports).
  [[nodiscard]] host::ResourceVector hup_available() const;

  /// The inflated per-unit reservation for `m` under this config.
  [[nodiscard]] host::ResourceVector inflated_unit(const host::MachineConfig& m) const;

  /// Pure planning (exposed for tests and the allocation ablation bench):
  /// how would <n, M> land on the current HUP? Error when it cannot.
  ApiResult<std::vector<Placement>> plan_allocation(
      const std::string& service_name, const host::ResourceRequirement& req) const;

  /// Planning for a partitioned image: one node per component, each sized
  /// component.units x M; a host may carry several components. Error when
  /// the HUP cannot fit them all.
  ApiResult<std::vector<Placement>> plan_components(
      const host::MachineConfig& m,
      const std::vector<image::ServiceComponent>& components) const;

 private:
  struct PrimeJoin;  // collects per-node priming completions

  void finish_creation(ServiceRecord& record, CreateCallback done);
  void rollback_nodes(ServiceRecord& record);
  [[nodiscard]] std::vector<SodaDaemon*> ordered_daemons() const;

  sim::Engine& engine_;
  MasterConfig config_;
  std::vector<SodaDaemon*> daemons_;
  std::map<std::string, const image::ImageRepository*> repositories_;
  std::map<std::string, ServiceRecord> services_;
  TraceLog* trace_ = nullptr;
};

}  // namespace soda::core
