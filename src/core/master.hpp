// The SODA Master (paper §3.2): coordinates service creation across the HUP.
// It collects resource availability from the SODA Daemons, admits or rejects
// each <n, M> request, maps admitted requests onto n' <= n virtual service
// nodes (each node's capacity an integer multiple of M; CPU and bandwidth
// conservatively inflated by the virtualization slow-down factor — 1.5 in
// the paper's prototype, no resource aggregation), drives the daemons'
// priming, creates the per-service switch with its configuration file, and
// executes resizing and tear-down.
//
// The class itself is a thin façade over four composable subsystems:
//   * PlacementPlanner (core/placement) — strategy-ordered host selection;
//   * PrimingCoordinator (core/priming) — the prime fan-out/join shared by
//     creation, resize growth, and recovery;
//   * RecoveryManager (core/recovery) — failure detection and the recovery
//     policy over the Master's service table;
//   * ControlPlaneBus (core/events) — the typed event bus every subsystem
//     publishes into (trace, metrics, subscribers).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/api.hpp"
#include "core/daemon.hpp"
#include "core/events.hpp"
#include "core/ids.hpp"
#include "core/placement.hpp"
#include "core/priming.hpp"
#include "core/recovery.hpp"
#include "core/service.hpp"
#include "core/service_table.hpp"
#include "core/trace.hpp"
#include "core/switch.hpp"
#include "image/distributor.hpp"
#include "image/repository.hpp"
#include "sim/engine.hpp"
#include "util/result.hpp"

namespace soda::core {

/// Master tuning knobs. Defaults follow the paper's prototype.
struct MasterConfig {
  /// Conservative CPU/bandwidth inflation covering guest-OS overhead
  /// (paper footnote 2: factor 1.5, no resource aggregation).
  double slowdown_factor = 1.5;
  PlacementPolicy placement = PlacementPolicy::kWorstFit;
  /// Whether daemons tailor guest rootfs images during priming.
  bool customize_rootfs = true;
  /// Bridging (default) gives each node its own LAN IP; proxying keeps
  /// nodes on reserved addresses behind host ports (footnote 3).
  AddressMode address_mode = AddressMode::kBridging;
  /// Upper bound of nodes per service (one per host is the natural limit).
  int max_nodes_per_service = 16;
  /// Image-distribution tuning (chunk cache / coalescing / P2P priming),
  /// applied to every daemon's distributor at registration. Disabled by
  /// default: priming then uses the legacy whole-image download path.
  image::DistributionConfig distribution;
};

// ServiceRecord and the slot-based ServiceTable live in
// core/service_table.hpp (DESIGN.md §11).

class SodaMaster {
 public:
  SodaMaster(sim::Engine& engine, MasterConfig config = {});
  SodaMaster(const SodaMaster&) = delete;
  SodaMaster& operator=(const SodaMaster&) = delete;

  /// Wires a host's daemon into the HUP (registration order defines
  /// first-fit order). Pool disjointness against every registered host is
  /// enforced here — the cross-host invariant of §4.3.
  Status register_daemon(SodaDaemon* daemon);

  /// Makes a repository resolvable by name in image locations.
  void register_repository(const image::ImageRepository* repository);

  /// Withdraws a repository from name resolution: downloads already past
  /// their lookup finish, but every later attempt (including retries backing
  /// off right now) fails cleanly instead of dangling. False if unknown.
  bool unregister_repository(const std::string& name);

  /// HUP-wide repository name resolution (daemons' downloaders re-resolve
  /// through this on every attempt).
  [[nodiscard]] const image::RepositoryDirectory& repository_directory()
      const noexcept {
    return directory_;
  }

  /// The chunk-location registry behind peer-to-peer priming.
  [[nodiscard]] image::ChunkRegistry& chunk_registry() noexcept {
    return chunk_registry_;
  }
  [[nodiscard]] const image::ChunkRegistry& chunk_registry() const noexcept {
    return chunk_registry_;
  }

  using WarmCallback = std::function<void(Status, sim::SimTime)>;
  /// Admission-time prefetch: pre-populates the named hosts' chunk caches
  /// with `location`'s image (coalescing with any priming already in
  /// flight), so subsequent creations/boots on them skip the origin. Fires
  /// `done` once every target finished (first error wins). Hosts that are
  /// unknown, dead, or down are skipped; erroring only if none remain.
  void warm_hosts(const image::ImageLocation& location,
                  const std::vector<std::string>& hosts, WarmCallback done);

  using CreateCallback =
      std::function<void(ApiResult<ServiceCreationReply>, sim::SimTime)>;
  /// Admits, primes, and activates a service; `done` fires when the switch
  /// is up (or with the first error after rollback).
  void create_service(const ServiceCreationRequest& request, CreateCallback done);

  /// Synchronous: stops nodes, releases slices/IPs, removes the switch.
  ApiResult<ServiceCreationReply> describe_service(const std::string& name) const;
  Result<void, ApiError> teardown_service(const std::string& name);

  using ResizeCallback =
      std::function<void(ApiResult<ServiceResizingReply>, sim::SimTime)>;
  /// Grows or shrinks a service to n_new machine instances. Growth prefers
  /// in-place slice extension, then adds nodes; shrink releases units from
  /// the last nodes first (never the switch's colocation node).
  void resize_service(const std::string& name, int n_new, ResizeCallback done);

  /// Heterogeneous lookups: a string literal or string_view resolves with
  /// no temporary std::string (DESIGN.md §11).
  [[nodiscard]] const ServiceRecord* find_service(std::string_view name) const;
  [[nodiscard]] ServiceSwitch* find_switch(std::string_view name);
  [[nodiscard]] std::size_t service_count() const noexcept { return services_.size(); }
  /// Names of all services currently known (any lifecycle state).
  [[nodiscard]] std::vector<std::string> service_names() const;
  /// The slot-based service store (name-ordered iteration, dense ids).
  [[nodiscard]] ServiceTable& services() noexcept { return services_; }
  [[nodiscard]] const ServiceTable& services() const noexcept {
    return services_;
  }
  /// O(1) host lookup through the intern table; nullptr when unknown.
  [[nodiscard]] SodaDaemon* daemon_for(std::string_view host_name) const;

  /// Attaches a trace log: the bus routes every published event into it
  /// (emission is skipped when unset).
  void set_trace(TraceLog* trace) noexcept { bus_.set_trace(trace); }
  [[nodiscard]] TraceLog* trace() const noexcept { return bus_.trace(); }

  /// The control-plane event bus (publish/subscribe; owns the metrics).
  [[nodiscard]] ControlPlaneBus& bus() noexcept { return bus_; }
  [[nodiscard]] const ControlPlaneBus& bus() const noexcept { return bus_; }
  /// Named control-plane counters/gauges (admissions, rejections, primings,
  /// failures, recoveries, bytes_from_origin, bytes_from_peers, ...).
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return bus_.metrics(); }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return bus_.metrics();
  }

  [[nodiscard]] const MasterConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<SodaDaemon*>& daemons() const noexcept {
    return daemons_;
  }
  /// The placement subsystem (exposed for tests and benches).
  [[nodiscard]] const PlacementPlanner& planner() const noexcept {
    return planner_;
  }

  /// Total resources currently available across the HUP (sum of daemon
  /// reports).
  [[nodiscard]] host::ResourceVector hup_available() const;

  /// The inflated per-unit reservation for `m` under this config.
  [[nodiscard]] host::ResourceVector inflated_unit(const host::MachineConfig& m) const {
    return planner_.inflated_unit(m);
  }

  /// Pure planning (exposed for tests and the allocation ablation bench):
  /// how would <n, M> land on the current HUP? Error when it cannot. The
  /// manifest overload lets cache-affinity placement consult per-host chunk
  /// caches; without one the policy degrades to worst-fit ordering.
  ApiResult<std::vector<Placement>> plan_allocation(
      const std::string& service_name,
      const host::ResourceRequirement& req) const {
    return planner_.plan_allocation(service_name, req);
  }
  ApiResult<std::vector<Placement>> plan_allocation(
      const std::string& service_name, const host::ResourceRequirement& req,
      const image::ImageManifest* manifest) const {
    return planner_.plan_allocation(service_name, req,
                                    PlacementQuery{manifest});
  }

  /// Planning for a partitioned image: one node per component, each sized
  /// component.units x M; a host may carry several components. Error when
  /// the HUP cannot fit them all.
  ApiResult<std::vector<Placement>> plan_components(
      const host::MachineConfig& m,
      const std::vector<image::ServiceComponent>& components) const {
    return planner_.plan_components(m, components);
  }

  // --- Failure detection & recovery (forwarded to the RecoveryManager) ----

  /// Arms the timeout-based failure detector: every registered daemon is
  /// considered heard-from now, and check_failures_once() declares any host
  /// silent for `config.timeout` dead. Call once, after registering hosts;
  /// daemons' heartbeat loops should deliver into on_heartbeat().
  void enable_failure_detection(FailureDetectorConfig config = {}) {
    recovery_.enable(config);
  }

  /// Starts the periodic detector loop: one check_failures_once() per
  /// heartbeat interval (arms detection first if needed). While the loop
  /// runs the engine always has pending events — drive the simulation with
  /// Engine::run_until.
  void start_failure_detector(FailureDetectorConfig config = {}) {
    recovery_.start(config);
  }
  void stop_failure_detector() noexcept { recovery_.stop(); }

  /// Heartbeat sink for SodaDaemon::start_heartbeat. A heartbeat from a
  /// host previously declared dead brings it back (host-up) and re-attempts
  /// recovery of every degraded service.
  void on_heartbeat(SodaDaemon& daemon, sim::SimTime now) {
    recovery_.on_heartbeat(daemon, now);
  }

  /// One timeout sweep: declares hosts whose last heartbeat is older than
  /// the configured timeout dead and runs the recovery policy for every
  /// service that lost placements. Returns the number of hosts newly
  /// declared dead. Requires enable_failure_detection().
  std::size_t check_failures_once() { return recovery_.check_once(); }

  /// Active-probe variant for synchronous callers (scenarios, tests): polls
  /// each daemon's liveness directly instead of waiting out the heartbeat
  /// timeout; detects both failures and recoveries. Returns the number of
  /// hosts whose detected state changed.
  std::size_t poll_liveness_once() { return recovery_.poll_once(); }

  /// Re-attempts recovery of every Degraded service right now (see
  /// RecoveryManager::retry_recoveries). Chaos/stabilization hook: brings
  /// services back when a recovery attempt failed mid-flight and no host
  /// transition is left to retrigger it.
  std::size_t retry_recoveries() { return recovery_.retry_recoveries(); }

  [[nodiscard]] bool host_down(std::string_view host_name) const {
    const HostId id{host_names_.find(host_name)};
    return id.valid() && down_hosts_.test(id);
  }
  /// The down-host membership bitset, keyed by HostId.
  [[nodiscard]] const HostSet& down_hosts() const noexcept {
    return down_hosts_;
  }
  [[nodiscard]] std::uint64_t host_failures_detected() const noexcept {
    return recovery_.host_failures();
  }
  [[nodiscard]] std::uint64_t placements_lost() const noexcept {
    return recovery_.placements_lost();
  }
  [[nodiscard]] std::uint64_t recoveries_completed() const noexcept {
    return recovery_.recoveries();
  }

  // --- Checkpoint / restore ------------------------------------------------

  /// Restore-time wiring: re-attaches a reconstructed daemon without the
  /// registration side effects (no disjointness probe, no detector arming —
  /// the detector's state is restored wholesale by load_state). Call once
  /// per daemon, in the saved registration order, before load_state.
  void attach_restored_daemon(SodaDaemon* daemon);

  /// The recovery subsystem's pending detector tick (checkpoint plumbing).
  [[nodiscard]] RecoveryManager& recovery() noexcept { return recovery_; }

  /// Checkpoints the whole control plane: host intern table, down-host set,
  /// chunk registry, bus metrics, priming counters, detector wheel, and the
  /// full service table (switches and policy state included). Repositories
  /// and daemons are owned by the caller — attach/register them first.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  void finish_creation(ServiceRecord& record, CreateCallback done);

  sim::Engine& engine_;
  MasterConfig config_;
  std::vector<SodaDaemon*> daemons_;  // registration order == HostId order
  InternTable host_names_;            // host name -> dense HostId
  image::RepositoryDirectory directory_;
  image::ChunkRegistry chunk_registry_;
  ServiceTable services_;
  HostSet down_hosts_;
  ControlPlaneBus bus_;
  PlacementPlanner planner_;
  PrimingCoordinator priming_;
  RecoveryManager recovery_;
};

}  // namespace soda::core
