#include "core/config_file.hpp"

#include <algorithm>

#include "util/contract.hpp"
#include "util/strings.hpp"

namespace soda::core {

Status ServiceConfigFile::add(const BackEndEntry& entry) {
  SODA_EXPECTS(entry.port > 0 && entry.capacity >= 1);
  // Keyed by (address, port): proxied components of a partitioned service
  // legitimately share their host's public address on different ports.
  const bool exists =
      std::any_of(entries_.begin(), entries_.end(), [&](const BackEndEntry& e) {
        return e.address == entry.address && e.port == entry.port;
      });
  if (exists) {
    return Error{"backend already present: " + entry.address.to_string() + ":" +
                 std::to_string(entry.port)};
  }
  entries_.push_back(entry);
  return {};
}

Status ServiceConfigFile::remove(net::Ipv4Address address) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const BackEndEntry& e) { return e.address == address; });
  if (it == entries_.end()) {
    return Error{"no backend " + address.to_string()};
  }
  entries_.erase(it);
  return {};
}

Status ServiceConfigFile::set_capacity(net::Ipv4Address address, int capacity) {
  SODA_EXPECTS(capacity >= 1);
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const BackEndEntry& e) { return e.address == address; });
  if (it == entries_.end()) {
    return Error{"no backend " + address.to_string()};
  }
  it->capacity = capacity;
  return {};
}

int ServiceConfigFile::total_capacity() const noexcept {
  int total = 0;
  for (const auto& entry : entries_) total += entry.capacity;
  return total;
}

std::string ServiceConfigFile::serialize() const {
  std::string out;
  for (const auto& entry : entries_) {
    out += "BackEnd " + entry.address.to_string() + " " +
           std::to_string(entry.port) + " " + std::to_string(entry.capacity);
    if (!entry.component.empty()) out += " " + entry.component;
    out += "\n";
  }
  return out;
}

Result<ServiceConfigFile> ServiceConfigFile::parse(std::string_view text) {
  ServiceConfigFile file;
  for (const auto& raw_line : util::split(text, '\n')) {
    const std::string_view line = util::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const auto fields = util::split_whitespace(line);
    if ((fields.size() != 4 && fields.size() != 5) || fields[0] != "BackEnd") {
      return Error{"malformed config line: " + std::string(line)};
    }
    const auto address = net::Ipv4Address::parse(fields[1]);
    const auto port = util::parse_int(fields[2]);
    const auto capacity = util::parse_int(fields[3]);
    if (!address) return Error{"bad address: " + fields[1]};
    if (!port || *port <= 0 || *port > 65535) return Error{"bad port: " + fields[2]};
    if (!capacity || *capacity < 1) return Error{"bad capacity: " + fields[3]};
    BackEndEntry entry{*address, static_cast<int>(*port),
                       static_cast<int>(*capacity),
                       fields.size() == 5 ? fields[4] : std::string()};
    if (auto status = file.add(entry); !status.ok()) {
      return status.error();
    }
  }
  return file;
}

}  // namespace soda::core
