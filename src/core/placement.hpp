// Placement planning (paper §3.2's mapping of <n, M> onto n' <= n virtual
// service nodes), extracted from the Master into a strategy-driven planner.
// A PlacementStrategy orders candidate hosts; the planner then packs units
// host by host. Every ordering is explicitly deterministic: ties (equal
// spare CPU, equal cache affinity) break on daemon registration order, so
// two equal hosts place identically across repeated runs and under the
// parallel experiment runner.
//
// Fleet-scale layout (DESIGN.md §11): strategies expose a strict total
// order over Candidate records whose sort keys (spare CPU, cached chunks)
// are computed once per host — never inside a comparator — and the planner
// reuses its candidate scratch buffer across calls. The admission hot path
// consumes the order lazily through a binary heap (O(hosts) to build, one
// O(log hosts) pop per host actually considered), so a steady-state
// placement decision over 10k hosts is one linear key pass plus a handful
// of heap pops with zero heap allocations (see plan_allocation_into and
// bench/fig_fleet).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/api.hpp"
#include "core/ids.hpp"
#include "host/resources.hpp"
#include "image/chunk.hpp"
#include "image/image.hpp"
#include "util/result.hpp"

namespace soda::core {

class SodaDaemon;

/// How the Master orders hosts when placing slices.
enum class PlacementPolicy {
  kFirstFit,       // registration order
  kBestFit,        // least spare CPU first (pack tightly)
  kWorstFit,       // most spare CPU first (spread load)
  kCacheAffinity,  // most image chunks already cached first (cheap priming)
};

std::string_view placement_policy_name(PlacementPolicy policy) noexcept;

/// One planned (or live) node placement.
struct Placement {
  SodaDaemon* daemon = nullptr;
  std::string node_name;
  int units = 1;
  std::string component;  // partitioned services only
};

template <typename T>
using ApiResult = Result<T, ApiError>;

/// How many machine instances of `unit` fit into `avail`.
[[nodiscard]] int units_that_fit(const host::ResourceVector& avail,
                                 const host::ResourceVector& unit) noexcept;

/// Context a strategy may consult when ordering hosts. All fields optional:
/// a query without a manifest degrades cache-affinity to worst-fit.
struct PlacementQuery {
  const image::ImageManifest* manifest = nullptr;
};

/// One live host under consideration, with its sort keys precomputed so
/// comparators are pure arithmetic (the seed re-summed every host's slices
/// inside each comparison — O(slices log hosts) per decision).
struct PlacementCandidate {
  SodaDaemon* daemon = nullptr;
  std::uint32_t index = 0;        // position among live hosts (tie-break)
  double spare_cpu = 0.0;         // available().cpu_mhz snapshot
  std::uint32_t cached_chunks = 0;  // cache-affinity key
};

/// Strategy object: defines a strict total order (most-preferred first)
/// over candidates. The input vector arrives in daemon registration order
/// with spare_cpu filled in; `prepare` computes any query-dependent keys
/// once per decision, and `ordered_before` must be pure arithmetic over
/// the precomputed keys — deterministic (ties broken on `index`) and
/// allocation-free. The planner consumes the order either by full sort
/// (ordered_daemons, plan_components) or by lazy heap selection (the
/// admission hot path, which rarely needs more than the top few hosts).
class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;
  [[nodiscard]] virtual PlacementPolicy policy() const noexcept = 0;
  /// Computes per-candidate keys that need the query (e.g. cached-chunk
  /// counts). Called once per decision, before any comparison.
  virtual void prepare(std::vector<PlacementCandidate>&,
                       const PlacementQuery&) const {}
  [[nodiscard]] virtual bool ordered_before(
      const PlacementCandidate& a,
      const PlacementCandidate& b) const noexcept = 0;

  /// Full strategy ordering: prepare, then sort by ordered_before.
  void order(std::vector<PlacementCandidate>& candidates,
             const PlacementQuery& query) const;
};

/// Builds the strategy object for a policy.
[[nodiscard]] std::unique_ptr<PlacementStrategy> make_placement_strategy(
    PlacementPolicy policy);

/// The planner: pure planning over the registered daemons (nothing is
/// reserved), shared by creation, resizing, and recovery. It reads the
/// Master's daemon list and down-host bitset by reference, so it always
/// plans against the live HUP view.
class PlacementPlanner {
 public:
  PlacementPlanner(const std::vector<SodaDaemon*>& daemons,
                   const HostSet& down_hosts);

  /// Applies the Master's tuning (policy, slow-down inflation, node cap).
  void configure(PlacementPolicy policy, double slowdown_factor,
                 int max_nodes_per_service);

  [[nodiscard]] PlacementPolicy policy() const noexcept {
    return strategy_->policy();
  }

  /// The inflated per-unit reservation for `m` (paper footnote 2: CPU and
  /// bandwidth only; memory and disk footprints are unchanged).
  [[nodiscard]] host::ResourceVector inflated_unit(
      const host::MachineConfig& m) const;

  /// Live hosts in strategy preference order (dead hosts excluded).
  [[nodiscard]] std::vector<SodaDaemon*> ordered_daemons(
      const PlacementQuery& query = {}) const;

  /// How would <n, M> land on the current HUP? Error when it cannot.
  [[nodiscard]] ApiResult<std::vector<Placement>> plan_allocation(
      const std::string& service_name, const host::ResourceRequirement& req,
      const PlacementQuery& query = {}) const;

  /// Allocation-free variant for the admission hot path: appends the plan
  /// to `out` (cleared first; its capacity is reused) and returns the node
  /// count. At steady state — candidate scratch and `out` warm — a
  /// successful call performs zero heap allocations.
  [[nodiscard]] ApiResult<int> plan_allocation_into(
      std::string_view service_name, const host::ResourceRequirement& req,
      const PlacementQuery& query, std::vector<Placement>& out) const;

  /// Planning for a partitioned image: one node per component, each sized
  /// component.units x M; a host may carry several components.
  [[nodiscard]] ApiResult<std::vector<Placement>> plan_components(
      const host::MachineConfig& m,
      const std::vector<image::ServiceComponent>& components,
      const PlacementQuery& query = {}) const;

 private:
  /// Fills the candidate scratch with live hosts (registration order) and
  /// runs the strategy's prepare() pass — keys computed, order not applied.
  void collect_candidates(const PlacementQuery& query) const;
  /// collect_candidates + full sort by the strategy's total order.
  void order_candidates(const PlacementQuery& query) const;

  const std::vector<SodaDaemon*>& daemons_;
  const HostSet& down_hosts_;
  std::unique_ptr<PlacementStrategy> strategy_;
  double slowdown_factor_ = 1.5;
  int max_nodes_per_service_ = 16;
  /// Scratch reused across planning calls (capacity-stable; the planner is
  /// confined to the simulation thread like the rest of the control plane).
  mutable std::vector<PlacementCandidate> candidates_;
  mutable std::vector<host::ResourceVector> planned_;  // plan_components only
};

}  // namespace soda::core
