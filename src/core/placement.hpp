// Placement planning (paper §3.2's mapping of <n, M> onto n' <= n virtual
// service nodes), extracted from the Master into a strategy-driven planner.
// A PlacementStrategy orders candidate hosts; the planner then packs units
// host by host. Every ordering is explicitly deterministic: ties (equal
// spare CPU, equal cache affinity) break on daemon registration order, so
// two equal hosts place identically across repeated runs and under the
// parallel experiment runner.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/api.hpp"
#include "host/resources.hpp"
#include "image/chunk.hpp"
#include "image/image.hpp"
#include "util/result.hpp"

namespace soda::core {

class SodaDaemon;

/// How the Master orders hosts when placing slices.
enum class PlacementPolicy {
  kFirstFit,       // registration order
  kBestFit,        // least spare CPU first (pack tightly)
  kWorstFit,       // most spare CPU first (spread load)
  kCacheAffinity,  // most image chunks already cached first (cheap priming)
};

std::string_view placement_policy_name(PlacementPolicy policy) noexcept;

/// One planned (or live) node placement.
struct Placement {
  SodaDaemon* daemon = nullptr;
  std::string node_name;
  int units = 1;
  std::string component;  // partitioned services only
};

template <typename T>
using ApiResult = Result<T, ApiError>;

/// How many machine instances of `unit` fit into `avail`.
[[nodiscard]] int units_that_fit(const host::ResourceVector& avail,
                                 const host::ResourceVector& unit) noexcept;

/// Context a strategy may consult when ordering hosts. All fields optional:
/// a query without a manifest degrades cache-affinity to worst-fit.
struct PlacementQuery {
  const image::ImageManifest* manifest = nullptr;
};

/// Strategy object: orders candidate hosts most-preferred first. The input
/// vector arrives in daemon registration order; implementations must be
/// deterministic (total order — ties broken on the registration index).
class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;
  [[nodiscard]] virtual PlacementPolicy policy() const noexcept = 0;
  virtual void order(std::vector<SodaDaemon*>& hosts,
                     const PlacementQuery& query) const = 0;
};

/// Builds the strategy object for a policy.
[[nodiscard]] std::unique_ptr<PlacementStrategy> make_placement_strategy(
    PlacementPolicy policy);

/// The planner: pure planning over the registered daemons (nothing is
/// reserved), shared by creation, resizing, and recovery. It reads the
/// Master's daemon list and down-host set by reference, so it always plans
/// against the live HUP view.
class PlacementPlanner {
 public:
  PlacementPlanner(const std::vector<SodaDaemon*>& daemons,
                   const std::set<std::string>& down_hosts);

  /// Applies the Master's tuning (policy, slow-down inflation, node cap).
  void configure(PlacementPolicy policy, double slowdown_factor,
                 int max_nodes_per_service);

  [[nodiscard]] PlacementPolicy policy() const noexcept {
    return strategy_->policy();
  }

  /// The inflated per-unit reservation for `m` (paper footnote 2: CPU and
  /// bandwidth only; memory and disk footprints are unchanged).
  [[nodiscard]] host::ResourceVector inflated_unit(
      const host::MachineConfig& m) const;

  /// Live hosts in strategy preference order (dead hosts excluded).
  [[nodiscard]] std::vector<SodaDaemon*> ordered_daemons(
      const PlacementQuery& query = {}) const;

  /// How would <n, M> land on the current HUP? Error when it cannot.
  [[nodiscard]] ApiResult<std::vector<Placement>> plan_allocation(
      const std::string& service_name, const host::ResourceRequirement& req,
      const PlacementQuery& query = {}) const;

  /// Planning for a partitioned image: one node per component, each sized
  /// component.units x M; a host may carry several components.
  [[nodiscard]] ApiResult<std::vector<Placement>> plan_components(
      const host::MachineConfig& m,
      const std::vector<image::ServiceComponent>& components,
      const PlacementQuery& query = {}) const;

 private:
  const std::vector<SodaDaemon*>& daemons_;
  const std::set<std::string>& down_hosts_;
  std::unique_ptr<PlacementStrategy> strategy_;
  double slowdown_factor_ = 1.5;
  int max_nodes_per_service_ = 16;
};

}  // namespace soda::core
