#include "core/scenario.hpp"

#include <cstdio>
#include <map>
#include <optional>

#include "core/hup.hpp"
#include "core/monitor.hpp"
#include "image/image.hpp"
#include "sim/parallel_runner.hpp"
#include "util/strings.hpp"
#include "workload/siege.hpp"
#include "workload/traffic.hpp"
#include "workload/webservice.hpp"

namespace soda::core {

namespace {

/// verb -> {min args, max args}
const std::map<std::string, std::pair<int, int>>& verb_arity() {
  static const std::map<std::string, std::pair<int, int>> arity = {
      {"mode", {1, 1}},          // mode <bridging|proxying> (before any host)
      {"placement", {1, 1}},     // placement <first-fit|best-fit|worst-fit|cache-affinity>
      {"inflate", {1, 1}},       // inflate <factor-percent> (e.g. 150)
      {"distribution", {1, 1}},  // distribution <origin|cache|p2p> (pre-host)
      {"host", {2, 3}},          // host <seattle|tacoma> <pool-start> [size]
      {"repo", {1, 1}},          // repo <name>
      {"asp", {2, 2}},           // asp <id> <key>
      {"publish", {1, 2}},       // publish <web|honeypot|genome|full-server|shop> [content-mb=N]
      {"create", {3, 3}},        // create <service> <image> n=<n>
      {"resize", {2, 2}},        // resize <service> <n>
      {"teardown", {1, 1}},      // teardown <service>
      {"status", {1, 1}},        // status <service>
      {"billing", {1, 1}},       // billing <asp>
      {"crash", {2, 2}},         // crash <service> <node-ordinal>
      {"crash-host", {1, 1}},    // crash-host <host> (fail-stop, guests die)
      {"recover-host", {1, 1}},  // recover-host <host> (reboots empty)
      {"slow-host", {2, 2}},     // slow-host <host> <factor> (uplink x factor)
      {"restore-host", {1, 1}},  // restore-host <host> (uplink back to 1.0)
      {"lossy-link", {2, 2}},    // lossy-link <host> <factor> (goodput collapse)
      {"advance", {1, 1}},       // advance <seconds> (run the engine forward)
      {"switch-policy", {2, 3}}, // switch-policy <service> <policy> [seed=N]
      {"detect", {0, 0}},        // one liveness poll + recovery pass
      {"probe", {0, 0}},         // run one health-monitor sweep
      {"trace", {0, 1}},         // trace [subject] -> dump control-plane events
      {"warm", {2, 2}},          // warm <image> <host> (prefetch chunks)
      {"drop-cache", {1, 1}},    // drop-cache <host>
      {"expect-cached", {2, 2}}, // expect-cached <host> <min-chunks> (0: none)
      {"traffic", {2, 4}},       // traffic <service> <spec> [bytes=N] [seed=N]
      {"expect-p99", {2, 2}},    // expect-p99 <service> <max-ms>
      {"expect-nodes", {2, 2}},  // expect-nodes <service> <count>
      {"expect-state", {2, 2}},  // expect-state <service> <running|...>
      {"expect-services", {1, 1}},   // expect-services <count>
      {"expect-metric", {2, 2}},     // expect-metric <name> <value>
      {"expect-error", {2, 99}},     // expect-error <verb> <args...>
  };
  return arity;
}

Result<long long> arg_int(const ScenarioCommand& cmd, const std::string& raw) {
  // Accepts "3" or "n=3".
  std::string_view text = raw;
  if (const auto eq = text.find('='); eq != std::string_view::npos) {
    text = text.substr(eq + 1);
  }
  const auto value = util::parse_int(text);
  if (!value) {
    return Error{"line " + std::to_string(cmd.line) + ": bad number '" + raw + "'"};
  }
  return *value;
}

std::string error_at(int line, const std::string& message) {
  return "line " + std::to_string(line) + ": " + message;
}

/// Execution state threaded through the command handlers. The Hup is built
/// lazily so configuration verbs (mode/placement/inflate) can precede it.
/// Headline numbers from one `traffic` run, kept for expect-p99.
struct TrafficSummary {
  std::uint64_t scheduled = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

struct Runtime {
  MasterConfig config;
  std::unique_ptr<Hup> hup_ptr;
  image::ImageRepository* repo = nullptr;
  std::map<std::string, image::ImageLocation> images;  // name -> location
  std::string asp_id, api_key;
  std::vector<std::string> transcript;
  std::map<std::string, TrafficSummary> traffic_reports;  // per service
  int hosts_added = 0;
  int traffic_runs = 0;

  Hup& hup() {
    if (!hup_ptr) hup_ptr = std::make_unique<Hup>(config);
    return *hup_ptr;
  }
  [[nodiscard]] bool hup_built() const noexcept { return hup_ptr != nullptr; }

  void say(std::string line) { transcript.push_back(std::move(line)); }
};

Result<image::ServiceImage> make_image(const ScenarioCommand& cmd) {
  std::int64_t content_mb = 8;
  if (cmd.args.size() == 2) {
    auto mb = arg_int(cmd, cmd.args[1]);
    if (!mb.ok()) return mb.error();
    content_mb = mb.value();
  }
  const std::string& kind = cmd.args[0];
  if (kind == "web") return image::web_content_image(content_mb * 1024 * 1024);
  if (kind == "honeypot") return image::honeypot_image();
  if (kind == "genome") return image::genome_matching_image();
  if (kind == "full-server") return image::full_server_image();
  if (kind == "shop") return image::online_shop_image();
  return Error{error_at(cmd.line, "unknown image kind '" + kind + "'")};
}

/// Runs one command; expectation failures and API errors become errors.
Status execute(Runtime& rt, const ScenarioCommand& cmd) {
  char buf[256];
  if (cmd.verb == "mode" || cmd.verb == "placement" || cmd.verb == "inflate" ||
      cmd.verb == "distribution") {
    if (rt.hup_built()) {
      return Error{error_at(cmd.line,
                            "'" + cmd.verb + "' must precede the first host")};
    }
    if (cmd.verb == "mode") {
      if (cmd.args[0] == "bridging") {
        rt.config.address_mode = AddressMode::kBridging;
      } else if (cmd.args[0] == "proxying") {
        rt.config.address_mode = AddressMode::kProxying;
      } else {
        return Error{error_at(cmd.line, "unknown mode '" + cmd.args[0] + "'")};
      }
    } else if (cmd.verb == "placement") {
      if (cmd.args[0] == "first-fit") {
        rt.config.placement = PlacementPolicy::kFirstFit;
      } else if (cmd.args[0] == "best-fit") {
        rt.config.placement = PlacementPolicy::kBestFit;
      } else if (cmd.args[0] == "worst-fit") {
        rt.config.placement = PlacementPolicy::kWorstFit;
      } else if (cmd.args[0] == "cache-affinity") {
        rt.config.placement = PlacementPolicy::kCacheAffinity;
      } else {
        return Error{error_at(cmd.line, "unknown placement '" + cmd.args[0] + "'")};
      }
    } else if (cmd.verb == "distribution") {
      if (cmd.args[0] == "origin") {
        rt.config.distribution.enabled = false;
      } else if (cmd.args[0] == "cache") {
        rt.config.distribution.enabled = true;
        rt.config.distribution.p2p = false;
      } else if (cmd.args[0] == "p2p") {
        rt.config.distribution.enabled = true;
        rt.config.distribution.p2p = true;
      } else {
        return Error{error_at(cmd.line,
                              "unknown distribution '" + cmd.args[0] + "'")};
      }
    } else {
      auto percent = arg_int(cmd, cmd.args[0]);
      if (!percent.ok()) return percent.error();
      if (percent.value() < 100) {
        return Error{error_at(cmd.line, "inflate takes percent >= 100")};
      }
      rt.config.slowdown_factor = static_cast<double>(percent.value()) / 100.0;
    }
    rt.say(cmd.verb + " = " + cmd.args[0]);
    return {};
  }
  if (cmd.verb == "crash") {
    auto ordinal = arg_int(cmd, cmd.args[1]);
    if (!ordinal.ok()) return ordinal.error();
    const std::string node_name =
        cmd.args[0] + "/" + std::to_string(ordinal.value());
    const ServiceRecord* record = rt.hup().master().find_service(cmd.args[0]);
    if (!record) return Error{error_at(cmd.line, "no service " + cmd.args[0])};
    for (const auto& node : record->nodes) {
      if (node.node_name != node_name) continue;
      rt.hup().find_daemon(node.host_name)->find_node(node_name)->uml().crash();
      rt.say("crashed guest " + node_name);
      return {};
    }
    return Error{error_at(cmd.line, "no node " + node_name)};
  }
  if (cmd.verb == "crash-host" || cmd.verb == "recover-host") {
    if (!rt.hup().find_daemon(cmd.args[0])) {
      return Error{error_at(cmd.line, "no host " + cmd.args[0])};
    }
    if (cmd.verb == "crash-host") {
      rt.hup().crash_host(cmd.args[0]);
      rt.say("host " + cmd.args[0] + " crashed");
    } else {
      rt.hup().recover_host(cmd.args[0]);
      rt.say("host " + cmd.args[0] + " recovered");
    }
    return {};
  }
  if (cmd.verb == "slow-host" || cmd.verb == "lossy-link" ||
      cmd.verb == "restore-host") {
    // The full FaultKind set as immediate verbs, so shrunk chaos reproducers
    // round-trip through the DSL. restore-host is slow-host at factor 1.
    if (!rt.hup().find_daemon(cmd.args[0])) {
      return Error{error_at(cmd.line, "no host " + cmd.args[0])};
    }
    double factor = 1.0;
    if (cmd.verb != "restore-host") {
      const auto parsed = util::parse_double(cmd.args[1]);
      if (!parsed || !(*parsed > 0)) {
        return Error{error_at(cmd.line, "'" + cmd.verb +
                                            "' takes a factor > 0, got '" +
                                            cmd.args[1] + "'")};
      }
      factor = *parsed;
    }
    rt.hup().scale_host_uplink(cmd.args[0], factor);
    if (cmd.verb == "restore-host") {
      rt.say("host " + cmd.args[0] + " uplink restored");
    } else {
      rt.say("host " + cmd.args[0] + " uplink x " + cmd.args[1] + " (" +
             cmd.verb + ")");
    }
    return {};
  }
  if (cmd.verb == "advance") {
    const auto seconds = util::parse_double(cmd.args[0]);
    if (!seconds || *seconds < 0) {
      return Error{error_at(cmd.line, "'advance' takes seconds >= 0, got '" +
                                          cmd.args[0] + "'")};
    }
    sim::Engine& engine = rt.hup().engine();
    engine.run_until(engine.now() + sim::SimTime::seconds(*seconds));
    std::snprintf(buf, sizeof buf, "advanced to t=%.2fs",
                  engine.now().to_seconds());
    rt.say(buf);
    return {};
  }
  if (cmd.verb == "switch-policy") {
    ServiceSwitch* sw = rt.hup().master().find_switch(cmd.args[0]);
    if (!sw) {
      return Error{error_at(cmd.line, "no running service " + cmd.args[0])};
    }
    std::uint64_t seed = 0x50DA;
    if (cmd.args.size() == 3) {
      if (!util::starts_with(cmd.args[2], "seed=")) {
        return Error{error_at(cmd.line, "unknown switch-policy option '" +
                                            cmd.args[2] + "'")};
      }
      auto value = arg_int(cmd, cmd.args[2]);
      if (!value.ok()) return value.error();
      seed = static_cast<std::uint64_t>(value.value());
    }
    auto policy = make_switch_policy_by_name(cmd.args[1], seed);
    if (!policy.ok()) return Error{error_at(cmd.line, policy.error().message)};
    sw->set_policy(std::move(policy).value());
    rt.say("switch policy of " + cmd.args[0] + " = " + cmd.args[1]);
    return {};
  }
  if (cmd.verb == "detect") {
    // Active poll: scenario verbs run the engine to quiescence, so the
    // heartbeat-timeout path (which keeps the queue busy) is not used here.
    const std::size_t changed = rt.hup().master().poll_liveness_once();
    rt.hup().engine().run();
    rt.say("detect: " + std::to_string(changed) + " host(s) changed, " +
           std::to_string(rt.hup().master().placements_lost()) +
           " placement(s) lost, " +
           std::to_string(rt.hup().master().recoveries_completed()) +
           " recovery(ies) completed");
    return {};
  }
  if (cmd.verb == "probe") {
    const std::size_t transitions = rt.hup().health_monitor().probe_once();
    rt.say("health probe: " + std::to_string(transitions) + " transition(s)");
    return {};
  }
  if (cmd.verb == "trace") {
    if (cmd.args.empty()) {
      rt.say(rt.hup().trace().render());
    } else {
      for (const auto& event : rt.hup().trace().for_subject(cmd.args[0])) {
        rt.say(std::string(trace_kind_name(event.kind)) + " " + event.subject +
               (event.detail.empty() ? "" : ": " + event.detail));
      }
    }
    return {};
  }
  if (cmd.verb == "host") {
    host::HostSpec spec;
    if (cmd.args[0] == "seattle") {
      spec = host::HostSpec::seattle();
    } else if (cmd.args[0] == "tacoma") {
      spec = host::HostSpec::tacoma();
    } else {
      return Error{error_at(cmd.line, "unknown host spec '" + cmd.args[0] + "'")};
    }
    const auto start = net::Ipv4Address::parse(cmd.args[1]);
    if (!start) return Error{error_at(cmd.line, "bad pool address")};
    std::size_t size = 16;
    if (cmd.args.size() == 3) {
      auto parsed = arg_int(cmd, cmd.args[2]);
      if (!parsed.ok()) return parsed.error();
      size = static_cast<std::size_t>(parsed.value());
    }
    // Scripted hosts need unique names when the same spec repeats.
    spec.name = cmd.args[0] + (rt.hosts_added ? "-" + std::to_string(rt.hosts_added)
                                              : "");
    ++rt.hosts_added;
    rt.hup().add_host(spec, *start, size);
    rt.say("host " + spec.name + " joined the HUP");
    return {};
  }
  if (cmd.verb == "repo") {
    rt.repo = &rt.hup().add_repository(cmd.args[0]);
    rt.say("repository " + cmd.args[0] + " on the LAN");
    return {};
  }
  if (cmd.verb == "asp") {
    rt.asp_id = cmd.args[0];
    rt.api_key = cmd.args[1];
    rt.hup().agent().register_asp(rt.asp_id, rt.api_key);
    rt.say("asp " + rt.asp_id + " enrolled");
    return {};
  }
  if (cmd.verb == "publish") {
    if (!rt.repo) return Error{error_at(cmd.line, "no repository yet")};
    auto image = make_image(cmd);
    if (!image.ok()) return image.error();
    const std::string name = image.value().name;
    auto location = rt.repo->publish(std::move(image).value());
    if (!location.ok()) return Error{error_at(cmd.line, location.error().message)};
    rt.images[cmd.args[0]] = location.value();
    rt.say("published " + name + " at " + location.value().url());
    return {};
  }
  if (cmd.verb == "create") {
    auto it = rt.images.find(cmd.args[1]);
    if (it == rt.images.end()) {
      return Error{error_at(cmd.line, "image '" + cmd.args[1] + "' not published")};
    }
    auto n = arg_int(cmd, cmd.args[2]);
    if (!n.ok()) return n.error();
    ServiceCreationRequest request;
    request.credentials = {rt.asp_id, rt.api_key};
    request.service_name = cmd.args[0];
    request.image_location = it->second;
    request.requirement = {static_cast<int>(n.value()), {}};
    std::optional<ApiError> failure;
    std::size_t nodes = 0;
    rt.hup().agent().service_creation(
        request, [&](ApiResult<ServiceCreationReply> reply, sim::SimTime) {
          if (reply.ok()) {
            nodes = reply.value().nodes.size();
          } else {
            failure = reply.error();
          }
        });
    rt.hup().engine().run();
    if (failure) return Error{error_at(cmd.line, failure->to_string())};
    std::snprintf(buf, sizeof buf, "created %s on %zu node(s) at t=%.2fs",
                  cmd.args[0].c_str(), nodes,
                  rt.hup().engine().now().to_seconds());
    rt.say(buf);
    return {};
  }
  if (cmd.verb == "resize") {
    auto n = arg_int(cmd, cmd.args[1]);
    if (!n.ok()) return n.error();
    std::optional<ApiError> failure;
    rt.hup().agent().service_resizing(
        ServiceResizingRequest{{rt.asp_id, rt.api_key}, cmd.args[0],
                               static_cast<int>(n.value())},
        [&](ApiResult<ServiceResizingReply> reply, sim::SimTime) {
          if (!reply.ok()) failure = reply.error();
        });
    rt.hup().engine().run();
    if (failure) return Error{error_at(cmd.line, failure->to_string())};
    rt.say("resized " + cmd.args[0] + " to n=" + std::to_string(n.value()));
    return {};
  }
  if (cmd.verb == "teardown") {
    auto result = rt.hup().agent().service_teardown(
        ServiceTeardownRequest{{rt.asp_id, rt.api_key}, cmd.args[0]});
    if (!result.ok()) return Error{error_at(cmd.line, result.error().to_string())};
    rt.say("tore down " + cmd.args[0]);
    return {};
  }
  if (cmd.verb == "status") {
    auto report = rt.hup().agent().service_status({rt.asp_id, rt.api_key},
                                                cmd.args[0]);
    if (!report.ok()) return Error{error_at(cmd.line, report.error().to_string())};
    for (const auto& node : report.value().nodes) {
      std::snprintf(buf, sizeof buf, "  %s on %s %s:%d cap=%dM vm=%s",
                    node.node_name.c_str(), node.host_name.c_str(),
                    node.address.to_string().c_str(), node.port,
                    node.capacity_units,
                    std::string(vm::vm_state_name(node.vm_state)).c_str());
      rt.say(buf);
    }
    return {};
  }
  if (cmd.verb == "billing") {
    std::snprintf(buf, sizeof buf, "%s owes %.6f instance-hours",
                  cmd.args[0].c_str(),
                  rt.hup().agent().billing().instance_hours(
                      cmd.args[0], rt.hup().engine().now()));
    rt.say(buf);
    return {};
  }
  if (cmd.verb == "warm") {
    auto it = rt.images.find(cmd.args[0]);
    if (it == rt.images.end()) {
      return Error{error_at(cmd.line, "image '" + cmd.args[0] + "' not published")};
    }
    std::optional<Error> failure;
    sim::SimTime warmed_at = sim::SimTime::zero();
    rt.hup().master().warm_hosts(
        it->second, {cmd.args[1]}, [&](Status status, sim::SimTime now) {
          if (!status.ok()) failure = status.error();
          warmed_at = now;
        });
    rt.hup().engine().run();
    if (failure) return Error{error_at(cmd.line, failure->message)};
    std::snprintf(buf, sizeof buf, "warmed %s on %s at t=%.2fs",
                  cmd.args[0].c_str(), cmd.args[1].c_str(),
                  warmed_at.to_seconds());
    rt.say(buf);
    return {};
  }
  if (cmd.verb == "drop-cache") {
    SodaDaemon* daemon = rt.hup().find_daemon(cmd.args[0]);
    if (!daemon) return Error{error_at(cmd.line, "no host " + cmd.args[0])};
    daemon->distributor().drop_cache();
    rt.say("dropped " + cmd.args[0] + "'s chunk cache");
    return {};
  }
  if (cmd.verb == "expect-cached") {
    auto want = arg_int(cmd, cmd.args[1]);
    if (!want.ok()) return want.error();
    const SodaDaemon* daemon = rt.hup().find_daemon(cmd.args[0]);
    if (!daemon) return Error{error_at(cmd.line, "no host " + cmd.args[0])};
    const auto got = daemon->distributor().cache().chunk_count();
    const auto min = static_cast<std::size_t>(want.value());
    const bool pass = min == 0 ? got == 0 : got >= min;
    if (!pass) {
      return Error{error_at(cmd.line, "expected " + cmd.args[1] +
                                          (min == 0 ? " (exactly)" : "+") +
                                          " cached chunk(s) on " + cmd.args[0] +
                                          ", got " + std::to_string(got))};
    }
    return {};
  }
  if (cmd.verb == "traffic") {
    // Open-loop load against a running service: deploy a web content server
    // on each of its nodes, replay the arrival trace through the service
    // switch, and report coordinated-omission-free latency.
    const std::string& service = cmd.args[0];
    ServiceSwitch* sw = rt.hup().master().find_switch(service);
    const ServiceRecord* record = rt.hup().master().find_service(service);
    if (!sw || !record || record->nodes.empty()) {
      return Error{error_at(cmd.line, "no running service " + service)};
    }
    auto trace = workload::TrafficTrace::parse(cmd.args[1]);
    if (!trace.ok()) return Error{error_at(cmd.line, trace.error().message)};
    std::int64_t bytes = 8 * 1024;
    std::uint64_t seed = 0x7AFF1C;
    for (std::size_t i = 2; i < cmd.args.size(); ++i) {
      auto value = arg_int(cmd, cmd.args[i]);
      if (!value.ok()) return value.error();
      if (util::starts_with(cmd.args[i], "bytes=")) {
        bytes = value.value();
      } else if (util::starts_with(cmd.args[i], "seed=")) {
        seed = static_cast<std::uint64_t>(value.value());
      } else {
        return Error{
            error_at(cmd.line, "unknown traffic option '" + cmd.args[i] + "'")};
      }
    }

    std::vector<std::unique_ptr<workload::WebContentServer>> servers;
    std::optional<net::NodeId> switch_node;
    for (const auto& node : record->nodes) {
      auto* daemon = rt.hup().find_daemon(node.host_name);
      auto* vsn = daemon ? daemon->find_node(node.node_name) : nullptr;
      if (!vsn) {
        return Error{error_at(cmd.line, "node " + node.node_name +
                                            " is not running")};
      }
      std::vector<net::LinkId> outbound;
      if (auto link =
              rt.hup().find_shaper(node.host_name)->link_for(vsn->address())) {
        outbound.push_back(*link);
      }
      servers.push_back(std::make_unique<workload::WebContentServer>(
          rt.hup().engine(), rt.hup().network(), vsn->net_node(),
          vm::ExecMode::kUmlTraced, daemon->host().spec().cpu_ghz,
          2 * node.capacity_units, std::move(outbound)));
      if (node.address == sw->listen_address()) {
        switch_node = vsn->net_node();
      }
    }
    if (!switch_node) switch_node = servers.front()->node();

    const net::NodeId client =
        rt.hup().add_client("siege-" + std::to_string(rt.traffic_runs++));
    workload::SiegeConfig cfg;
    cfg.record_samples = false;  // StreamingStats replaces sample storage
    cfg.response_bytes = bytes;
    cfg.switch_delay =
        workload::switch_forward_cost(2.6, vm::ExecMode::kUmlTraced);
    workload::SiegeClient siege(rt.hup().engine(), rt.hup().network(), client,
                                sw, switch_node, cfg);
    for (std::size_t i = 0; i < record->nodes.size(); ++i) {
      siege.register_backend(record->nodes[i].address, servers[i].get(),
                             servers[i]->node());
    }
    workload::TrafficEngineConfig traffic_config;
    traffic_config.seed = seed;
    workload::TrafficEngine traffic(rt.hup().engine(), traffic_config);
    traffic.add_stream(service, siege, std::move(trace).value());
    traffic.start();
    rt.hup().engine().run();

    const sim::StreamingStats& stats = traffic.stats(service);
    TrafficSummary summary;
    summary.scheduled = traffic.scheduled(service);
    summary.completed = stats.completed();
    summary.errors = stats.errors();
    summary.p50_ms = stats.p50() * 1e3;
    summary.p99_ms = stats.p99() * 1e3;
    rt.traffic_reports[service] = summary;
    std::snprintf(buf, sizeof buf,
                  "traffic %s: %llu scheduled, %llu served, %llu refused, "
                  "p50=%.1fms p99=%.1fms",
                  service.c_str(),
                  static_cast<unsigned long long>(summary.scheduled),
                  static_cast<unsigned long long>(summary.completed),
                  static_cast<unsigned long long>(summary.errors),
                  summary.p50_ms, summary.p99_ms);
    rt.say(buf);
    return {};
  }
  if (cmd.verb == "expect-p99") {
    const auto it = rt.traffic_reports.find(cmd.args[0]);
    if (it == rt.traffic_reports.end()) {
      return Error{error_at(cmd.line, "no traffic run for " + cmd.args[0])};
    }
    const auto want = util::parse_double(cmd.args[1]);
    if (!want) {
      return Error{error_at(cmd.line, "bad number '" + cmd.args[1] + "'")};
    }
    if (it->second.p99_ms > *want) {
      std::snprintf(buf, sizeof buf,
                    "expected %s p99 <= %.1fms, got %.1fms",
                    cmd.args[0].c_str(), *want, it->second.p99_ms);
      return Error{error_at(cmd.line, buf)};
    }
    return {};
  }
  if (cmd.verb == "expect-nodes") {
    auto want = arg_int(cmd, cmd.args[1]);
    if (!want.ok()) return want.error();
    const ServiceRecord* record = rt.hup().master().find_service(cmd.args[0]);
    const std::size_t got = record ? record->nodes.size() : 0;
    if (got != static_cast<std::size_t>(want.value())) {
      return Error{error_at(cmd.line, "expected " + cmd.args[1] + " node(s) for " +
                                          cmd.args[0] + ", got " +
                                          std::to_string(got))};
    }
    return {};
  }
  if (cmd.verb == "expect-state") {
    const ServiceRecord* record = rt.hup().master().find_service(cmd.args[0]);
    const std::string got =
        record ? std::string(service_state_name(record->lifecycle.state()))
               : "gone";
    if (got != cmd.args[1]) {
      return Error{error_at(cmd.line, "expected state " + cmd.args[1] + ", got " +
                                          got)};
    }
    return {};
  }
  if (cmd.verb == "expect-services") {
    auto want = arg_int(cmd, cmd.args[0]);
    if (!want.ok()) return want.error();
    if (rt.hup().master().service_count() !=
        static_cast<std::size_t>(want.value())) {
      return Error{error_at(
          cmd.line, "expected " + cmd.args[0] + " service(s), got " +
                        std::to_string(rt.hup().master().service_count()))};
    }
    return {};
  }
  if (cmd.verb == "expect-metric") {
    auto want = arg_int(cmd, cmd.args[1]);
    if (!want.ok()) return want.error();
    const MetricsRegistry& metrics = rt.hup().master().metrics();
    if (!metrics.has(cmd.args[0])) {
      return Error{error_at(cmd.line, "unknown metric '" + cmd.args[0] + "'")};
    }
    const double got = metrics.value(cmd.args[0]);
    if (got != static_cast<double>(want.value())) {
      return Error{error_at(cmd.line, "expected metric " + cmd.args[0] + " = " +
                                          cmd.args[1] + ", got " +
                                          std::to_string(got))};
    }
    return {};
  }
  if (cmd.verb == "expect-error") {
    // Re-dispatch the wrapped command and invert its outcome.
    ScenarioCommand inner;
    inner.line = cmd.line;
    inner.verb = cmd.args[0];
    inner.args.assign(cmd.args.begin() + 1, cmd.args.end());
    if (verb_arity().count(inner.verb) == 0 ||
        util::starts_with(inner.verb, "expect-")) {
      return Error{error_at(cmd.line, "expect-error cannot wrap '" + inner.verb +
                                          "'")};
    }
    if (auto result = execute(rt, inner); result.ok()) {
      return Error{error_at(cmd.line, "expected '" + inner.verb +
                                          "' to fail, but it succeeded")};
    }
    rt.say("(expected failure of '" + inner.verb + "' observed)");
    return {};
  }
  return Error{error_at(cmd.line, "unhandled verb '" + cmd.verb + "'")};
}

}  // namespace

Result<Scenario> Scenario::parse(std::string_view text) {
  Scenario scenario;
  int line_no = 0;
  for (const auto& raw_line : util::split(text, '\n')) {
    ++line_no;
    const std::string_view line = util::trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto tokens = util::split_whitespace(line);
    ScenarioCommand cmd;
    cmd.line = line_no;
    cmd.verb = tokens[0];
    cmd.args.assign(tokens.begin() + 1, tokens.end());
    const auto arity = verb_arity().find(cmd.verb);
    if (arity == verb_arity().end()) {
      return Error{error_at(line_no, "unknown verb '" + cmd.verb + "'")};
    }
    const int argc = static_cast<int>(cmd.args.size());
    if (argc < arity->second.first || argc > arity->second.second) {
      return Error{error_at(line_no, "'" + cmd.verb + "' takes " +
                                         std::to_string(arity->second.first) +
                                         ".." +
                                         std::to_string(arity->second.second) +
                                         " argument(s), got " +
                                         std::to_string(argc))};
    }
    scenario.commands_.push_back(std::move(cmd));
  }
  return scenario;
}

Result<std::vector<std::string>> Scenario::run() const {
  Runtime rt;
  for (const auto& cmd : commands_) {
    if (auto result = execute(rt, cmd); !result.ok()) return result.error();
  }
  return rt.transcript;
}

Result<std::vector<std::vector<std::string>>> Scenario::run_replicas(
    std::size_t replicas, std::size_t threads) const {
  const sim::ParallelRunner runner(threads);
  auto results =
      runner.map(replicas, [this](std::size_t) { return run(); });
  std::vector<std::vector<std::string>> transcripts;
  transcripts.reserve(replicas);
  for (auto& result : results) {
    if (!result.ok()) return result.error();
    transcripts.push_back(std::move(result).value());
  }
  return transcripts;
}

}  // namespace soda::core
