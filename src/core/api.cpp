#include "core/api.hpp"

namespace soda::core {

std::string_view api_error_name(ApiErrorCode code) noexcept {
  switch (code) {
    case ApiErrorCode::kAuthenticationFailed: return "authentication-failed";
    case ApiErrorCode::kInvalidRequest:       return "invalid-request";
    case ApiErrorCode::kInsufficientResources: return "insufficient-resources";
    case ApiErrorCode::kImageNotFound:        return "image-not-found";
    case ApiErrorCode::kNoSuchService:        return "no-such-service";
    case ApiErrorCode::kServiceExists:        return "service-exists";
    case ApiErrorCode::kPrimingFailed:        return "priming-failed";
    case ApiErrorCode::kInternal:             return "internal";
  }
  return "unknown";
}

}  // namespace soda::core
