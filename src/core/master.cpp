#include "core/master.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/contract.hpp"
#include "util/log.hpp"

namespace soda::core {

namespace {

/// A node's client-facing endpoint: the proxied public endpoint when the
/// daemon proxied it, otherwise the node's own address and service port.
NodeDescriptor describe_node(const vm::VirtualServiceNode& vsn, int listen_port) {
  NodeDescriptor descriptor;
  descriptor.node_name = vsn.name().value;
  descriptor.host_name = vsn.host_name();
  descriptor.capacity_units = vsn.capacity_units();
  descriptor.component = vsn.component();
  if (vsn.public_endpoint()) {
    descriptor.address = vsn.public_endpoint()->address;
    descriptor.port = vsn.public_endpoint()->port;
  } else {
    descriptor.address = vsn.address();
    descriptor.port = vsn.service_port() > 0 ? vsn.service_port() : listen_port;
  }
  return descriptor;
}

/// How many machine instances of `unit` fit into `avail`.
int units_that_fit(const host::ResourceVector& avail,
                   const host::ResourceVector& unit) {
  double k = std::floor(avail.cpu_mhz / unit.cpu_mhz + 1e-9);
  if (unit.memory_mb > 0) {
    k = std::min(k, std::floor(static_cast<double>(avail.memory_mb) /
                               static_cast<double>(unit.memory_mb)));
  }
  if (unit.disk_mb > 0) {
    k = std::min(k, std::floor(static_cast<double>(avail.disk_mb) /
                               static_cast<double>(unit.disk_mb)));
  }
  if (unit.bandwidth_mbps > 0) {
    k = std::min(k, std::floor(avail.bandwidth_mbps / unit.bandwidth_mbps + 1e-9));
  }
  return std::max(0, static_cast<int>(k));
}

}  // namespace

std::string_view placement_policy_name(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kFirstFit: return "first-fit";
    case PlacementPolicy::kBestFit:  return "best-fit";
    case PlacementPolicy::kWorstFit: return "worst-fit";
  }
  return "unknown";
}

SodaMaster::SodaMaster(sim::Engine& engine, MasterConfig config)
    : engine_(engine), config_(config) {
  SODA_EXPECTS(config_.slowdown_factor >= 1.0);
  SODA_EXPECTS(config_.max_nodes_per_service >= 1);
}

Status SodaMaster::register_daemon(SodaDaemon* daemon) {
  SODA_EXPECTS(daemon != nullptr);
  for (const SodaDaemon* existing : daemons_) {
    if (existing->host_name() == daemon->host_name()) {
      return Error{"duplicate host: " + daemon->host_name()};
    }
    if (!net::IpPool::disjoint(existing->host().ip_pool(),
                               daemon->host().ip_pool())) {
      return Error{"IP pools of " + existing->host_name() + " and " +
                   daemon->host_name() + " overlap"};
    }
  }
  daemons_.push_back(daemon);
  // Wire the host's image-distribution front end into the HUP: shared
  // repository directory (per-attempt name resolution), shared chunk
  // registry (P2P priming), and the Master's distribution policy.
  daemon->distributor().configure(config_.distribution);
  daemon->distributor().set_directory(&directory_);
  daemon->distributor().set_registry(&chunk_registry_);
  return {};
}

void SodaMaster::register_repository(const image::ImageRepository* repository) {
  SODA_EXPECTS(repository != nullptr);
  directory_.add(repository);
}

bool SodaMaster::unregister_repository(const std::string& name) {
  return directory_.remove(name);
}

void SodaMaster::warm_hosts(const image::ImageLocation& location,
                            const std::vector<std::string>& hosts,
                            WarmCallback done) {
  SODA_EXPECTS(done != nullptr);
  const image::ImageRepository* repo = directory_.find(location.repository);
  if (repo == nullptr) {
    done(Error{"unknown repository: " + location.repository}, engine_.now());
    return;
  }
  std::vector<SodaDaemon*> targets;
  for (const std::string& host : hosts) {
    for (SodaDaemon* daemon : daemons_) {
      if (daemon->host_name() == host && daemon->alive() &&
          down_hosts_.count(host) == 0) {
        targets.push_back(daemon);
      }
    }
  }
  if (targets.empty()) {
    done(Error{"no live host to warm with " + location.url()}, engine_.now());
    return;
  }
  struct WarmJoin {
    std::size_t pending = 0;
    bool failed = false;
    std::string first_error;
  };
  auto join = std::make_shared<WarmJoin>();
  join->pending = targets.size();
  for (SodaDaemon* daemon : targets) {
    // The fetch lands the chunks in the host's cache (and registry); the
    // image copy itself is discarded — priming re-fetches it for free.
    daemon->distributor().fetch(
        *repo, location,
        [join, done](Result<image::ServiceImage> image, sim::SimTime now) {
          if (!image.ok() && !join->failed) {
            join->failed = true;
            join->first_error = image.error().message;
          }
          if (--join->pending > 0) return;
          if (join->failed) {
            done(Error{join->first_error}, now);
          } else {
            done({}, now);
          }
        });
  }
}

host::ResourceVector SodaMaster::hup_available() const {
  host::ResourceVector total;
  for (const SodaDaemon* daemon : daemons_) {
    if (down_hosts_.count(daemon->host_name())) continue;
    total += daemon->available();
  }
  return total;
}

host::ResourceVector SodaMaster::inflated_unit(const host::MachineConfig& m) const {
  host::ResourceVector unit = m.to_vector();
  // Only processing and transmission slow down under the guest OS; memory
  // and disk footprints are unchanged (paper §3.5).
  unit.cpu_mhz *= config_.slowdown_factor;
  unit.bandwidth_mbps *= config_.slowdown_factor;
  return unit;
}

std::vector<SodaDaemon*> SodaMaster::ordered_daemons() const {
  // Hosts the failure detector has declared dead receive no placements
  // until their heartbeats resume.
  std::vector<SodaDaemon*> ordered;
  ordered.reserve(daemons_.size());
  for (SodaDaemon* daemon : daemons_) {
    if (down_hosts_.count(daemon->host_name()) == 0) ordered.push_back(daemon);
  }
  switch (config_.placement) {
    case PlacementPolicy::kFirstFit:
      break;
    case PlacementPolicy::kBestFit:
      std::stable_sort(ordered.begin(), ordered.end(),
                       [](const SodaDaemon* a, const SodaDaemon* b) {
                         return a->available().cpu_mhz < b->available().cpu_mhz;
                       });
      break;
    case PlacementPolicy::kWorstFit:
      std::stable_sort(ordered.begin(), ordered.end(),
                       [](const SodaDaemon* a, const SodaDaemon* b) {
                         return a->available().cpu_mhz > b->available().cpu_mhz;
                       });
      break;
  }
  return ordered;
}

ApiResult<std::vector<Placement>> SodaMaster::plan_allocation(
    const std::string& service_name, const host::ResourceRequirement& req) const {
  if (req.n < 1) {
    return ApiError{ApiErrorCode::kInvalidRequest, "requirement n must be >= 1"};
  }
  const host::ResourceVector unit = inflated_unit(req.m);
  std::vector<Placement> plan;
  int remaining = req.n;
  for (SodaDaemon* daemon : ordered_daemons()) {
    if (static_cast<int>(plan.size()) >= config_.max_nodes_per_service) break;
    if (remaining == 0) break;
    // One node per host per service: replicas on the same host would share
    // the same failure domain and buy nothing.
    if (daemon->find_node(service_name + "/0") != nullptr) continue;
    const int k = std::min(units_that_fit(daemon->available(), unit), remaining);
    if (k >= 1) {
      plan.push_back(Placement{daemon, "", k});
      remaining -= k;
    }
  }
  if (remaining > 0) {
    return ApiError{ApiErrorCode::kInsufficientResources,
                    "HUP cannot satisfy " + req.to_string() + " (short by " +
                        std::to_string(remaining) + " instance(s) of M)"};
  }
  return plan;
}

ApiResult<std::vector<Placement>> SodaMaster::plan_components(
    const host::MachineConfig& m,
    const std::vector<image::ServiceComponent>& components) const {
  SODA_EXPECTS(!components.empty());
  // Hypothetical usage per host while planning (nothing is reserved yet).
  std::map<std::string, host::ResourceVector> planned;
  std::vector<Placement> plan;
  for (const auto& component : components) {
    const host::ResourceVector need =
        inflated_unit(m).scaled(component.units);
    bool placed = false;
    for (SodaDaemon* daemon : ordered_daemons()) {
      const host::ResourceVector avail =
          daemon->available() - planned[daemon->host_name()];
      if (avail.fits(need)) {
        plan.push_back(Placement{daemon, "", component.units, component.name});
        planned[daemon->host_name()] += need;
        placed = true;
        break;
      }
    }
    if (!placed) {
      return ApiError{ApiErrorCode::kInsufficientResources,
                      "no host fits component '" + component.name + "' (" +
                          need.to_string() + ")"};
    }
  }
  return plan;
}

struct SodaMaster::PrimeJoin {
  std::size_t pending = 0;
  bool failed = false;
  std::string first_error;
};

void SodaMaster::create_service(const ServiceCreationRequest& request,
                                CreateCallback done) {
  SODA_EXPECTS(done != nullptr);
  auto& log = util::global_logger();

  if (request.service_name.empty()) {
    done(ApiError{ApiErrorCode::kInvalidRequest, "service name must not be empty"},
         engine_.now());
    return;
  }
  if (services_.count(request.service_name) > 0) {
    done(ApiError{ApiErrorCode::kServiceExists,
                  "service already hosted: " + request.service_name},
         engine_.now());
    return;
  }
  const image::ImageRepository* repo =
      directory_.find(request.image_location.repository);
  if (repo == nullptr) {
    done(ApiError{ApiErrorCode::kImageNotFound,
                  "unknown repository: " + request.image_location.repository},
         engine_.now());
    return;
  }
  auto image = repo->lookup(request.image_location.path);
  if (!image.ok()) {
    done(ApiError{ApiErrorCode::kImageNotFound, image.error().message},
         engine_.now());
    return;
  }

  const bool partitioned = image.value()->partitioned();
  if (partitioned &&
      request.requirement.n != image.value()->total_component_units()) {
    done(ApiError{ApiErrorCode::kInvalidRequest,
                  "partitioned image needs n = " +
                      std::to_string(image.value()->total_component_units()) +
                      " (sum of component units), got " +
                      std::to_string(request.requirement.n)},
         engine_.now());
    return;
  }
  auto plan = partitioned
                  ? plan_components(request.requirement.m,
                                    image.value()->components)
                  : plan_allocation(request.service_name, request.requirement);
  if (!plan.ok()) {
    if (trace_) {
      trace_->record(engine_.now(), TraceKind::kRejected, "master",
                     request.service_name, plan.error().to_string());
    }
    done(plan.error(), engine_.now());
    return;
  }

  // Admit: record the service and transition the lifecycle.
  ServiceRecord record;
  record.service_name = request.service_name;
  record.asp_id = request.credentials.asp_id;
  record.requirement = request.requirement;
  record.image_location = request.image_location;
  record.repository = repo;
  record.listen_port = partitioned ? image.value()->components.front().listen_port
                                   : image.value()->listen_port;
  record.components = image.value()->components;
  record.placements = std::move(plan).value();
  record.lifecycle = ServiceLifecycle(request.service_name);
  must(record.lifecycle.transition(ServiceState::kAdmitted));
  must(record.lifecycle.transition(ServiceState::kPriming));
  for (auto& placement : record.placements) {
    placement.node_name =
        request.service_name + "/" + std::to_string(record.next_ordinal++);
  }
  auto [it, inserted] =
      services_.emplace(request.service_name, std::move(record));
  SODA_ENSURES(inserted);
  ServiceRecord& live = it->second;
  log.info("master", "admitted " + request.service_name + " " +
                         request.requirement.to_string() + " onto " +
                         std::to_string(live.placements.size()) + " node(s)");
  if (trace_) {
    trace_->record(engine_.now(), TraceKind::kAdmitted, "master",
                   request.service_name,
                   request.requirement.to_string() + " -> " +
                       std::to_string(live.placements.size()) + " node(s)");
  }

  // Prime every node; join on the last completion. Dispatch from a snapshot:
  // a synchronously failing prime may erase the service record (and with it
  // live.placements) mid-loop.
  const std::vector<Placement> to_prime = live.placements;
  auto join = std::make_shared<PrimeJoin>();
  join->pending = to_prime.size();
  for (const Placement& placement : to_prime) {
    PrimeCommand command;
    command.node_name = placement.node_name;
    command.service_name = request.service_name;
    command.repository = repo;
    command.location = request.image_location;
    command.unit = request.requirement.m;
    command.capacity_units = placement.units;
    command.reserve =
        inflated_unit(request.requirement.m).scaled(placement.units);
    command.customize_rootfs = config_.customize_rootfs;
    command.address_mode = config_.address_mode;
    command.listen_port = live.listen_port;
    if (!placement.component.empty()) {
      for (const auto& component : live.components) {
        if (component.name == placement.component) command.component = component;
      }
    }
    placement.daemon->prime_node(
        std::move(command),
        [this, join, name = request.service_name,
         done](Result<vm::VirtualServiceNode*> node, sim::SimTime now) {
          auto record_it = services_.find(name);
          SODA_ENSURES(record_it != services_.end());
          ServiceRecord& rec = record_it->second;
          if (!node.ok()) {
            if (!join->failed) {
              join->failed = true;
              join->first_error = node.error().message;
            }
          } else {
            rec.nodes.push_back(describe_node(*node.value(), rec.listen_port));
          }
          if (--join->pending > 0) return;
          if (join->failed) {
            rollback_nodes(rec);
            must(rec.lifecycle.transition(ServiceState::kFailed));
            const std::string message = join->first_error;
            services_.erase(record_it);
            if (trace_) {
              trace_->record(now, TraceKind::kPrimingFailed, "master", name,
                             message);
            }
            done(ApiError{ApiErrorCode::kPrimingFailed, message}, now);
            return;
          }
          finish_creation(rec, done);
        });
  }
}

void SodaMaster::finish_creation(ServiceRecord& record, CreateCallback done) {
  // Deterministic backend order regardless of priming completion order.
  std::sort(record.nodes.begin(), record.nodes.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) {
              return a.node_name < b.node_name;
            });
  // The switch is colocated in the first virtual service node (§3.4).
  const NodeDescriptor& front = record.nodes.front();
  record.service_switch = std::make_unique<ServiceSwitch>(
      record.service_name, front.address, record.listen_port);
  for (const NodeDescriptor& node : record.nodes) {
    must(record.service_switch->add_backend(BackEndEntry{
        node.address, node.port, node.capacity_units, node.component}));
  }
  for (const auto& component : record.components) {
    if (!component.route_prefix.empty()) {
      record.service_switch->set_component_route(component.route_prefix,
                                                 component.name);
    }
  }
  must(record.lifecycle.transition(ServiceState::kRunning));
  if (trace_) {
    trace_->record(engine_.now(), TraceKind::kSwitchCreated, "master",
                   record.service_name,
                   front.address.to_string() + ":" +
                       std::to_string(record.listen_port));
    trace_->record(engine_.now(), TraceKind::kServiceRunning, "master",
                   record.service_name,
                   std::to_string(record.nodes.size()) + " node(s)");
  }
  util::global_logger().info(
      "master", record.service_name + " running; switch at " +
                    front.address.to_string() + ":" +
                    std::to_string(record.listen_port) + "\n" +
                    record.service_switch->config_text());

  ServiceCreationReply reply;
  reply.service_name = record.service_name;
  reply.nodes = record.nodes;
  reply.switch_address = front.address;
  reply.switch_port = record.listen_port;
  done(reply, engine_.now());
}

void SodaMaster::rollback_nodes(ServiceRecord& record) {
  for (const NodeDescriptor& node : record.nodes) {
    for (SodaDaemon* daemon : daemons_) {
      // A crashed host already released everything it carried; there is
      // nothing left to tear down there.
      if (daemon->host_name() == node.host_name && daemon->alive()) {
        must(daemon->teardown_node(node.node_name));
      }
    }
  }
  record.nodes.clear();
}

ApiResult<ServiceCreationReply> SodaMaster::describe_service(
    const std::string& name) const {
  auto it = services_.find(name);
  if (it == services_.end() || !it->second.service_switch) {
    return ApiError{ApiErrorCode::kNoSuchService, "no such service: " + name};
  }
  const ServiceRecord& record = it->second;
  ServiceCreationReply reply;
  reply.service_name = record.service_name;
  reply.nodes = record.nodes;
  reply.switch_address = record.service_switch->listen_address();
  reply.switch_port = record.service_switch->listen_port();
  return reply;
}

Result<void, ApiError> SodaMaster::teardown_service(const std::string& name) {
  auto it = services_.find(name);
  if (it == services_.end()) {
    return ApiError{ApiErrorCode::kNoSuchService, "no such service: " + name};
  }
  ServiceRecord& record = it->second;
  if (auto moved = record.lifecycle.transition(ServiceState::kTearingDown);
      !moved.ok()) {
    return ApiError{ApiErrorCode::kInvalidRequest, moved.error().message};
  }
  rollback_nodes(record);
  must(record.lifecycle.transition(ServiceState::kGone));
  services_.erase(it);
  if (trace_) {
    trace_->record(engine_.now(), TraceKind::kTornDown, "master", name);
  }
  util::global_logger().info("master", "tore down " + name);
  return {};
}

const ServiceRecord* SodaMaster::find_service(const std::string& name) const {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : &it->second;
}

ServiceSwitch* SodaMaster::find_switch(const std::string& name) {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : it->second.service_switch.get();
}

std::vector<std::string> SodaMaster::service_names() const {
  std::vector<std::string> names;
  names.reserve(services_.size());
  for (const auto& [name, record] : services_) names.push_back(name);
  return names;
}

void SodaMaster::resize_service(const std::string& name, int n_new,
                                ResizeCallback done) {
  SODA_EXPECTS(done != nullptr);
  auto it = services_.find(name);
  if (it == services_.end()) {
    done(ApiError{ApiErrorCode::kNoSuchService, "no such service: " + name},
         engine_.now());
    return;
  }
  ServiceRecord& record = it->second;
  if (!record.components.empty()) {
    done(ApiError{ApiErrorCode::kInvalidRequest,
                  "resizing a partitioned service is not supported; tear down "
                  "and recreate with new component units"},
         engine_.now());
    return;
  }
  if (n_new < 1) {
    done(ApiError{ApiErrorCode::kInvalidRequest, "n_new must be >= 1"},
         engine_.now());
    return;
  }
  if (auto moved = record.lifecycle.transition(ServiceState::kResizing);
      !moved.ok()) {
    done(ApiError{ApiErrorCode::kInvalidRequest, moved.error().message},
         engine_.now());
    return;
  }

  int current = 0;
  for (const Placement& p : record.placements) current += p.units;
  const host::ResourceVector unit = inflated_unit(record.requirement.m);

  auto reply_now = [&] {
    must(record.lifecycle.transition(ServiceState::kRunning));
    if (trace_) {
      trace_->record(engine_.now(), TraceKind::kResized, "master", name,
                     "n=" + std::to_string(n_new));
    }
    record.requirement.n = n_new;
    ServiceResizingReply reply;
    reply.service_name = name;
    reply.nodes = record.nodes;
    done(reply, engine_.now());
  };

  if (n_new == current) {
    reply_now();
    return;
  }

  if (n_new < current) {
    // --- Shrink: shed units from the last placements first; never remove
    // the first node (the switch is colocated there). ---
    int to_shed = current - n_new;
    for (std::size_t idx = record.placements.size(); idx-- > 0 && to_shed > 0;) {
      Placement& placement = record.placements[idx];
      const bool is_switch_node = idx == 0;
      const int min_units = is_switch_node ? 1 : 0;
      const int shed = std::min(placement.units - min_units, to_shed);
      if (shed <= 0) continue;
      const int new_units = placement.units - shed;
      auto desc = std::find_if(record.nodes.begin(), record.nodes.end(),
                               [&](const NodeDescriptor& d) {
                                 return d.node_name == placement.node_name;
                               });
      SODA_ENSURES(desc != record.nodes.end());
      if (new_units == 0) {
        must(record.service_switch->remove_backend(desc->address, desc->port));
        must(placement.daemon->teardown_node(placement.node_name));
        record.nodes.erase(desc);
        record.placements.erase(record.placements.begin() +
                                static_cast<std::ptrdiff_t>(idx));
      } else {
        must(placement.daemon->resize_node(placement.node_name, new_units,
                                           unit.scaled(new_units)));
        must(record.service_switch->set_backend_capacity(desc->address,
                                                          desc->port, new_units));
        desc->capacity_units = new_units;
        placement.units = new_units;
      }
      to_shed -= shed;
    }
    SODA_ENSURES(to_shed == 0);
    reply_now();
    return;
  }

  // --- Grow: plan first (in-place extension, then new nodes), then apply. ---
  int to_add = n_new - current;
  std::vector<std::pair<std::size_t, int>> in_place;  // placement idx, extra
  for (std::size_t idx = 0; idx < record.placements.size() && to_add > 0; ++idx) {
    const Placement& placement = record.placements[idx];
    const int extra =
        std::min(units_that_fit(placement.daemon->available(), unit), to_add);
    if (extra >= 1) {
      in_place.emplace_back(idx, extra);
      to_add -= extra;
    }
  }
  std::vector<Placement> new_nodes;
  if (to_add > 0) {
    for (SodaDaemon* daemon : ordered_daemons()) {
      if (to_add == 0) break;
      const bool already_used = std::any_of(
          record.placements.begin(), record.placements.end(),
          [&](const Placement& p) { return p.daemon == daemon; });
      if (already_used) continue;
      const int k = std::min(units_that_fit(daemon->available(), unit), to_add);
      if (k >= 1) {
        new_nodes.push_back(Placement{daemon, "", k});
        to_add -= k;
      }
    }
  }
  if (to_add > 0) {
    must(record.lifecycle.transition(ServiceState::kRunning));
    done(ApiError{ApiErrorCode::kInsufficientResources,
                  "cannot grow " + name + " to " + std::to_string(n_new) +
                      " instance(s); short by " + std::to_string(to_add)},
         engine_.now());
    return;
  }

  // Apply the in-place extensions.
  for (const auto& [idx, extra] : in_place) {
    Placement& placement = record.placements[idx];
    const int new_units = placement.units + extra;
    must(placement.daemon->resize_node(placement.node_name, new_units,
                                       unit.scaled(new_units)));
    auto desc = std::find_if(record.nodes.begin(), record.nodes.end(),
                             [&](const NodeDescriptor& d) {
                               return d.node_name == placement.node_name;
                             });
    SODA_ENSURES(desc != record.nodes.end());
    must(record.service_switch->set_backend_capacity(desc->address, desc->port,
                                                     new_units));
    desc->capacity_units = new_units;
    placement.units = new_units;
  }
  if (new_nodes.empty()) {
    reply_now();
    return;
  }

  // Prime the additional nodes. Dispatch from the local snapshot: callbacks
  // may mutate record.placements synchronously on failure.
  auto join = std::make_shared<PrimeJoin>();
  join->pending = new_nodes.size();
  for (Placement& placement : new_nodes) {
    placement.node_name = name + "/" + std::to_string(record.next_ordinal++);
    record.placements.push_back(placement);
  }
  for (const Placement& placement : new_nodes) {
    PrimeCommand command;
    command.node_name = placement.node_name;
    command.service_name = name;
    command.repository = record.repository;
    command.location = record.image_location;
    command.unit = record.requirement.m;
    command.capacity_units = placement.units;
    command.reserve = unit.scaled(placement.units);
    command.customize_rootfs = config_.customize_rootfs;
    command.address_mode = config_.address_mode;
    command.listen_port = record.listen_port;
    placement.daemon->prime_node(
        std::move(command),
        [this, join, name, n_new,
         done](Result<vm::VirtualServiceNode*> node, sim::SimTime now) {
          auto record_it = services_.find(name);
          SODA_ENSURES(record_it != services_.end());
          ServiceRecord& rec = record_it->second;
          if (!node.ok()) {
            if (!join->failed) {
              join->failed = true;
              join->first_error = node.error().message;
            }
          } else {
            const NodeDescriptor descriptor =
                describe_node(*node.value(), rec.listen_port);
            must(rec.service_switch->add_backend(BackEndEntry{
                descriptor.address, descriptor.port,
                descriptor.capacity_units}));
            rec.nodes.push_back(descriptor);
          }
          if (--join->pending > 0) return;
          if (join->failed) {
            // Drop the placements whose priming never produced a node.
            auto& placements = rec.placements;
            placements.erase(
                std::remove_if(placements.begin(), placements.end(),
                               [&](const Placement& p) {
                                 return std::none_of(
                                     rec.nodes.begin(), rec.nodes.end(),
                                     [&](const NodeDescriptor& d) {
                                       return d.node_name == p.node_name;
                                     });
                               }),
                placements.end());
            must(rec.lifecycle.transition(ServiceState::kRunning));
            done(ApiError{ApiErrorCode::kPrimingFailed, join->first_error}, now);
            return;
          }
          must(rec.lifecycle.transition(ServiceState::kRunning));
          rec.requirement.n = n_new;
          ServiceResizingReply reply;
          reply.service_name = name;
          reply.nodes = rec.nodes;
          done(reply, now);
        });
  }
}

// --- Failure detection & recovery -----------------------------------------

void SodaMaster::enable_failure_detection(FailureDetectorConfig config) {
  SODA_EXPECTS(config.heartbeat_interval > sim::SimTime::zero());
  SODA_EXPECTS(config.timeout >= config.heartbeat_interval);
  detector_config_ = config;
  detection_enabled_ = true;
  // Every registered host counts as heard-from now, so an idle HUP does not
  // mass-expire at the first check.
  for (const SodaDaemon* daemon : daemons_) {
    last_heartbeat_[daemon->host_name()] = engine_.now();
  }
}

void SodaMaster::start_failure_detector(FailureDetectorConfig config) {
  if (!detection_enabled_) enable_failure_detection(config);
  if (detector_running_) return;
  detector_running_ = true;
  engine_.schedule_after(detector_config_.heartbeat_interval,
                         [this] { detector_tick(); });
}

void SodaMaster::detector_tick() {
  if (!detector_running_) return;
  check_failures_once();
  engine_.schedule_after(detector_config_.heartbeat_interval,
                         [this] { detector_tick(); });
}

void SodaMaster::on_heartbeat(SodaDaemon& daemon, sim::SimTime now) {
  last_heartbeat_[daemon.host_name()] = now;
  if (down_hosts_.count(daemon.host_name())) handle_host_recovery(daemon);
}

std::size_t SodaMaster::check_failures_once() {
  SODA_EXPECTS(detection_enabled_);
  const sim::SimTime now = engine_.now();
  std::size_t newly_dead = 0;
  for (SodaDaemon* daemon : daemons_) {
    if (down_hosts_.count(daemon->host_name())) continue;
    const sim::SimTime last = last_heartbeat_[daemon->host_name()];
    if (now - last >= detector_config_.timeout) {
      handle_host_failure(*daemon);
      ++newly_dead;
    }
  }
  return newly_dead;
}

std::size_t SodaMaster::poll_liveness_once() {
  std::size_t changed = 0;
  for (SodaDaemon* daemon : daemons_) {
    const bool marked_down = down_hosts_.count(daemon->host_name()) > 0;
    if (!daemon->alive() && !marked_down) {
      handle_host_failure(*daemon);
      ++changed;
    } else if (daemon->alive() && marked_down) {
      handle_host_recovery(*daemon);
      ++changed;
    }
  }
  return changed;
}

void SodaMaster::handle_host_failure(SodaDaemon& daemon) {
  const std::string host = daemon.host_name();
  if (!down_hosts_.insert(host).second) return;
  ++host_failures_;
  util::global_logger().warn("master", "host " + host + " declared dead");
  if (trace_) {
    trace_->record(engine_.now(), TraceKind::kHostDown, "master", host);
  }
  // The crashed host's chunks are unreachable: purge them from the registry
  // so peers stop selecting it and fail over their in-flight transfers.
  chunk_registry_.remove_host(host);

  std::vector<std::string> degraded;
  for (auto& [name, record] : services_) {
    bool lost_any = false;
    int units_lost = 0;
    for (auto p_it = record.placements.begin();
         p_it != record.placements.end();) {
      if (p_it->daemon != &daemon) {
        ++p_it;
        continue;
      }
      lost_any = true;
      units_lost += p_it->units;
      ++placements_lost_;
      if (trace_) {
        trace_->record(engine_.now(), TraceKind::kNodeLost, "master",
                       p_it->node_name, "host " + host + " down");
      }
      auto d_it = std::find_if(record.nodes.begin(), record.nodes.end(),
                               [&](const NodeDescriptor& d) {
                                 return d.node_name == p_it->node_name;
                               });
      if (d_it != record.nodes.end()) {
        if (record.service_switch) {
          // The backend may still be mid-priming and absent from the switch.
          (void)record.service_switch->remove_backend(d_it->address,
                                                      d_it->port);
        }
        record.nodes.erase(d_it);
      }
      p_it = record.placements.erase(p_it);
    }
    if (!lost_any) continue;
    maybe_rehome_switch(record);
    if (record.lifecycle.state() == ServiceState::kRunning) {
      must(record.lifecycle.transition(ServiceState::kDegraded));
      if (trace_) {
        trace_->record(engine_.now(), TraceKind::kDegraded, "master", name,
                       std::to_string(units_lost) + " unit(s) lost with " +
                           host);
      }
    }
    if (record.lifecycle.state() == ServiceState::kDegraded) {
      degraded.push_back(name);
    }
  }
  for (const std::string& name : degraded) attempt_recovery(name);
}

void SodaMaster::handle_host_recovery(SodaDaemon& daemon) {
  if (down_hosts_.erase(daemon.host_name()) == 0) return;
  last_heartbeat_[daemon.host_name()] = engine_.now();
  util::global_logger().info("master", "host " + daemon.host_name() + " is back");
  if (trace_) {
    trace_->record(engine_.now(), TraceKind::kHostUp, "master",
                   daemon.host_name());
  }
  // The returned capacity may complete recoveries that were stuck short.
  std::vector<std::string> degraded;
  for (const auto& [name, record] : services_) {
    if (record.lifecycle.state() == ServiceState::kDegraded) {
      degraded.push_back(name);
    }
  }
  for (const std::string& name : degraded) attempt_recovery(name);
}

void SodaMaster::maybe_rehome_switch(ServiceRecord& record) {
  if (!record.service_switch || record.nodes.empty()) return;
  const net::Ipv4Address listen = record.service_switch->listen_address();
  for (const NodeDescriptor& node : record.nodes) {
    if (node.address == listen) return;  // colocation node is still alive
  }
  // Deterministic choice: the surviving node with the smallest name.
  const NodeDescriptor* front = &record.nodes.front();
  for (const NodeDescriptor& node : record.nodes) {
    if (node.node_name < front->node_name) front = &node;
  }
  record.service_switch->rehome(front->address, record.listen_port);
  if (trace_) {
    trace_->record(engine_.now(), TraceKind::kSwitchCreated, "master",
                   record.service_name,
                   "rehomed to " + front->address.to_string() + ":" +
                       std::to_string(record.listen_port));
  }
}

void SodaMaster::attempt_recovery(const std::string& service_name) {
  auto it = services_.find(service_name);
  if (it == services_.end()) return;
  ServiceRecord& record = it->second;
  if (record.lifecycle.state() != ServiceState::kDegraded ||
      !record.service_switch) {
    return;
  }
  const host::ResourceVector unit = inflated_unit(record.requirement.m);

  auto finish_if_restored = [this](ServiceRecord& rec) {
    bool restored;
    if (!rec.components.empty()) {
      restored = std::all_of(
          rec.components.begin(), rec.components.end(),
          [&](const image::ServiceComponent& component) {
            return std::any_of(rec.placements.begin(), rec.placements.end(),
                               [&](const Placement& p) {
                                 return p.component == component.name;
                               });
          });
    } else {
      int have = 0;
      for (const Placement& p : rec.placements) have += p.units;
      restored = have >= rec.requirement.n;
    }
    if (restored && rec.lifecycle.state() == ServiceState::kDegraded) {
      must(rec.lifecycle.transition(ServiceState::kRunning));
      ++recoveries_;
      if (trace_) {
        trace_->record(engine_.now(), TraceKind::kRecovered, "master",
                       rec.service_name,
                       std::to_string(rec.nodes.size()) + " node(s)");
      }
      util::global_logger().info(
          "master", rec.service_name + " recovered to full capacity");
    }
  };

  // Re-run admission for the lost capacity on the surviving hosts.
  std::vector<Placement> plan;
  if (!record.components.empty()) {
    std::vector<image::ServiceComponent> lost;
    for (const auto& component : record.components) {
      if (std::none_of(record.placements.begin(), record.placements.end(),
                       [&](const Placement& p) {
                         return p.component == component.name;
                       })) {
        lost.push_back(component);
      }
    }
    if (lost.empty()) {
      finish_if_restored(record);
      return;
    }
    auto planned = plan_components(record.requirement.m, lost);
    if (!planned.ok()) return;  // no host fits: stay degraded
    plan = std::move(planned).value();
  } else {
    int have = 0;
    for (const Placement& p : record.placements) have += p.units;
    int missing = record.requirement.n - have;
    if (missing <= 0) {
      finish_if_restored(record);
      return;
    }
    for (SodaDaemon* daemon : ordered_daemons()) {
      if (missing == 0) break;
      const bool used = std::any_of(
          record.placements.begin(), record.placements.end(),
          [&](const Placement& p) { return p.daemon == daemon; });
      if (used) continue;
      const int k = std::min(units_that_fit(daemon->available(), unit), missing);
      if (k >= 1) {
        plan.push_back(Placement{daemon, "", k});
        missing -= k;
      }
    }
    // Whatever fits is re-created now; a later host-up retries the rest.
    if (plan.empty()) return;
  }

  for (Placement& placement : plan) {
    placement.node_name =
        service_name + "/" + std::to_string(record.next_ordinal++);
    record.placements.push_back(placement);
  }
  util::global_logger().info(
      "master", "recovering " + service_name + ": re-priming " +
                    std::to_string(plan.size()) + " node(s)");

  auto join = std::make_shared<PrimeJoin>();
  join->pending = plan.size();
  for (const Placement& placement : plan) {
    PrimeCommand command;
    command.node_name = placement.node_name;
    command.service_name = service_name;
    command.repository = record.repository;
    command.location = record.image_location;
    command.unit = record.requirement.m;
    command.capacity_units = placement.units;
    command.reserve = unit.scaled(placement.units);
    command.customize_rootfs = config_.customize_rootfs;
    command.address_mode = config_.address_mode;
    command.listen_port = record.listen_port;
    if (!placement.component.empty()) {
      for (const auto& component : record.components) {
        if (component.name == placement.component) command.component = component;
      }
    }
    placement.daemon->prime_node(
        std::move(command),
        [this, join, name = service_name, finish_if_restored](
            Result<vm::VirtualServiceNode*> node, sim::SimTime now) {
          auto record_it = services_.find(name);
          if (record_it == services_.end()) return;  // torn down meanwhile
          ServiceRecord& rec = record_it->second;
          if (node.ok()) {
            const NodeDescriptor descriptor =
                describe_node(*node.value(), rec.listen_port);
            must(rec.service_switch->add_backend(BackEndEntry{
                descriptor.address, descriptor.port, descriptor.capacity_units,
                descriptor.component}));
            rec.nodes.push_back(descriptor);
          } else if (!join->failed) {
            join->failed = true;
            join->first_error = node.error().message;
          }
          if (--join->pending > 0) return;
          if (join->failed) {
            // Drop the placements whose re-priming never produced a node;
            // the service stays degraded with whatever did come up.
            auto& placements = rec.placements;
            placements.erase(
                std::remove_if(placements.begin(), placements.end(),
                               [&](const Placement& p) {
                                 return std::none_of(
                                     rec.nodes.begin(), rec.nodes.end(),
                                     [&](const NodeDescriptor& d) {
                                       return d.node_name == p.node_name;
                                     });
                               }),
                placements.end());
            util::global_logger().warn(
                "master", name + " recovery incomplete: " + join->first_error);
          }
          maybe_rehome_switch(rec);
          finish_if_restored(rec);
          (void)now;
        });
  }
}

}  // namespace soda::core
