#include "core/master.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/contract.hpp"
#include "util/log.hpp"

namespace soda::core {

SodaMaster::SodaMaster(sim::Engine& engine, MasterConfig config)
    : engine_(engine),
      config_(config),
      planner_(daemons_, down_hosts_),
      priming_(engine, directory_, daemons_),
      recovery_(engine,
                ControlPlaneView{services_, daemons_, down_hosts_,
                                 chunk_registry_},
                planner_, priming_, bus_) {
  planner_.configure(config_.placement, config_.slowdown_factor,
                     config_.max_nodes_per_service);
  // HUP-wide distribution byte totals, read on demand. With distribution
  // enabled the chunk layer accounts origin bytes itself; the legacy
  // whole-image path is counted by each host's downloader.
  bus_.metrics().register_gauge("bytes_from_origin", [this] {
    double total = 0;
    for (SodaDaemon* daemon : daemons_) {
      total += config_.distribution.enabled
                   ? static_cast<double>(
                         daemon->distributor().bytes_from_origin())
                   : static_cast<double>(
                         daemon->distributor().downloader().bytes_downloaded());
    }
    return total;
  });
  bus_.metrics().register_gauge("bytes_from_peers", [this] {
    double total = 0;
    for (const SodaDaemon* daemon : daemons_) {
      total += static_cast<double>(daemon->distributor().bytes_from_peers());
    }
    return total;
  });
}

Status SodaMaster::register_daemon(SodaDaemon* daemon) {
  SODA_EXPECTS(daemon != nullptr);
  if (host_names_.contains(daemon->host_name())) {
    return Error{"duplicate host: " + daemon->host_name()};
  }
  for (const SodaDaemon* existing : daemons_) {
    if (!net::IpPool::disjoint(existing->host().ip_pool(),
                               daemon->host().ip_pool())) {
      return Error{"IP pools of " + existing->host_name() + " and " +
                   daemon->host_name() + " overlap"};
    }
  }
  // Registration order defines the dense HostId space every fleet-scale
  // structure (down-host bitset, detector wheel, planner tie-breaks) is
  // indexed by.
  const HostId id{host_names_.intern(daemon->host_name())};
  SODA_ENSURES(id.index() == daemons_.size());
  daemon->set_host_id(id);
  daemons_.push_back(daemon);
  // Wire the host's image-distribution front end into the HUP: shared
  // repository directory (per-attempt name resolution), shared chunk
  // registry (P2P priming), and the Master's distribution policy. The
  // daemon's control-plane events flow into the Master's bus.
  daemon->distributor().configure(config_.distribution);
  daemon->distributor().set_directory(&directory_);
  daemon->distributor().set_registry(&chunk_registry_);
  daemon->set_bus(&bus_);
  recovery_.on_host_registered(*daemon);
  return {};
}

void SodaMaster::attach_restored_daemon(SodaDaemon* daemon) {
  SODA_EXPECTS(daemon != nullptr);
  daemon->set_host_id(HostId{static_cast<std::uint32_t>(daemons_.size())});
  daemons_.push_back(daemon);
  daemon->distributor().configure(config_.distribution);
  daemon->distributor().set_directory(&directory_);
  daemon->distributor().set_registry(&chunk_registry_);
  daemon->set_bus(&bus_);
}

void SodaMaster::save_state(snapshot::Writer& writer) const {
  writer.begin_section("master");
  writer.f64(config_.slowdown_factor);
  writer.u8(static_cast<std::uint8_t>(config_.placement));
  writer.boolean(config_.customize_rootfs);
  writer.u8(static_cast<std::uint8_t>(config_.address_mode));
  writer.i64(config_.max_nodes_per_service);
  writer.u64(daemons_.size());
  host_names_.save_state(writer);
  down_hosts_.save_state(writer);
  chunk_registry_.save_state(writer);
  bus_.save_state(writer);
  priming_.save_state(writer);
  recovery_.save_state(writer);
  services_.save_state(writer);
  writer.end_section();
}

void SodaMaster::load_state(snapshot::Reader& reader) {
  reader.begin_section("master");
  const double slowdown = reader.f64();
  const auto placement = static_cast<PlacementPolicy>(reader.u8());
  const bool customize = reader.boolean();
  const auto address_mode = static_cast<AddressMode>(reader.u8());
  const auto max_nodes = static_cast<int>(reader.i64());
  if (reader.ok() &&
      (slowdown != config_.slowdown_factor || placement != config_.placement ||
       customize != config_.customize_rootfs ||
       address_mode != config_.address_mode ||
       max_nodes != config_.max_nodes_per_service)) {
    reader.fail("master config mismatch");
    return;
  }
  const std::uint64_t daemons = reader.u64();
  if (reader.ok() && daemons != daemons_.size()) {
    reader.fail("daemon count mismatch (attach restored daemons before load)");
    return;
  }
  host_names_.load_state(reader);
  down_hosts_.load_state(reader);
  chunk_registry_.load_state(reader);
  bus_.load_state(reader);
  priming_.load_state(reader);
  recovery_.load_state(reader);
  services_.load_state(
      reader, [this](std::string_view host) { return daemon_for(host); });
  reader.end_section();
}

void SodaMaster::register_repository(const image::ImageRepository* repository) {
  SODA_EXPECTS(repository != nullptr);
  directory_.add(repository);
}

bool SodaMaster::unregister_repository(const std::string& name) {
  return directory_.remove(name);
}

void SodaMaster::warm_hosts(const image::ImageLocation& location,
                            const std::vector<std::string>& hosts,
                            WarmCallback done) {
  SODA_EXPECTS(done != nullptr);
  const image::ImageRepository* repo = directory_.find(location.repository);
  if (repo == nullptr) {
    done(Error{"unknown repository: " + location.repository}, engine_.now());
    return;
  }
  std::vector<SodaDaemon*> targets;
  for (const std::string& host : hosts) {
    SodaDaemon* daemon = daemon_for(host);
    if (daemon != nullptr && daemon->alive() &&
        !down_hosts_.test(daemon->host_id())) {
      targets.push_back(daemon);
    }
  }
  if (targets.empty()) {
    done(Error{"no live host to warm with " + location.url()}, engine_.now());
    return;
  }
  struct WarmJoin {
    std::size_t pending = 0;
    bool failed = false;
    std::string first_error;
  };
  auto join = std::make_shared<WarmJoin>();
  join->pending = targets.size();
  for (SodaDaemon* daemon : targets) {
    // The fetch lands the chunks in the host's cache (and registry); the
    // image copy itself is discarded — priming re-fetches it for free.
    daemon->distributor().fetch(
        *repo, location,
        [join, done](Result<image::ServiceImage> image, sim::SimTime now) {
          if (!image.ok() && !join->failed) {
            join->failed = true;
            join->first_error = image.error().message;
          }
          if (--join->pending > 0) return;
          if (join->failed) {
            done(Error{join->first_error}, now);
          } else {
            done({}, now);
          }
        });
  }
}

SodaDaemon* SodaMaster::daemon_for(std::string_view host_name) const {
  const HostId id{host_names_.find(host_name)};
  return id.valid() ? daemons_[id.index()] : nullptr;
}

host::ResourceVector SodaMaster::hup_available() const {
  host::ResourceVector total;
  for (const SodaDaemon* daemon : daemons_) {
    if (down_hosts_.test(daemon->host_id())) continue;
    total += daemon->available();
  }
  return total;
}

void SodaMaster::create_service(const ServiceCreationRequest& request,
                                CreateCallback done) {
  SODA_EXPECTS(done != nullptr);
  auto& log = util::global_logger();

  if (request.service_name.empty()) {
    done(ApiError{ApiErrorCode::kInvalidRequest, "service name must not be empty"},
         engine_.now());
    return;
  }
  if (services_.contains(request.service_name)) {
    done(ApiError{ApiErrorCode::kServiceExists,
                  "service already hosted: " + request.service_name},
         engine_.now());
    return;
  }
  const image::ImageRepository* repo =
      directory_.find(request.image_location.repository);
  if (repo == nullptr) {
    done(ApiError{ApiErrorCode::kImageNotFound,
                  "unknown repository: " + request.image_location.repository},
         engine_.now());
    return;
  }
  auto image = repo->lookup(request.image_location.path);
  if (!image.ok()) {
    done(ApiError{ApiErrorCode::kImageNotFound, image.error().message},
         engine_.now());
    return;
  }

  const bool partitioned = image.value()->partitioned();
  if (partitioned &&
      request.requirement.n != image.value()->total_component_units()) {
    done(ApiError{ApiErrorCode::kInvalidRequest,
                  "partitioned image needs n = " +
                      std::to_string(image.value()->total_component_units()) +
                      " (sum of component units), got " +
                      std::to_string(request.requirement.n)},
         engine_.now());
    return;
  }
  // Cache-affinity placement consults per-host chunk caches through the
  // image's manifest; the other policies ignore the query.
  image::ImageManifest manifest;
  PlacementQuery query;
  if (config_.placement == PlacementPolicy::kCacheAffinity) {
    manifest = image::build_manifest(*image.value(),
                                     config_.distribution.chunk_bytes);
    query.manifest = &manifest;
  }
  auto plan = partitioned
                  ? planner_.plan_components(request.requirement.m,
                                             image.value()->components, query)
                  : planner_.plan_allocation(request.service_name,
                                             request.requirement, query);
  if (!plan.ok()) {
    bus_.publish(engine_.now(), TraceKind::kRejected, "master",
                 request.service_name, plan.error().to_string());
    done(plan.error(), engine_.now());
    return;
  }

  // Admit: record the service and transition the lifecycle.
  ServiceRecord& live = services_.create(request.service_name);
  live.asp_id = request.credentials.asp_id;
  live.requirement = request.requirement;
  live.image_location = request.image_location;
  live.listen_port = partitioned ? image.value()->components.front().listen_port
                                 : image.value()->listen_port;
  live.customize_rootfs = config_.customize_rootfs;
  live.address_mode = config_.address_mode;
  live.components = image.value()->components;
  live.placements = std::move(plan).value();
  live.lifecycle = ServiceLifecycle(request.service_name);
  must(live.lifecycle.transition(ServiceState::kAdmitted));
  must(live.lifecycle.transition(ServiceState::kPriming));
  for (auto& placement : live.placements) {
    placement.node_name =
        request.service_name + "/" + std::to_string(live.next_ordinal++);
  }
  log.info("master", "admitted " + request.service_name + " " +
                         request.requirement.to_string() + " onto " +
                         std::to_string(live.placements.size()) + " node(s)");
  bus_.publish(engine_.now(), TraceKind::kAdmitted, "master",
               request.service_name,
               request.requirement.to_string() + " -> " +
                   std::to_string(live.placements.size()) + " node(s)");

  // Prime every node; the coordinator joins on the last completion.
  PrimeSpec spec;
  spec.service_name = live.service_name;
  spec.location = live.image_location;
  spec.unit = live.requirement.m;
  spec.inflated_unit = planner_.inflated_unit(live.requirement.m);
  spec.listen_port = live.listen_port;
  spec.components = &live.components;
  spec.customize_rootfs = live.customize_rootfs;
  spec.address_mode = live.address_mode;
  priming_.prime(
      live.placements, spec,
      [this, name = live.service_name](vm::VirtualServiceNode& node,
                                       sim::SimTime) {
        ServiceRecord* rec = services_.find(name);
        SODA_ENSURES(rec != nullptr);
        rec->nodes.push_back(describe_node(node, rec->listen_port));
      },
      [this, name = live.service_name,
       done](const PrimingCoordinator::Outcome& outcome, sim::SimTime now) {
        ServiceRecord* rec = services_.find(name);
        SODA_ENSURES(rec != nullptr);
        if (outcome.failed) {
          priming_.rollback(rec->nodes);
          must(rec->lifecycle.transition(ServiceState::kFailed));
          const std::string message = outcome.first_error;
          services_.erase(name);
          bus_.publish(now, TraceKind::kPrimingFailed, "master", name, message);
          done(ApiError{ApiErrorCode::kPrimingFailed, message}, now);
          return;
        }
        finish_creation(*rec, done);
      });
}

void SodaMaster::finish_creation(ServiceRecord& record, CreateCallback done) {
  // Deterministic backend order regardless of priming completion order.
  std::sort(record.nodes.begin(), record.nodes.end(),
            [](const NodeDescriptor& a, const NodeDescriptor& b) {
              return a.node_name < b.node_name;
            });
  // The switch is colocated in the first virtual service node (§3.4).
  const NodeDescriptor& front = record.nodes.front();
  record.service_switch = std::make_unique<ServiceSwitch>(
      record.service_name, front.address, record.listen_port);
  for (const NodeDescriptor& node : record.nodes) {
    must(record.service_switch->add_backend(BackEndEntry{
        node.address, node.port, node.capacity_units, node.component}));
  }
  for (const auto& component : record.components) {
    if (!component.route_prefix.empty()) {
      record.service_switch->set_component_route(component.route_prefix,
                                                 component.name);
    }
  }
  must(record.lifecycle.transition(ServiceState::kRunning));
  bus_.publish(engine_.now(), TraceKind::kSwitchCreated, "master",
               record.service_name,
               front.address.to_string() + ":" +
                   std::to_string(record.listen_port));
  bus_.publish(engine_.now(), TraceKind::kServiceRunning, "master",
               record.service_name,
               std::to_string(record.nodes.size()) + " node(s)");
  util::global_logger().info(
      "master", record.service_name + " running; switch at " +
                    front.address.to_string() + ":" +
                    std::to_string(record.listen_port) + "\n" +
                    record.service_switch->config_text());

  ServiceCreationReply reply;
  reply.service_name = record.service_name;
  reply.nodes = record.nodes;
  reply.switch_address = front.address;
  reply.switch_port = record.listen_port;
  done(reply, engine_.now());
}

ApiResult<ServiceCreationReply> SodaMaster::describe_service(
    const std::string& name) const {
  const ServiceRecord* record = services_.find(name);
  if (record == nullptr || !record->service_switch) {
    return ApiError{ApiErrorCode::kNoSuchService, "no such service: " + name};
  }
  ServiceCreationReply reply;
  reply.service_name = record->service_name;
  reply.nodes = record->nodes;
  reply.switch_address = record->service_switch->listen_address();
  reply.switch_port = record->service_switch->listen_port();
  return reply;
}

Result<void, ApiError> SodaMaster::teardown_service(const std::string& name) {
  ServiceRecord* record = services_.find(name);
  if (record == nullptr) {
    return ApiError{ApiErrorCode::kNoSuchService, "no such service: " + name};
  }
  if (auto moved = record->lifecycle.transition(ServiceState::kTearingDown);
      !moved.ok()) {
    return ApiError{ApiErrorCode::kInvalidRequest, moved.error().message};
  }
  priming_.rollback(record->nodes);
  must(record->lifecycle.transition(ServiceState::kGone));
  services_.erase(name);
  bus_.publish(engine_.now(), TraceKind::kTornDown, "master", name);
  util::global_logger().info("master", "tore down " + name);
  return {};
}

const ServiceRecord* SodaMaster::find_service(std::string_view name) const {
  return services_.find(name);
}

ServiceSwitch* SodaMaster::find_switch(std::string_view name) {
  ServiceRecord* record = services_.find(name);
  return record == nullptr ? nullptr : record->service_switch.get();
}

std::vector<std::string> SodaMaster::service_names() const {
  std::vector<std::string> names;
  names.reserve(services_.size());
  services_.for_each([&](const std::string& name, const ServiceRecord&) {
    names.push_back(name);
  });
  return names;
}

void SodaMaster::resize_service(const std::string& name, int n_new,
                                ResizeCallback done) {
  SODA_EXPECTS(done != nullptr);
  ServiceRecord* found = services_.find(name);
  if (found == nullptr) {
    done(ApiError{ApiErrorCode::kNoSuchService, "no such service: " + name},
         engine_.now());
    return;
  }
  ServiceRecord& record = *found;
  if (!record.components.empty()) {
    done(ApiError{ApiErrorCode::kInvalidRequest,
                  "resizing a partitioned service is not supported; tear down "
                  "and recreate with new component units"},
         engine_.now());
    return;
  }
  if (n_new < 1) {
    done(ApiError{ApiErrorCode::kInvalidRequest, "n_new must be >= 1"},
         engine_.now());
    return;
  }
  if (auto moved = record.lifecycle.transition(ServiceState::kResizing);
      !moved.ok()) {
    done(ApiError{ApiErrorCode::kInvalidRequest, moved.error().message},
         engine_.now());
    return;
  }

  int current = 0;
  for (const Placement& p : record.placements) current += p.units;
  const host::ResourceVector unit = planner_.inflated_unit(record.requirement.m);

  auto reply_now = [&] {
    must(record.lifecycle.transition(ServiceState::kRunning));
    bus_.publish(engine_.now(), TraceKind::kResized, "master", name,
                 "n=" + std::to_string(n_new));
    record.requirement.n = n_new;
    ServiceResizingReply reply;
    reply.service_name = name;
    reply.nodes = record.nodes;
    done(reply, engine_.now());
  };

  if (n_new == current) {
    reply_now();
    return;
  }

  if (n_new < current) {
    // --- Shrink: shed units from the last placements first; never remove
    // the first node (the switch is colocated there). ---
    int to_shed = current - n_new;
    for (std::size_t idx = record.placements.size(); idx-- > 0 && to_shed > 0;) {
      Placement& placement = record.placements[idx];
      const bool is_switch_node = idx == 0;
      const int min_units = is_switch_node ? 1 : 0;
      const int shed = std::min(placement.units - min_units, to_shed);
      if (shed <= 0) continue;
      const int new_units = placement.units - shed;
      auto desc = std::find_if(record.nodes.begin(), record.nodes.end(),
                               [&](const NodeDescriptor& d) {
                                 return d.node_name == placement.node_name;
                               });
      SODA_ENSURES(desc != record.nodes.end());
      if (new_units == 0) {
        must(record.service_switch->remove_backend(desc->address, desc->port));
        must(placement.daemon->teardown_node(placement.node_name));
        record.nodes.erase(desc);
        record.placements.erase(record.placements.begin() +
                                static_cast<std::ptrdiff_t>(idx));
      } else {
        must(placement.daemon->resize_node(placement.node_name, new_units,
                                           unit.scaled(new_units)));
        must(record.service_switch->set_backend_capacity(desc->address,
                                                          desc->port, new_units));
        desc->capacity_units = new_units;
        placement.units = new_units;
      }
      to_shed -= shed;
    }
    SODA_ENSURES(to_shed == 0);
    reply_now();
    return;
  }

  // --- Grow: plan first (in-place extension, then new nodes), then apply. ---
  int to_add = n_new - current;
  std::vector<std::pair<std::size_t, int>> in_place;  // placement idx, extra
  for (std::size_t idx = 0; idx < record.placements.size() && to_add > 0; ++idx) {
    const Placement& placement = record.placements[idx];
    const int extra =
        std::min(units_that_fit(placement.daemon->available(), unit), to_add);
    if (extra >= 1) {
      in_place.emplace_back(idx, extra);
      to_add -= extra;
    }
  }
  std::vector<Placement> new_nodes;
  if (to_add > 0) {
    for (SodaDaemon* daemon : planner_.ordered_daemons()) {
      if (to_add == 0) break;
      const bool already_used = std::any_of(
          record.placements.begin(), record.placements.end(),
          [&](const Placement& p) { return p.daemon == daemon; });
      if (already_used) continue;
      const int k = std::min(units_that_fit(daemon->available(), unit), to_add);
      if (k >= 1) {
        new_nodes.push_back(Placement{daemon, "", k});
        to_add -= k;
      }
    }
  }
  if (to_add > 0) {
    must(record.lifecycle.transition(ServiceState::kRunning));
    done(ApiError{ApiErrorCode::kInsufficientResources,
                  "cannot grow " + name + " to " + std::to_string(n_new) +
                      " instance(s); short by " + std::to_string(to_add)},
         engine_.now());
    return;
  }

  // Apply the in-place extensions.
  for (const auto& [idx, extra] : in_place) {
    Placement& placement = record.placements[idx];
    const int new_units = placement.units + extra;
    must(placement.daemon->resize_node(placement.node_name, new_units,
                                       unit.scaled(new_units)));
    auto desc = std::find_if(record.nodes.begin(), record.nodes.end(),
                             [&](const NodeDescriptor& d) {
                               return d.node_name == placement.node_name;
                             });
    SODA_ENSURES(desc != record.nodes.end());
    must(record.service_switch->set_backend_capacity(desc->address, desc->port,
                                                     new_units));
    desc->capacity_units = new_units;
    placement.units = new_units;
  }
  if (new_nodes.empty()) {
    reply_now();
    return;
  }

  // Prime the additional nodes through the shared coordinator (which
  // re-resolves the repository by name — never a cached pointer).
  std::vector<std::string> batch;
  batch.reserve(new_nodes.size());
  for (Placement& placement : new_nodes) {
    placement.node_name = name + "/" + std::to_string(record.next_ordinal++);
    batch.push_back(placement.node_name);
    record.placements.push_back(placement);
  }
  PrimeSpec spec;
  spec.service_name = name;
  spec.location = record.image_location;
  spec.unit = record.requirement.m;
  spec.inflated_unit = unit;
  spec.listen_port = record.listen_port;
  spec.customize_rootfs = record.customize_rootfs;
  spec.address_mode = record.address_mode;
  priming_.prime(
      std::move(new_nodes), spec,
      [this, name](vm::VirtualServiceNode& node, sim::SimTime) {
        ServiceRecord* rec = services_.find(name);
        SODA_ENSURES(rec != nullptr);
        const NodeDescriptor descriptor = describe_node(node, rec->listen_port);
        must(rec->service_switch->add_backend(BackEndEntry{
            descriptor.address, descriptor.port, descriptor.capacity_units}));
        rec->nodes.push_back(descriptor);
      },
      [this, name, n_new, done, batch = std::move(batch)](
          const PrimingCoordinator::Outcome& outcome, sim::SimTime now) {
        ServiceRecord* rec = services_.find(name);
        SODA_ENSURES(rec != nullptr);
        if (outcome.failed) {
          // Drop this batch's placements whose priming never produced a
          // node. Scoped to the batch: if a host crash mid-resize kicked
          // off a recovery attempt, its still-priming placements have no
          // node yet and must survive this cleanup.
          auto& placements = rec->placements;
          placements.erase(
              std::remove_if(placements.begin(), placements.end(),
                             [&](const Placement& p) {
                               return std::find(batch.begin(), batch.end(),
                                                p.node_name) != batch.end() &&
                                      std::none_of(
                                          rec->nodes.begin(), rec->nodes.end(),
                                          [&](const NodeDescriptor& d) {
                                            return d.node_name == p.node_name;
                                          });
                             }),
              placements.end());
          must(rec->lifecycle.transition(ServiceState::kRunning));
          done(ApiError{ApiErrorCode::kPrimingFailed, outcome.first_error},
               now);
          return;
        }
        must(rec->lifecycle.transition(ServiceState::kRunning));
        rec->requirement.n = n_new;
        ServiceResizingReply reply;
        reply.service_name = name;
        reply.nodes = rec->nodes;
        done(reply, now);
      });
}

}  // namespace soda::core
