// The Master's service store, restructured for fleet scale (DESIGN.md §11):
// heavy ServiceRecords live in a slot-based deque (stable addresses, slots
// recycled through a free list) instead of std::map nodes; an InternTable
// assigns each service name a dense ServiceId for O(1) id-indexed access;
// and a transparent `std::map<std::string, slot, std::less<>>` keeps two
// things the seed relied on — heterogeneous string_view lookup with no
// temporary std::string, and name-ordered iteration, which the recovery
// path's trace output is pinned to byte-for-byte.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/ids.hpp"
#include "core/placement.hpp"
#include "core/service.hpp"
#include "core/switch.hpp"
#include "host/resources.hpp"
#include "image/image.hpp"

namespace soda::core {

/// Everything the Master tracks per service. Priming-relevant config is
/// snapshotted here at admission; the image's repository is deliberately
/// NOT cached — every priming path re-resolves it by name through the
/// repository directory, so an unregistered repository fails cleanly.
struct ServiceRecord {
  std::string service_name;
  /// Dense id interned at admission; a re-created name keeps its id.
  ServiceId id;
  std::string asp_id;
  host::ResourceRequirement requirement;
  image::ImageLocation image_location;
  int listen_port = 0;
  bool customize_rootfs = true;
  AddressMode address_mode = AddressMode::kBridging;
  std::vector<NodeDescriptor> nodes;
  std::vector<Placement> placements;
  std::vector<image::ServiceComponent> components;  // empty when replicated
  std::unique_ptr<ServiceSwitch> service_switch;
  ServiceLifecycle lifecycle{""};
  int next_ordinal = 0;  // node-name counter, never reused after teardown
};

class ServiceTable {
 public:
  ServiceTable() = default;
  ServiceTable(const ServiceTable&) = delete;
  ServiceTable& operator=(const ServiceTable&) = delete;

  /// Creates the slot for `name` (which must not be present) and interns
  /// its ServiceId. The returned record is blank except for service_name
  /// and id; its address is stable until erase().
  ServiceRecord& create(std::string name) {
    const ServiceId id{ids_.intern(name)};
    if (id.index() >= slot_of_id_.size()) {
      slot_of_id_.resize(id.index() + 1, kInvalidInternId);
    }
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    ServiceRecord& record = slots_[slot];
    record.service_name = name;
    record.id = id;
    slot_of_id_[id.index()] = slot;
    by_name_.emplace(std::move(name), slot);
    return record;
  }

  /// Releases `name`'s slot (record contents destroyed now, slot recycled).
  /// False when the name is unknown.
  bool erase(std::string_view name) {
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) return false;
    const std::uint32_t slot = it->second;
    slot_of_id_[slots_[slot].id.index()] = kInvalidInternId;
    slots_[slot] = ServiceRecord{};  // drop switch, nodes, placements now
    free_slots_.push_back(slot);
    by_name_.erase(it);
    return true;
  }

  [[nodiscard]] ServiceRecord* find(std::string_view name) noexcept {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &slots_[it->second];
  }
  [[nodiscard]] const ServiceRecord* find(std::string_view name) const noexcept {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &slots_[it->second];
  }

  /// O(1) dense lookup; nullptr when the id's service was torn down.
  [[nodiscard]] ServiceRecord* find(ServiceId id) noexcept {
    if (!id.valid() || id.index() >= slot_of_id_.size()) return nullptr;
    const std::uint32_t slot = slot_of_id_[id.index()];
    return slot == kInvalidInternId ? nullptr : &slots_[slot];
  }

  /// The dense id ever assigned to `name` (valid even after teardown — ids
  /// outlive records), or an invalid id for names never admitted.
  [[nodiscard]] ServiceId id_of(std::string_view name) const noexcept {
    return ServiceId{ids_.find(name)};
  }

  [[nodiscard]] bool contains(std::string_view name) const noexcept {
    return by_name_.find(name) != by_name_.end();
  }
  [[nodiscard]] std::size_t size() const noexcept { return by_name_.size(); }

  /// Visits every live record in service-name order (the seed's std::map
  /// iteration order — the recovery trace pin depends on it).
  template <typename F>
  void for_each(F&& f) {
    for (const auto& [name, slot] : by_name_) f(name, slots_[slot]);
  }
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [name, slot] : by_name_) f(name, slots_[slot]);
  }

 private:
  std::deque<ServiceRecord> slots_;  // stable addresses across growth
  std::vector<std::uint32_t> free_slots_;
  std::map<std::string, std::uint32_t, std::less<>> by_name_;
  InternTable ids_;
  std::vector<std::uint32_t> slot_of_id_;  // ServiceId.index() -> slot
};

}  // namespace soda::core
