// The Master's service store, restructured for fleet scale (DESIGN.md §11):
// heavy ServiceRecords live in a slot-based deque (stable addresses, slots
// recycled through a free list) instead of std::map nodes; an InternTable
// assigns each service name a dense ServiceId for O(1) id-indexed access;
// and a transparent `std::map<std::string, slot, std::less<>>` keeps two
// things the seed relied on — heterogeneous string_view lookup with no
// temporary std::string, and name-ordered iteration, which the recovery
// path's trace output is pinned to byte-for-byte.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/daemon.hpp"
#include "core/ids.hpp"
#include "core/placement.hpp"
#include "core/service.hpp"
#include "core/switch.hpp"
#include "host/resources.hpp"
#include "image/image.hpp"
#include "snapshot/format.hpp"

namespace soda::core {

/// Everything the Master tracks per service. Priming-relevant config is
/// snapshotted here at admission; the image's repository is deliberately
/// NOT cached — every priming path re-resolves it by name through the
/// repository directory, so an unregistered repository fails cleanly.
struct ServiceRecord {
  std::string service_name;
  /// Dense id interned at admission; a re-created name keeps its id.
  ServiceId id;
  std::string asp_id;
  host::ResourceRequirement requirement;
  image::ImageLocation image_location;
  int listen_port = 0;
  bool customize_rootfs = true;
  AddressMode address_mode = AddressMode::kBridging;
  std::vector<NodeDescriptor> nodes;
  std::vector<Placement> placements;
  std::vector<image::ServiceComponent> components;  // empty when replicated
  std::unique_ptr<ServiceSwitch> service_switch;
  ServiceLifecycle lifecycle{""};
  int next_ordinal = 0;  // node-name counter, never reused after teardown
};

class ServiceTable {
 public:
  ServiceTable() = default;
  ServiceTable(const ServiceTable&) = delete;
  ServiceTable& operator=(const ServiceTable&) = delete;

  /// Creates the slot for `name` (which must not be present) and interns
  /// its ServiceId. The returned record is blank except for service_name
  /// and id; its address is stable until erase().
  ServiceRecord& create(std::string name) {
    const ServiceId id{ids_.intern(name)};
    if (id.index() >= slot_of_id_.size()) {
      slot_of_id_.resize(id.index() + 1, kInvalidInternId);
    }
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    ServiceRecord& record = slots_[slot];
    record.service_name = name;
    record.id = id;
    slot_of_id_[id.index()] = slot;
    by_name_.emplace(std::move(name), slot);
    return record;
  }

  /// Releases `name`'s slot (record contents destroyed now, slot recycled).
  /// False when the name is unknown.
  bool erase(std::string_view name) {
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) return false;
    const std::uint32_t slot = it->second;
    slot_of_id_[slots_[slot].id.index()] = kInvalidInternId;
    slots_[slot] = ServiceRecord{};  // drop switch, nodes, placements now
    free_slots_.push_back(slot);
    by_name_.erase(it);
    return true;
  }

  [[nodiscard]] ServiceRecord* find(std::string_view name) noexcept {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &slots_[it->second];
  }
  [[nodiscard]] const ServiceRecord* find(std::string_view name) const noexcept {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &slots_[it->second];
  }

  /// O(1) dense lookup; nullptr when the id's service was torn down.
  [[nodiscard]] ServiceRecord* find(ServiceId id) noexcept {
    if (!id.valid() || id.index() >= slot_of_id_.size()) return nullptr;
    const std::uint32_t slot = slot_of_id_[id.index()];
    return slot == kInvalidInternId ? nullptr : &slots_[slot];
  }

  /// The dense id ever assigned to `name` (valid even after teardown — ids
  /// outlive records), or an invalid id for names never admitted.
  [[nodiscard]] ServiceId id_of(std::string_view name) const noexcept {
    return ServiceId{ids_.find(name)};
  }

  [[nodiscard]] bool contains(std::string_view name) const noexcept {
    return by_name_.find(name) != by_name_.end();
  }
  [[nodiscard]] std::size_t size() const noexcept { return by_name_.size(); }

  /// Visits every live record in service-name order (the seed's std::map
  /// iteration order — the recovery trace pin depends on it).
  template <typename F>
  void for_each(F&& f) {
    for (const auto& [name, slot] : by_name_) f(name, slots_[slot]);
  }
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& [name, slot] : by_name_) f(name, slots_[slot]);
  }

  /// Resolves a daemon by host name when placements are relinked on restore.
  using DaemonResolver = std::function<SodaDaemon*(std::string_view host_name)>;

  /// Checkpoints every slot (live records in full — switch and policy state
  /// included), the free list, and the intern table, preserving slot and id
  /// assignments exactly so recycled-slot/id behaviour replays identically.
  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("service_table");
    std::vector<std::uint8_t> live(slots_.size(), 1);
    for (const std::uint32_t slot : free_slots_) live[slot] = 0;
    writer.u64(slots_.size());
    writer.u64(free_slots_.size());
    for (const std::uint32_t slot : free_slots_) writer.u32(slot);
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
      writer.u8(live[slot]);
      if (live[slot]) save_record(writer, slots_[slot]);
    }
    ids_.save_state(writer);
    writer.u64(slot_of_id_.size());
    for (const std::uint32_t slot : slot_of_id_) writer.u32(slot);
    writer.end_section();
  }

  void load_state(snapshot::Reader& reader, const DaemonResolver& resolve) {
    reader.begin_section("service_table");
    slots_.clear();
    free_slots_.clear();
    by_name_.clear();
    slot_of_id_.clear();
    const std::uint64_t slots = reader.u64();
    const std::uint64_t frees = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < frees; ++i) {
      free_slots_.push_back(reader.u32());
    }
    for (std::uint64_t slot = 0; reader.ok() && slot < slots; ++slot) {
      ServiceRecord& record = slots_.emplace_back();
      if (reader.u8() == 0) continue;  // recycled slot, stays blank
      load_record(reader, record, resolve);
      if (!reader.ok()) return;
      by_name_.emplace(record.service_name, static_cast<std::uint32_t>(slot));
    }
    ids_.load_state(reader);
    const std::uint64_t id_slots = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < id_slots; ++i) {
      slot_of_id_.push_back(reader.u32());
    }
    reader.end_section();
  }

 private:
  static void save_record(snapshot::Writer& writer, const ServiceRecord& r) {
    writer.begin_section("service");
    writer.str(r.service_name);
    writer.u32(r.id.value);
    writer.str(r.asp_id);
    writer.i64(r.requirement.n);
    writer.f64(r.requirement.m.cpu_mhz);
    writer.i64(r.requirement.m.memory_mb);
    writer.i64(r.requirement.m.disk_mb);
    writer.f64(r.requirement.m.bandwidth_mbps);
    writer.str(r.image_location.repository);
    writer.str(r.image_location.path);
    writer.i64(r.listen_port);
    writer.boolean(r.customize_rootfs);
    writer.u8(static_cast<std::uint8_t>(r.address_mode));
    writer.u64(r.nodes.size());
    for (const NodeDescriptor& node : r.nodes) {
      writer.str(node.node_name);
      writer.str(node.host_name);
      writer.u32(node.address.value());
      writer.i64(node.port);
      writer.i64(node.capacity_units);
      writer.str(node.component);
    }
    // Placements reference daemons by host name; the resolver relinks them.
    writer.u64(r.placements.size());
    for (const Placement& placement : r.placements) {
      writer.str(placement.daemon->host_name());
      writer.str(placement.node_name);
      writer.i64(placement.units);
      writer.str(placement.component);
    }
    writer.u64(r.components.size());
    for (const image::ServiceComponent& c : r.components) {
      writer.str(c.name);
      writer.str(c.entry_command);
      writer.i64(c.listen_port);
      writer.str(c.route_prefix);
      writer.u64(c.required_services.size());
      for (const std::string& s : c.required_services) writer.str(s);
      writer.f64(c.app_start_ghz_s);
      writer.i64(c.app_memory_mb);
      writer.i64(c.units);
    }
    writer.boolean(r.service_switch != nullptr);
    if (r.service_switch) r.service_switch->save_state(writer);
    writer.u8(static_cast<std::uint8_t>(r.lifecycle.state()));
    writer.i64(r.next_ordinal);
    writer.end_section();
  }

  static void load_record(snapshot::Reader& reader, ServiceRecord& r,
                          const DaemonResolver& resolve) {
    reader.begin_section("service");
    r.service_name = reader.str();
    r.id = ServiceId{reader.u32()};
    r.asp_id = reader.str();
    r.requirement.n = static_cast<int>(reader.i64());
    r.requirement.m.cpu_mhz = reader.f64();
    r.requirement.m.memory_mb = reader.i64();
    r.requirement.m.disk_mb = reader.i64();
    r.requirement.m.bandwidth_mbps = reader.f64();
    r.image_location.repository = reader.str();
    r.image_location.path = reader.str();
    r.listen_port = static_cast<int>(reader.i64());
    r.customize_rootfs = reader.boolean();
    r.address_mode = static_cast<AddressMode>(reader.u8());
    const std::uint64_t nodes = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < nodes; ++i) {
      NodeDescriptor& node = r.nodes.emplace_back();
      node.node_name = reader.str();
      node.host_name = reader.str();
      node.address = net::Ipv4Address{reader.u32()};
      node.port = static_cast<int>(reader.i64());
      node.capacity_units = static_cast<int>(reader.i64());
      node.component = reader.str();
    }
    const std::uint64_t placements = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < placements; ++i) {
      Placement& placement = r.placements.emplace_back();
      const std::string host_name = reader.str();
      placement.daemon = resolve(host_name);
      if (placement.daemon == nullptr) {
        reader.fail("placement references unknown host '" + host_name + "'");
        return;
      }
      placement.node_name = reader.str();
      placement.units = static_cast<int>(reader.i64());
      placement.component = reader.str();
    }
    const std::uint64_t components = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < components; ++i) {
      image::ServiceComponent& c = r.components.emplace_back();
      c.name = reader.str();
      c.entry_command = reader.str();
      c.listen_port = static_cast<int>(reader.i64());
      c.route_prefix = reader.str();
      const std::uint64_t services = reader.u64();
      for (std::uint64_t j = 0; reader.ok() && j < services; ++j) {
        c.required_services.push_back(reader.str());
      }
      c.app_start_ghz_s = reader.f64();
      c.app_memory_mb = reader.i64();
      c.units = static_cast<int>(reader.i64());
    }
    if (reader.boolean()) {
      // Placeholder listen endpoint — the switch's own section overwrites it
      // (the ctor just requires a positive port).
      r.service_switch = std::make_unique<ServiceSwitch>(
          r.service_name, net::Ipv4Address{0}, 1);
      r.service_switch->load_state(reader);
    }
    r.lifecycle = ServiceLifecycle{r.service_name};
    r.lifecycle.restore_state(static_cast<ServiceState>(reader.u8()));
    r.next_ordinal = static_cast<int>(reader.i64());
    reader.end_section();
  }

  std::deque<ServiceRecord> slots_;  // stable addresses across growth
  std::vector<std::uint32_t> free_slots_;
  std::map<std::string, std::uint32_t, std::less<>> by_name_;
  InternTable ids_;
  std::vector<std::uint32_t> slot_of_id_;  // ServiceId.index() -> slot
};

}  // namespace soda::core
