// Wide-area HUP federation (paper §3.5: "One way to construct a wide-area
// HUP is to federate multiple local HUPs, each having its own SODA Agent
// and Master"). A Federation owns one simulated world and a set of member
// sites — each a full local HUP with autonomous Agent/Master — joined by
// WAN links in a full mesh. The FederationBroker fronts the ASP-facing API:
// it forwards a creation request to member sites in order of spare
// capacity until one admits it, and remembers which site hosts which
// service for teardown/resizing/monitoring. Image repositories are
// announced federation-wide, so a daemon at a remote site downloads the
// image across the WAN — visibly slower priming, as geography demands.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hup.hpp"

namespace soda::core {

/// WAN parameters between member sites (defaults: a T3-class 45 Mbps pipe
/// with 20 ms one-way latency).
struct WanConfig {
  double mbps = 45;
  sim::SimTime latency = sim::SimTime::milliseconds(20);
};

class Federation {
 public:
  explicit Federation(WanConfig wan = {});
  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Adds a member site (its own Agent + Master); it is WAN-meshed with
  /// every existing site. Site names must be unique.
  Hup& add_site(const std::string& name, MasterConfig master_config = {});

  /// Registers an ASP at every member site (enrollment is federation-wide).
  void register_asp(const std::string& asp_id, const std::string& api_key);

  /// Publishes `repository` federation-wide: every site's Master can
  /// resolve it (remote sites download across the WAN).
  void announce_repository(const image::ImageRepository* repository);

  using CreateCallback = SodaMaster::CreateCallback;
  /// Brokered SODA_service_creation: sites are tried in descending order of
  /// spare CPU; the first to admit hosts the service. Fails with the last
  /// site's error when none can.
  void create_service(const ServiceCreationRequest& request, CreateCallback done);

  /// Brokered teardown: routed to the owning site.
  Result<void, ApiError> teardown_service(const ServiceTeardownRequest& request);

  using ResizeCallback = SodaMaster::ResizeCallback;
  /// Brokered resizing: routed to the owning site (resize never migrates a
  /// service across sites).
  void resize_service(const ServiceResizingRequest& request, ResizeCallback done);

  /// Brokered monitoring.
  Result<ServiceStatusReport, ApiError> service_status(
      const Credentials& credentials, const std::string& service_name);

  /// The member site hosting `service_name`, or nullptr.
  [[nodiscard]] Hup* site_of(const std::string& service_name);
  [[nodiscard]] Hup* find_site(const std::string& name);
  [[nodiscard]] std::size_t site_count() const noexcept { return sites_.size(); }

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] net::FlowNetwork& network() noexcept { return network_; }

 private:
  struct Site {
    std::string name;
    std::unique_ptr<Hup> hup;
  };

  /// Sites ordered by descending spare CPU (the broker's preference).
  std::vector<Site*> sites_by_capacity();
  void try_create(const ServiceCreationRequest& request,
                  std::shared_ptr<std::vector<Site*>> order, std::size_t index,
                  CreateCallback done);

  sim::Engine engine_;
  net::FlowNetwork network_{engine_};
  WanConfig wan_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::map<std::string, Site*> owner_site_;  // service -> site
  std::vector<std::pair<std::string, std::string>> asps_;  // id, key
  std::vector<const image::ImageRepository*> repositories_;
};

}  // namespace soda::core
