// Off-line QoS/resource profiling. The paper assumes the ASP arrives with
// <n, M> already derived "as the result of off-line QoS/resource profiling"
// and cites it as out of scope (§3). This module closes that gap: given a
// workload description (peak request rate, response size, dataset and
// memory footprints), it derives the smallest <n, M> whose guaranteed
// resources carry the workload at the chosen utilization — using the same
// traced-syscall cost model the virtual service nodes will actually run
// under.
#pragma once

#include <cstdint>
#include <string>

#include "host/resources.hpp"
#include "util/result.hpp"

namespace soda::core {

/// What the ASP knows about its service's demand.
struct WorkloadProfile {
  /// Peak client request rate to provision for (requests/second).
  double peak_request_rate = 100;
  /// Mean response payload per request.
  std::int64_t response_bytes = 16 * 1024;
  /// Keep reserved resources at most this busy at peak (headroom for
  /// burstiness); in (0, 1].
  double target_utilization = 0.6;
  /// On-disk dataset the image ships.
  std::int64_t dataset_mb = 512;
  /// Resident memory per node once serving.
  std::int64_t resident_memory_mb = 64;
};

/// Which resource dimension forced the final n.
enum class BindingResource { kCpu, kMemory, kDisk, kBandwidth };

std::string_view binding_resource_name(BindingResource binding) noexcept;

/// The profiler's output: the derived requirement plus the raw per-resource
/// demands it was computed from.
struct ProfileReport {
  host::ResourceRequirement requirement;
  double cpu_mhz_needed = 0;        // aggregate, at target utilization
  double bandwidth_mbps_needed = 0; // aggregate, at target utilization
  BindingResource binding = BindingResource::kCpu;
};

/// Derives <n, M> for `workload` against machine configuration `m`
/// (defaults to the paper's Table 1 example). CPU demand is priced with the
/// traced (in-VM) syscall path — the service will run inside a UML, so
/// native-cost profiling would under-provision. Fails on non-positive rates
/// or a unit M too small to ever carry the per-node footprint.
Result<ProfileReport> profile_requirement(
    const WorkloadProfile& workload,
    const host::MachineConfig& m = host::MachineConfig::table1_example());

}  // namespace soda::core
