#include "core/faults.hpp"

#include <algorithm>
#include <utility>

#include "core/hup.hpp"
#include "util/contract.hpp"
#include "util/log.hpp"
#include "vm/vsnode.hpp"

namespace soda::core {

std::string_view fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kHostCrash: return "host-crash";
    case FaultKind::kHostRecover: return "host-recover";
    case FaultKind::kGuestCrash: return "guest-crash";
    case FaultKind::kSlowHost: return "slow-host";
    case FaultKind::kLossyLink: return "lossy-link";
  }
  return "unknown";
}

FaultPlan& FaultPlan::crash_host(sim::SimTime at, std::string host) {
  return add(FaultEvent{at, FaultKind::kHostCrash, std::move(host), 1.0});
}

FaultPlan& FaultPlan::recover_host(sim::SimTime at, std::string host) {
  return add(FaultEvent{at, FaultKind::kHostRecover, std::move(host), 1.0});
}

FaultPlan& FaultPlan::crash_guest(sim::SimTime at, std::string node_name) {
  return add(FaultEvent{at, FaultKind::kGuestCrash, std::move(node_name), 1.0});
}

FaultPlan& FaultPlan::slow_host(sim::SimTime at, std::string host,
                                double factor) {
  return add(FaultEvent{at, FaultKind::kSlowHost, std::move(host), factor});
}

FaultPlan& FaultPlan::restore_host_speed(sim::SimTime at, std::string host) {
  return add(FaultEvent{at, FaultKind::kSlowHost, std::move(host), 1.0});
}

FaultPlan& FaultPlan::lossy_link(sim::SimTime at, std::string host,
                                 double factor) {
  return add(FaultEvent{at, FaultKind::kLossyLink, std::move(host), factor});
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  SODA_EXPECTS(!event.target.empty());
  // Severity is validated at arm() time so a bad factor reports a clean
  // error naming the event instead of aborting while the plan is built.
  events_.push_back(std::move(event));
  return *this;
}

std::vector<FaultEvent> FaultPlan::build() const {
  std::vector<FaultEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return sorted;
}

namespace {

std::string describe(const FaultEvent& event) {
  return std::string(fault_kind_name(event.kind)) + " '" + event.target +
         "' at t=" + std::to_string(event.at.to_seconds()) + "s";
}

}  // namespace

Status FaultInjector::arm(const FaultPlan& plan) {
  // Validate the whole plan before scheduling anything, so a rejected plan
  // leaves the engine untouched.
  for (const FaultEvent& event : plan.build()) {
    switch (event.kind) {
      case FaultKind::kHostCrash:
      case FaultKind::kHostRecover:
      case FaultKind::kSlowHost:
      case FaultKind::kLossyLink:
        if (!hup_.find_daemon(event.target)) {
          return Error{"fault plan names unknown host: " + describe(event)};
        }
        break;
      case FaultKind::kGuestCrash: {
        bool found = false;
        for (SodaDaemon* daemon : hup_.master().daemons()) {
          if (daemon->find_node(event.target)) {
            found = true;
            break;
          }
        }
        if (!found) {
          return Error{"fault plan names unknown node: " + describe(event)};
        }
        break;
      }
    }
    if ((event.kind == FaultKind::kSlowHost ||
         event.kind == FaultKind::kLossyLink) &&
        !(event.severity > 0)) {
      return Error{"fault plan has non-positive factor " +
                   std::to_string(event.severity) + ": " + describe(event)};
    }
  }
  sim::Engine& engine = hup_.engine();
  for (const FaultEvent& event : plan.build()) {
    if (event.at < engine.now()) continue;
    engine.schedule_at(event.at, [this, event] { inject(event); });
  }
  return {};
}

void FaultInjector::inject(const FaultEvent& event) {
  ++injected_;
  util::global_logger().warn(
      "faults", std::string(fault_kind_name(event.kind)) + " -> " + event.target);
  switch (event.kind) {
    case FaultKind::kHostCrash:
      hup_.crash_host(event.target);
      return;
    case FaultKind::kHostRecover:
      hup_.recover_host(event.target);
      return;
    case FaultKind::kGuestCrash:
      for (SodaDaemon* daemon : hup_.master().daemons()) {
        if (vm::VirtualServiceNode* node = daemon->find_node(event.target)) {
          if (node->running()) node->uml().crash();
          return;
        }
      }
      return;
    case FaultKind::kSlowHost:
    case FaultKind::kLossyLink:
      // Both degrade the host's uplink; a lossy link's goodput collapse is
      // modeled as the effective-rate factor the caller picked.
      hup_.scale_host_uplink(event.target, event.severity);
      return;
  }
}

}  // namespace soda::core
