#include "core/ids.hpp"

// InternTable, DenseId, and IdBitSet are header-only for inlining on the
// hot lookup paths; this translation unit exists so the ids layer owns a
// place for future non-inline helpers and so the library exports its debug
// symbols from one object.

namespace soda::core {

/// Human-readable "name#id" tag for logs and test failure messages.
std::string intern_debug_tag(const InternTable& table, std::uint32_t id) {
  if (id == kInvalidInternId) return "<invalid>";
  if (id >= table.size()) return "<out-of-range#" + std::to_string(id) + ">";
  return table.name(id) + "#" + std::to_string(id);
}

}  // namespace soda::core
