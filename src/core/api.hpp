// The SODA API (paper §4.1): SODA_service_creation, SODA_service_teardown,
// SODA_service_resizing. ASPs call the SODA Agent with these request types;
// replies describe the virtual service nodes created for the service.
#pragma once

#include <string>
#include <vector>

#include "host/resources.hpp"
#include "image/repository.hpp"
#include "net/address.hpp"

namespace soda::core {

/// Why an API call failed.
enum class ApiErrorCode {
  kAuthenticationFailed,
  kInvalidRequest,
  kInsufficientResources,
  kImageNotFound,
  kNoSuchService,
  kServiceExists,
  kPrimingFailed,
  kInternal,
};

std::string_view api_error_name(ApiErrorCode code) noexcept;

struct ApiError {
  ApiErrorCode code = ApiErrorCode::kInternal;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(api_error_name(code)) + ": " + message;
  }
};

/// ASP credentials presented on every call.
struct Credentials {
  std::string asp_id;   // e.g. "bioinfo-institute"
  std::string api_key;  // shared secret registered with the Agent
};

/// SODA_service_creation(name, image location, <n, M>).
struct ServiceCreationRequest {
  Credentials credentials;
  std::string service_name;
  image::ImageLocation image_location;
  host::ResourceRequirement requirement;
};

/// One virtual service node as reported back to the ASP.
struct NodeDescriptor {
  std::string node_name;   // HUP-wide unique, e.g. "web-content/0"
  std::string host_name;   // which HUP host carries the slice
  net::Ipv4Address address;
  int port = 0;
  int capacity_units = 1;  // multiples of M (Table 3's Capacity column)
  std::string component;   // partitioned services only; empty = replicated
};

/// Reply to a successful creation: the nodes and where the switch listens.
struct ServiceCreationReply {
  std::string service_name;
  std::vector<NodeDescriptor> nodes;
  net::Ipv4Address switch_address;
  int switch_port = 0;
};

/// SODA_service_teardown(name).
struct ServiceTeardownRequest {
  Credentials credentials;
  std::string service_name;
};

/// SODA_service_resizing(name, <n_new, M>). M must equal the creation-time
/// configuration (the paper resizes node count/capacity, not the unit).
struct ServiceResizingRequest {
  Credentials credentials;
  std::string service_name;
  int n_new = 1;
};

struct ServiceResizingReply {
  std::string service_name;
  std::vector<NodeDescriptor> nodes;  // post-resize set
};

}  // namespace soda::core
