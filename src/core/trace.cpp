#include "core/trace.hpp"

#include <cstdio>

#include "util/contract.hpp"

namespace soda::core {

std::string_view trace_kind_name(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kRequestReceived: return "request-received";
    case TraceKind::kAdmitted:        return "admitted";
    case TraceKind::kRejected:        return "rejected";
    case TraceKind::kPrimingStarted:  return "priming-started";
    case TraceKind::kImageDownloaded: return "image-downloaded";
    case TraceKind::kNodeBooted:      return "node-booted";
    case TraceKind::kSwitchCreated:   return "switch-created";
    case TraceKind::kServiceRunning:  return "service-running";
    case TraceKind::kResized:         return "resized";
    case TraceKind::kTornDown:        return "torn-down";
    case TraceKind::kHealthChanged:   return "health-changed";
    case TraceKind::kPrimingFailed:   return "priming-failed";
    case TraceKind::kHostDown:        return "host-down";
    case TraceKind::kHostUp:          return "host-up";
    case TraceKind::kNodeLost:        return "node-lost";
    case TraceKind::kDegraded:        return "degraded";
    case TraceKind::kRecovered:       return "recovered";
  }
  return "unknown";
}

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity) {
  SODA_EXPECTS(capacity >= 1);
}

void TraceLog::record(sim::SimTime at, TraceKind kind, std::string actor,
                      std::string subject, std::string detail) {
  if (events_.size() == capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(TraceEvent{at, kind, std::move(actor), std::move(subject),
                               std::move(detail)});
}

void TraceLog::clear() {
  events_.clear();
  dropped_ = 0;
}

std::vector<TraceEvent> TraceLog::for_subject(const std::string& subject) const {
  std::vector<TraceEvent> out;
  for (const auto& event : events_) {
    // A node subject like "web/0" also matches its service "web".
    if (event.subject == subject ||
        (event.subject.size() > subject.size() &&
         event.subject.compare(0, subject.size(), subject) == 0 &&
         event.subject[subject.size()] == '/')) {
      out.push_back(event);
    }
  }
  return out;
}

std::vector<TraceKind> TraceLog::kinds_for(const std::string& subject) const {
  std::vector<TraceKind> out;
  for (const auto& event : for_subject(subject)) out.push_back(event.kind);
  return out;
}

std::string TraceLog::render() const {
  std::string out;
  char buf[64];
  for (const auto& event : events_) {
    std::snprintf(buf, sizeof buf, "t=%.3fs", event.at.to_seconds());
    out += buf;
    out += " [" + event.actor + "] ";
    out += trace_kind_name(event.kind);
    out += " " + event.subject;
    if (!event.detail.empty()) out += ": " + event.detail;
    out += '\n';
  }
  return out;
}

void TraceLog::save_state(snapshot::Writer& writer) const {
  writer.begin_section("trace_log");
  writer.u64(capacity_);
  writer.u64(events_.size());
  for (const TraceEvent& event : events_) {
    writer.time(event.at);
    writer.u8(static_cast<std::uint8_t>(event.kind));
    writer.str(event.actor);
    writer.str(event.subject);
    writer.str(event.detail);
  }
  writer.u64(dropped_);
  writer.end_section();
}

void TraceLog::load_state(snapshot::Reader& reader) {
  reader.begin_section("trace_log");
  const std::uint64_t capacity = reader.u64();
  if (reader.ok() && capacity != capacity_) {
    reader.fail("trace log capacity mismatch");
    return;
  }
  events_.clear();
  const std::uint64_t count = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < count; ++i) {
    TraceEvent event;
    event.at = reader.time();
    event.kind = static_cast<TraceKind>(reader.u8());
    event.actor = reader.str();
    event.subject = reader.str();
    event.detail = reader.str();
    events_.push_back(std::move(event));
  }
  dropped_ = reader.u64();
  reader.end_section();
}

}  // namespace soda::core
