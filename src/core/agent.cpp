#include "core/agent.hpp"

#include <algorithm>

#include <cstdio>

#include "util/contract.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace soda::core {

void BillingLedger::open(const std::string& asp_id,
                         const std::string& service_name, int machine_instances,
                         sim::SimTime now) {
  SODA_EXPECTS(machine_instances >= 1);
  entries_.push_back(BillingEntry{asp_id, service_name, machine_instances, now});
}

void BillingLedger::close(const std::string& service_name, sim::SimTime now) {
  for (auto& entry : entries_) {
    if (entry.service_name == service_name && entry.open()) {
      entry.ended_at = now;
    }
  }
}

double BillingLedger::instance_hours(const std::string& asp_id,
                                     sim::SimTime now) const {
  double hours = 0;
  for (const auto& entry : entries_) {
    if (entry.asp_id != asp_id) continue;
    const sim::SimTime end = entry.open() ? now : entry.ended_at;
    if (end <= entry.started_at) continue;
    hours += (end - entry.started_at).to_seconds() / 3600.0 *
             static_cast<double>(entry.machine_instances);
  }
  return hours;
}

double BillingLedger::amount_due(const std::string& asp_id, sim::SimTime now,
                                 double rate_per_instance_hour) const {
  SODA_EXPECTS(rate_per_instance_hour >= 0);
  return instance_hours(asp_id, now) * rate_per_instance_hour;
}

std::string BillingLedger::render_invoice(const std::string& asp_id,
                                          sim::SimTime now,
                                          double rate_per_instance_hour) const {
  SODA_EXPECTS(rate_per_instance_hour >= 0);
  util::AsciiTable table(
      {"Service", "Instances", "From (s)", "To (s)", "Inst-hours", "Amount"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  double total = 0;
  char from[32], to[32], hours_cell[32], amount_cell[32], instances[16];
  for (const auto& entry : entries_) {
    if (entry.asp_id != asp_id) continue;
    const sim::SimTime end = entry.open() ? now : entry.ended_at;
    const double hours =
        end <= entry.started_at
            ? 0.0
            : (end - entry.started_at).to_seconds() / 3600.0 *
                  static_cast<double>(entry.machine_instances);
    const double amount = hours * rate_per_instance_hour;
    total += amount;
    std::snprintf(instances, sizeof instances, "%d", entry.machine_instances);
    std::snprintf(from, sizeof from, "%.2f", entry.started_at.to_seconds());
    std::snprintf(to, sizeof to, entry.open() ? "(open)" : "%.2f",
                  end.to_seconds());
    std::snprintf(hours_cell, sizeof hours_cell, "%.6f", hours);
    std::snprintf(amount_cell, sizeof amount_cell, "%.4f", amount);
    table.add_row({entry.service_name, instances, from, to, hours_cell,
                   amount_cell});
  }
  char total_line[96];
  std::snprintf(total_line, sizeof total_line,
                "total due for %s: %.4f (at %.2f per instance-hour)\n",
                asp_id.c_str(), total, rate_per_instance_hour);
  return table.render() + total_line;
}

SodaAgent::SodaAgent(sim::Engine& engine, SodaMaster& master)
    : engine_(engine), master_(master) {}

void SodaAgent::register_asp(const std::string& asp_id,
                             const std::string& api_key) {
  SODA_EXPECTS(!asp_id.empty() && !api_key.empty());
  api_keys_[asp_id] = api_key;
}

Result<void, ApiError> SodaAgent::authenticate(
    const Credentials& credentials) const {
  auto it = api_keys_.find(credentials.asp_id);
  if (it == api_keys_.end() || it->second != credentials.api_key) {
    return ApiError{ApiErrorCode::kAuthenticationFailed,
                    "invalid ASP credentials"};
  }
  return {};
}

Result<void, ApiError> SodaAgent::check_owner(
    const Credentials& credentials, const std::string& service_name) const {
  auto it = owners_.find(service_name);
  if (it == owners_.end()) {
    return ApiError{ApiErrorCode::kNoSuchService,
                    "no such service: " + service_name};
  }
  if (it->second != credentials.asp_id) {
    // Administration isolation at the API: an ASP has administrator
    // privilege only within its own services (§2.1).
    return ApiError{ApiErrorCode::kAuthenticationFailed,
                    "service " + service_name + " is not owned by " +
                        credentials.asp_id};
  }
  return {};
}

void SodaAgent::service_creation(const ServiceCreationRequest& request,
                                 CreateCallback done) {
  SODA_EXPECTS(done != nullptr);
  if (auto auth = authenticate(request.credentials); !auth.ok()) {
    done(auth.error(), engine_.now());
    return;
  }
  if (request.requirement.n < 1) {
    done(ApiError{ApiErrorCode::kInvalidRequest, "requirement n must be >= 1"},
         engine_.now());
    return;
  }
  if (trace_) {
    trace_->record(engine_.now(), TraceKind::kRequestReceived, "agent",
                   request.service_name,
                   "creation " + request.requirement.to_string() + " by " +
                       request.credentials.asp_id);
  }
  util::global_logger().info(
      "agent", "service_creation(" + request.service_name + ", " +
                   request.image_location.url() + ", " +
                   request.requirement.to_string() + ") from " +
                   request.credentials.asp_id);
  master_.create_service(
      request, [this, asp = request.credentials.asp_id,
                n = request.requirement.n, done = std::move(done)](
                   ApiResult<ServiceCreationReply> reply, sim::SimTime now) {
        if (reply.ok()) {
          owners_[reply.value().service_name] = asp;
          billing_.open(asp, reply.value().service_name, n, now);
        }
        done(std::move(reply), now);
      });
}

Result<void, ApiError> SodaAgent::service_teardown(
    const ServiceTeardownRequest& request) {
  if (auto auth = authenticate(request.credentials); !auth.ok()) return auth;
  if (auto owner = check_owner(request.credentials, request.service_name);
      !owner.ok()) {
    return owner;
  }
  if (auto torn = master_.teardown_service(request.service_name); !torn.ok()) {
    return torn;
  }
  billing_.close(request.service_name, engine_.now());
  owners_.erase(request.service_name);
  return {};
}

void SodaAgent::service_resizing(const ServiceResizingRequest& request,
                                 ResizeCallback done) {
  SODA_EXPECTS(done != nullptr);
  if (auto auth = authenticate(request.credentials); !auth.ok()) {
    done(auth.error(), engine_.now());
    return;
  }
  if (auto owner = check_owner(request.credentials, request.service_name);
      !owner.ok()) {
    done(owner.error(), engine_.now());
    return;
  }
  master_.resize_service(
      request.service_name, request.n_new,
      [this, asp = request.credentials.asp_id, name = request.service_name,
       n_new = request.n_new, done = std::move(done)](
          ApiResult<ServiceResizingReply> reply, sim::SimTime now) {
        if (reply.ok()) {
          // Split the accrual window: the old size ends now, the new begins.
          billing_.close(name, now);
          billing_.open(asp, name, n_new, now);
        }
        done(std::move(reply), now);
      });
}

Result<ServiceStatusReport, ApiError> SodaAgent::service_status(
    const Credentials& credentials, const std::string& service_name) {
  if (auto auth = authenticate(credentials); !auth.ok()) return auth.error();
  if (auto owner = check_owner(credentials, service_name); !owner.ok()) {
    return owner.error();
  }
  auto report = collect_service_status(master_, service_name);
  if (!report.ok()) {
    return ApiError{ApiErrorCode::kNoSuchService, report.error().message};
  }
  return std::move(report).value();
}

const std::string* SodaAgent::owner_of(const std::string& service_name) const {
  auto it = owners_.find(service_name);
  return it == owners_.end() ? nullptr : &it->second;
}

}  // namespace soda::core
