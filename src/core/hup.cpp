#include "core/hup.hpp"

#include "util/contract.hpp"

namespace soda::core {

Hup::Hup(MasterConfig master_config, LanConfig lan)
    : owned_engine_(std::make_unique<sim::Engine>()),
      owned_network_(std::make_unique<net::FlowNetwork>(*owned_engine_)),
      engine_(owned_engine_.get()),
      network_(owned_network_.get()),
      lan_(lan) {
  lan_switch_ = network_->add_node("lan-switch");
  trace_ = std::make_unique<TraceLog>();
  master_ = std::make_unique<SodaMaster>(*engine_, master_config);
  agent_ = std::make_unique<SodaAgent>(*engine_, *master_);
  master_->set_trace(trace_.get());
  agent_->set_trace(trace_.get());
}

Hup::Hup(sim::Engine& engine, net::FlowNetwork& network, std::string site_name,
         MasterConfig master_config, LanConfig lan)
    : engine_(&engine), network_(&network), lan_(lan) {
  lan_switch_ = network_->add_node(site_name + "/lan-switch");
  trace_ = std::make_unique<TraceLog>();
  master_ = std::make_unique<SodaMaster>(*engine_, master_config);
  agent_ = std::make_unique<SodaAgent>(*engine_, *master_);
  master_->set_trace(trace_.get());
  agent_->set_trace(trace_.get());
}

host::HupHost& Hup::add_host(host::HostSpec spec, net::Ipv4Address pool_start,
                             std::size_t pool_size) {
  SODA_EXPECTS(hosts_.count(spec.name) == 0);
  const net::NodeId lan_node = network_->add_node(spec.name);
  const auto uplink =
      network_->add_duplex_link(lan_node, lan_switch_, spec.nic_mbps, lan_.latency);

  HostBundle bundle;
  bundle.uplink = uplink;
  bundle.uplink_mbps = spec.nic_mbps;
  bundle.host = std::make_unique<host::HupHost>(
      spec, lan_node, net::IpPool(pool_start, pool_size));
  bundle.shaper = std::make_unique<net::TrafficShaper>(*network_);
  bundle.daemon = std::make_unique<SodaDaemon>(*engine_, *network_, *bundle.host,
                                               *bundle.shaper);
  bundle.daemon->set_trace(trace_.get());
  must(master_->register_daemon(bundle.daemon.get()));
  auto [it, inserted] = hosts_.emplace(spec.name, std::move(bundle));
  SODA_ENSURES(inserted);
  return *it->second.host;
}

image::ImageRepository& Hup::add_repository(const std::string& name) {
  const net::NodeId node = network_->add_node(name);
  network_->add_duplex_link(node, lan_switch_, lan_.mbps, lan_.latency);
  repositories_.push_back(std::make_unique<image::ImageRepository>(name, node));
  master_->register_repository(repositories_.back().get());
  return *repositories_.back();
}

net::NodeId Hup::add_client(const std::string& name) {
  const net::NodeId node = network_->add_node(name);
  network_->add_duplex_link(node, lan_switch_, lan_.mbps, lan_.latency);
  return node;
}

HealthMonitor& Hup::health_monitor() {
  if (!monitor_) monitor_ = std::make_unique<HealthMonitor>(*engine_, *master_);
  return *monitor_;
}

host::HupHost* Hup::find_host(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.host.get();
}

SodaDaemon* Hup::find_daemon(const std::string& host_name) {
  auto it = hosts_.find(host_name);
  return it == hosts_.end() ? nullptr : it->second.daemon.get();
}

net::TrafficShaper* Hup::find_shaper(const std::string& host_name) {
  auto it = hosts_.find(host_name);
  return it == hosts_.end() ? nullptr : it->second.shaper.get();
}

void Hup::enable_failure_detection(FailureDetectorConfig config) {
  master_->start_failure_detector(config);
  for (auto& [name, bundle] : hosts_) {
    bundle.daemon->start_heartbeat(
        config.heartbeat_interval,
        [this](SodaDaemon& daemon, sim::SimTime now) {
          master_->on_heartbeat(daemon, now);
        });
  }
}

void Hup::crash_host(const std::string& host_name) {
  if (SodaDaemon* daemon = find_daemon(host_name)) daemon->crash_host();
}

void Hup::recover_host(const std::string& host_name) {
  if (SodaDaemon* daemon = find_daemon(host_name)) daemon->recover();
}

void Hup::scale_host_uplink(const std::string& host_name, double factor) {
  SODA_EXPECTS(factor > 0);
  auto it = hosts_.find(host_name);
  if (it == hosts_.end()) return;
  const HostBundle& bundle = it->second;
  network_->set_link_capacity(bundle.uplink.first, bundle.uplink_mbps * factor);
  network_->set_link_capacity(bundle.uplink.second, bundle.uplink_mbps * factor);
}

Hup::PaperTestbed Hup::paper_testbed(MasterConfig master_config) {
  PaperTestbed testbed;
  testbed.hup = std::make_unique<Hup>(master_config);
  testbed.hup->add_host(host::HostSpec::seattle(),
                        *net::Ipv4Address::parse("128.10.9.120"), 16);
  testbed.hup->add_host(host::HostSpec::tacoma(),
                        *net::Ipv4Address::parse("128.10.9.140"), 16);
  testbed.repo = &testbed.hup->add_repository("asp-repo");
  testbed.client = testbed.hup->add_client("client-0");
  return testbed;
}

}  // namespace soda::core
