#include "core/hup.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace soda::core {

Hup::Hup(MasterConfig master_config, LanConfig lan)
    : owned_engine_(std::make_unique<sim::Engine>()),
      owned_network_(std::make_unique<net::FlowNetwork>(*owned_engine_)),
      engine_(owned_engine_.get()),
      network_(owned_network_.get()),
      lan_(lan) {
  lan_switch_ = network_->add_node("lan-switch");
  trace_ = std::make_unique<TraceLog>();
  master_ = std::make_unique<SodaMaster>(*engine_, master_config);
  agent_ = std::make_unique<SodaAgent>(*engine_, *master_);
  master_->set_trace(trace_.get());
  agent_->set_trace(trace_.get());
}

Hup::Hup(sim::Engine& engine, net::FlowNetwork& network, std::string site_name,
         MasterConfig master_config, LanConfig lan)
    : engine_(&engine), network_(&network), lan_(lan) {
  lan_switch_ = network_->add_node(site_name + "/lan-switch");
  trace_ = std::make_unique<TraceLog>();
  master_ = std::make_unique<SodaMaster>(*engine_, master_config);
  agent_ = std::make_unique<SodaAgent>(*engine_, *master_);
  master_->set_trace(trace_.get());
  agent_->set_trace(trace_.get());
}

host::HupHost& Hup::add_host(host::HostSpec spec, net::Ipv4Address pool_start,
                             std::size_t pool_size) {
  SODA_EXPECTS(hosts_.count(spec.name) == 0);
  const net::NodeId lan_node = network_->add_node(spec.name);
  const auto uplink =
      network_->add_duplex_link(lan_node, lan_switch_, spec.nic_mbps, lan_.latency);

  HostBundle bundle;
  bundle.uplink = uplink;
  bundle.uplink_mbps = spec.nic_mbps;
  bundle.host = std::make_unique<host::HupHost>(
      spec, lan_node, net::IpPool(pool_start, pool_size));
  bundle.shaper = std::make_unique<net::TrafficShaper>(*network_);
  bundle.daemon = std::make_unique<SodaDaemon>(*engine_, *network_, *bundle.host,
                                               *bundle.shaper);
  bundle.daemon->set_trace(trace_.get());
  must(master_->register_daemon(bundle.daemon.get()));
  auto [it, inserted] = hosts_.emplace(spec.name, std::move(bundle));
  SODA_ENSURES(inserted);
  return *it->second.host;
}

image::ImageRepository& Hup::add_repository(const std::string& name) {
  const net::NodeId node = network_->add_node(name);
  network_->add_duplex_link(node, lan_switch_, lan_.mbps, lan_.latency);
  repositories_.push_back(std::make_unique<image::ImageRepository>(name, node));
  master_->register_repository(repositories_.back().get());
  return *repositories_.back();
}

net::NodeId Hup::add_client(const std::string& name) {
  const net::NodeId node = network_->add_node(name);
  network_->add_duplex_link(node, lan_switch_, lan_.mbps, lan_.latency);
  return node;
}

HealthMonitor& Hup::health_monitor() {
  if (!monitor_) monitor_ = std::make_unique<HealthMonitor>(*engine_, *master_);
  return *monitor_;
}

host::HupHost* Hup::find_host(const std::string& name) {
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.host.get();
}

SodaDaemon* Hup::find_daemon(const std::string& host_name) {
  auto it = hosts_.find(host_name);
  return it == hosts_.end() ? nullptr : it->second.daemon.get();
}

net::TrafficShaper* Hup::find_shaper(const std::string& host_name) {
  auto it = hosts_.find(host_name);
  return it == hosts_.end() ? nullptr : it->second.shaper.get();
}

void Hup::enable_failure_detection(FailureDetectorConfig config) {
  master_->start_failure_detector(config);
  for (auto& [name, bundle] : hosts_) {
    bundle.daemon->start_heartbeat(
        config.heartbeat_interval,
        [this](SodaDaemon& daemon, sim::SimTime now) {
          master_->on_heartbeat(daemon, now);
        });
  }
}

void Hup::crash_host(const std::string& host_name) {
  if (SodaDaemon* daemon = find_daemon(host_name)) daemon->crash_host();
}

void Hup::recover_host(const std::string& host_name) {
  if (SodaDaemon* daemon = find_daemon(host_name)) daemon->recover();
}

void Hup::scale_host_uplink(const std::string& host_name, double factor) {
  SODA_EXPECTS(factor > 0);
  auto it = hosts_.find(host_name);
  if (it == hosts_.end()) return;
  const HostBundle& bundle = it->second;
  network_->set_link_capacity(bundle.uplink.first, bundle.uplink_mbps * factor);
  network_->set_link_capacity(bundle.uplink.second, bundle.uplink_mbps * factor);
}

namespace {

/// One re-armable pending event, as carried in the checkpoint's timers
/// section. Kind tells the restorer which owner to re-arm through.
struct TimerRecord {
  enum Kind : std::uint8_t { kHeartbeat = 0, kDetector = 1, kMonitor = 2 };
  std::uint8_t kind = kHeartbeat;
  std::string owner;  // daemon host name for heartbeats, empty otherwise
  sim::SimTime when;
  /// Live heap sequence at save time. Records are WRITTEN sorted by it and
  /// the raw value is dropped — absolute seqs differ between an original
  /// and a restored engine, so embedding them would break the bit-identical
  /// digest gate. File order alone carries the re-arm order.
  std::uint64_t seq = 0;
};

}  // namespace

Status Hup::save_state(snapshot::Writer& writer) const {
  // Collect the re-armable timers first: the quiesce gate is that they
  // account for every pending engine event — anything else (an in-flight
  // download, boot, or request) cannot be re-created from a checkpoint.
  std::vector<TimerRecord> timers;
  for (const SodaDaemon* daemon : master_->daemons()) {
    if (!daemon->heartbeating()) continue;
    timers.push_back({TimerRecord::kHeartbeat, daemon->host_name(),
                      daemon->heartbeat_next(),
                      engine_->event_seq(daemon->heartbeat_event())});
  }
  const RecoveryManager& recovery = master_->recovery();
  if (recovery.running()) {
    timers.push_back({TimerRecord::kDetector, "", recovery.tick_next(),
                      engine_->event_seq(recovery.tick_event())});
  }
  if (monitor_ && monitor_->running()) {
    timers.push_back({TimerRecord::kMonitor, "", monitor_->tick_next(),
                      engine_->event_seq(monitor_->tick_event())});
  }
  if (timers.size() != engine_->pending()) {
    return Error{"world not quiesced: " + std::to_string(engine_->pending()) +
                 " pending events, " + std::to_string(timers.size()) +
                 " re-armable timers"};
  }
  for (const TimerRecord& timer : timers) {
    if (timer.seq == 0) {
      return Error{"stale timer event id for '" + timer.owner +
                   "' (kind " + std::to_string(timer.kind) + ")"};
    }
  }
  // Same-time events must re-fire in their saved heap order: emit the
  // records sorted by live seq, so file order IS the re-arm order.
  std::sort(timers.begin(), timers.end(),
            [](const TimerRecord& a, const TimerRecord& b) {
              return a.seq < b.seq;
            });

  writer.begin_section("hup");
  writer.f64(lan_.mbps);
  writer.time(lan_.latency);
  writer.time(engine_->now());
  network_->save_state(writer);
  writer.u64(lan_switch_.value);
  trace_->save_state(writer);
  // Hosts in daemon-registration order, so restore re-attaches them into
  // the same dense HostId space.
  writer.u64(master_->daemons().size());
  for (const SodaDaemon* daemon : master_->daemons()) {
    const auto it = hosts_.find(daemon->host_name());
    SODA_EXPECTS(it != hosts_.end());
    const HostBundle& bundle = it->second;
    const host::HostSpec& spec = bundle.host->spec();
    writer.str(spec.name);
    writer.f64(spec.cpu_ghz);
    writer.i64(spec.ram_mb);
    writer.i64(spec.disk_gb);
    writer.f64(spec.nic_mbps);
    writer.f64(spec.disk_mb_s);
    writer.f64(spec.ramdisk_mb_s);
    writer.u64(bundle.host->lan_node().value);
    writer.u32(bundle.host->ip_pool().first().value());
    writer.u64(bundle.host->ip_pool().capacity());
    writer.u64(bundle.uplink.first.value);
    writer.u64(bundle.uplink.second.value);
    writer.f64(bundle.uplink_mbps);
    bundle.host->save_state(writer);
    bundle.shaper->save_state(writer);
    bundle.daemon->save_state(writer);
  }
  writer.u64(repositories_.size());
  for (const auto& repository : repositories_) {
    writer.str(repository->name());
    writer.u64(repository->node().value);
    repository->save_state(writer);
  }
  master_->save_state(writer);
  agent_->save_state(writer);
  writer.boolean(monitor_ != nullptr);
  if (monitor_) monitor_->save_state(writer);
  writer.begin_section("timers");
  writer.u64(timers.size());
  for (const TimerRecord& timer : timers) {
    writer.u8(timer.kind);
    writer.str(timer.owner);
    writer.time(timer.when);
  }
  writer.end_section();
  writer.end_section();
  return {};
}

void Hup::load_state(snapshot::Reader& reader) {
  reader.begin_section("hup");
  const double lan_mbps = reader.f64();
  const sim::SimTime lan_latency = reader.time();
  if (reader.ok() && (lan_mbps != lan_.mbps || lan_latency != lan_.latency)) {
    reader.fail("lan config mismatch");
    return;
  }
  const sim::SimTime saved_now = reader.time();
  if (reader.ok() && (!hosts_.empty() || !repositories_.empty() ||
                      engine_->pending() != 0)) {
    reader.fail("restore target is not a fresh world");
    return;
  }
  network_->load_state(reader);
  lan_switch_ = net::NodeId{static_cast<std::size_t>(reader.u64())};
  trace_->load_state(reader);
  const std::uint64_t host_count = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < host_count; ++i) {
    host::HostSpec spec;
    spec.name = reader.str();
    spec.cpu_ghz = reader.f64();
    spec.ram_mb = reader.i64();
    spec.disk_gb = reader.i64();
    spec.nic_mbps = reader.f64();
    spec.disk_mb_s = reader.f64();
    spec.ramdisk_mb_s = reader.f64();
    const net::NodeId lan_node{static_cast<std::size_t>(reader.u64())};
    const net::Ipv4Address pool_start{reader.u32()};
    const auto pool_size = static_cast<std::size_t>(reader.u64());
    HostBundle bundle;
    bundle.uplink.first = net::LinkId{static_cast<std::size_t>(reader.u64())};
    bundle.uplink.second = net::LinkId{static_cast<std::size_t>(reader.u64())};
    bundle.uplink_mbps = reader.f64();
    if (!reader.ok()) return;
    // The LAN node, uplink links, bridge entries, and shaper shares were
    // restored wholesale with the network — construct alongside, not into.
    bundle.host = std::make_unique<host::HupHost>(
        spec, lan_node, net::IpPool(pool_start, pool_size));
    bundle.shaper = std::make_unique<net::TrafficShaper>(*network_);
    bundle.daemon = std::make_unique<SodaDaemon>(*engine_, *network_,
                                                 *bundle.host, *bundle.shaper);
    bundle.daemon->set_trace(trace_.get());
    bundle.host->load_state(reader);
    bundle.shaper->load_state(reader);
    master_->attach_restored_daemon(bundle.daemon.get());
    bundle.daemon->load_state(reader);
    if (!reader.ok()) return;
    hosts_.emplace(spec.name, std::move(bundle));
  }
  const std::uint64_t repository_count = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < repository_count; ++i) {
    std::string name = reader.str();
    const net::NodeId node{static_cast<std::size_t>(reader.u64())};
    auto repository = std::make_unique<image::ImageRepository>(name, node);
    repository->load_state(reader);
    if (!reader.ok()) return;
    master_->register_repository(repository.get());
    repositories_.push_back(std::move(repository));
  }
  master_->load_state(reader);
  agent_->load_state(reader);
  if (reader.boolean()) health_monitor().load_state(reader);
  if (!reader.ok()) return;

  // Re-arm the saved timers against the restored clock, in saved heap
  // order, so same-time events keep their relative firing order.
  reader.begin_section("timers");
  std::vector<TimerRecord> timers;
  const std::uint64_t timer_count = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < timer_count; ++i) {
    TimerRecord timer;
    timer.kind = reader.u8();
    timer.owner = reader.str();
    timer.when = reader.time();
    timers.push_back(std::move(timer));
  }
  reader.end_section();
  reader.end_section();
  if (!reader.ok()) return;

  engine_->restore_clock(saved_now);
  // File order is the saved heap order — re-arm straight through it.
  for (const TimerRecord& timer : timers) {
    switch (timer.kind) {
      case TimerRecord::kHeartbeat: {
        SodaDaemon* daemon = find_daemon(timer.owner);
        if (daemon == nullptr || !daemon->heartbeating()) {
          reader.fail("heartbeat timer for unknown host '" + timer.owner + "'");
          return;
        }
        daemon->restore_heartbeat(
            daemon->heartbeat_interval(),
            [this](SodaDaemon& d, sim::SimTime now) {
              master_->on_heartbeat(d, now);
            },
            true);
        daemon->rearm_heartbeat_at(timer.when);
        break;
      }
      case TimerRecord::kDetector:
        master_->recovery().rearm_tick_at(timer.when);
        break;
      case TimerRecord::kMonitor:
        health_monitor().rearm_tick_at(timer.when);
        break;
      default:
        reader.fail("unknown timer kind " + std::to_string(timer.kind));
        return;
    }
  }
  SODA_ENSURES(engine_->pending() == timers.size());
}

Result<std::string> Hup::save_snapshot() const {
  snapshot::Writer writer;
  if (Status quiesced = save_state(writer); !quiesced) {
    return quiesced.error();
  }
  return writer.finish();
}

Status Hup::load_snapshot(std::string_view bytes) {
  snapshot::Reader reader(bytes);
  load_state(reader);
  return reader.status();
}

Status Hup::save_snapshot_file(const std::string& path) const {
  Result<std::string> bytes = save_snapshot();
  if (!bytes) return bytes.error();
  return snapshot::write_file(path, bytes.value());
}

Status Hup::load_snapshot_file(const std::string& path) {
  Result<std::string> bytes = snapshot::read_file(path);
  if (!bytes) return bytes.error();
  return load_snapshot(bytes.value());
}

Result<std::uint64_t> Hup::state_digest() const {
  Result<std::string> bytes = save_snapshot();
  if (!bytes) return bytes.error();
  return snapshot::fnv1a(bytes.value());
}

Hup::PaperTestbed Hup::paper_testbed(MasterConfig master_config) {
  PaperTestbed testbed;
  testbed.hup = std::make_unique<Hup>(master_config);
  testbed.hup->add_host(host::HostSpec::seattle(),
                        *net::Ipv4Address::parse("128.10.9.120"), 16);
  testbed.hup->add_host(host::HostSpec::tacoma(),
                        *net::Ipv4Address::parse("128.10.9.140"), 16);
  testbed.repo = &testbed.hup->add_repository("asp-repo");
  testbed.client = testbed.hup->add_client("client-0");
  return testbed;
}

}  // namespace soda::core
