// The control-plane event bus: the observability seam of the HUP. The
// Master's subsystems (planner admission, priming, recovery) and the
// daemons publish typed events into one ControlPlaneBus; the TraceLog (the
// operator-facing record tests assert sequences on), the MetricsRegistry
// (named counters/gauges), and any ad-hoc subscriber (HealthMonitor, tests)
// observe them. Publishing is synchronous and deterministic: the trace
// records first, then metrics, then subscribers in subscription order — so
// replica runs see identical event streams.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "sim/time.hpp"
#include "snapshot/format.hpp"

namespace soda::core {

/// One typed control-plane event (the bus-level view of a TraceEvent).
struct ControlPlaneEvent {
  sim::SimTime at;
  TraceKind kind;
  std::string actor;    // "master", "daemon@seattle", "monitor", ...
  std::string subject;  // service or node name
  std::string detail;   // free-form specifics
};

/// Named counters and gauges fed by the bus. Counters accumulate from
/// events (admissions, rejections, primings, failures, recoveries, ...);
/// gauges are registered read-callbacks evaluated on demand (e.g. the
/// HUP-wide bytes-from-origin sum over every daemon's distributor).
class MetricsRegistry {
 public:
  /// The standard counters start at zero so "expect-metric admissions 0"
  /// style assertions hold before the first event.
  MetricsRegistry();

  void increment(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }

  /// Registers (or replaces) a gauge evaluated at read time.
  void register_gauge(const std::string& name, std::function<double()> read) {
    gauges_[name] = std::move(read);
  }

  /// Counter or gauge value; counters win on a name collision.
  [[nodiscard]] double value(const std::string& name) const;
  [[nodiscard]] bool has(const std::string& name) const;
  /// All metric names, sorted (counters and gauges interleaved).
  [[nodiscard]] std::vector<std::string> names() const;

  /// Applies the standard kind -> counter mapping for one bus event.
  void observe(const ControlPlaneEvent& event);

  /// Checkpoints counters only — gauges are read-callbacks (wiring), which
  /// restore re-registers as each owning subsystem is rebuilt.
  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("metrics");
    writer.u64(counters_.size());
    for (const auto& [name, count] : counters_) {
      writer.str(name);
      writer.u64(count);
    }
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) {
    reader.begin_section("metrics");
    counters_.clear();
    const std::uint64_t count = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < count; ++i) {
      std::string name = reader.str();
      counters_[std::move(name)] = reader.u64();
    }
    reader.end_section();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::function<double()>> gauges_;
};

/// The bus itself. Not thread-safe (the simulation is single-threaded);
/// cheap enough to stay on everywhere, like the TraceLog it feeds.
class ControlPlaneBus {
 public:
  using Subscriber = std::function<void(const ControlPlaneEvent&)>;

  /// Adds a subscriber; returns an id for unsubscribe().
  std::size_t subscribe(Subscriber subscriber);
  void unsubscribe(std::size_t id);

  /// Attaches the operator trace (emission is skipped when unset).
  void set_trace(TraceLog* trace) noexcept { trace_ = trace; }
  [[nodiscard]] TraceLog* trace() const noexcept { return trace_; }

  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }

  /// Publishes one event: trace, then metrics, then subscribers in
  /// subscription order.
  void publish(sim::SimTime at, TraceKind kind, std::string actor,
               std::string subject, std::string detail = {});

  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }
  [[nodiscard]] std::size_t subscriber_count() const noexcept {
    return subscribers_.size();
  }

  /// Checkpoints the metrics and the publish counter. Subscribers and the
  /// trace pointer are wiring, re-established during reconstruction.
  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("bus");
    metrics_.save_state(writer);
    writer.u64(published_);
    writer.u64(next_id_);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) {
    reader.begin_section("bus");
    metrics_.load_state(reader);
    published_ = reader.u64();
    next_id_ = static_cast<std::size_t>(reader.u64());
    reader.end_section();
  }

 private:
  TraceLog* trace_ = nullptr;
  MetricsRegistry metrics_;
  std::vector<std::pair<std::size_t, Subscriber>> subscribers_;
  std::size_t next_id_ = 0;
  std::uint64_t published_ = 0;
};

}  // namespace soda::core
