// Priming coordination: the Master-side fan-out that turns a placement plan
// into live virtual service nodes. Creation, resize growth, and failure
// recovery all run through one PrimingCoordinator: it re-resolves the
// image's repository through the HUP directory at dispatch time (never a
// cached pointer — an unregistered repository fails cleanly instead of
// dangling), builds each node's PrimeCommand, joins on the last completion,
// and tears down partial work on rollback.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "core/daemon.hpp"
#include "core/placement.hpp"
#include "image/repository.hpp"
#include "sim/engine.hpp"
#include "snapshot/format.hpp"
#include "util/result.hpp"

namespace soda::core {

/// A node's client-facing endpoint: the proxied public endpoint when the
/// daemon proxied it, otherwise the node's own address and service port.
[[nodiscard]] NodeDescriptor describe_node(const vm::VirtualServiceNode& vsn,
                                           int listen_port);

/// Everything one prime fan-out needs to know about the service — a
/// snapshot taken from the ServiceRecord at dispatch time.
struct PrimeSpec {
  std::string service_name;
  image::ImageLocation location;
  host::MachineConfig unit;            // M
  host::ResourceVector inflated_unit;  // planner-inflated reservation per unit
  int listen_port = 0;
  /// Partitioned services: the component table placements reference by name.
  const std::vector<image::ServiceComponent>* components = nullptr;
  bool customize_rootfs = true;
  AddressMode address_mode = AddressMode::kBridging;
};

class PrimingCoordinator {
 public:
  PrimingCoordinator(sim::Engine& engine,
                     const image::RepositoryDirectory& directory,
                     const std::vector<SodaDaemon*>& daemons);

  /// How a fan-out ended. `failed` is set when any node's priming failed
  /// (the successes still exist — the caller decides whether to roll back,
  /// prune, or keep them).
  struct Outcome {
    bool failed = false;
    std::string first_error;
  };

  /// Fires once per successfully primed node, in completion order.
  using NodeSink = std::function<void(vm::VirtualServiceNode& node,
                                      sim::SimTime now)>;
  /// Fires exactly once, after the last node completed (or immediately when
  /// the fan-out cannot start, e.g. the repository is no longer registered).
  using DoneSink = std::function<void(const Outcome& outcome, sim::SimTime now)>;

  /// The per-node Master -> Daemon command (shared by every priming path).
  [[nodiscard]] PrimeCommand make_command(
      const PrimeSpec& spec, const Placement& placement,
      const image::ImageRepository& repo) const;

  /// Primes every placement, joining on the last completion. Placements are
  /// taken by value: completion callbacks may mutate the caller's service
  /// record (and its placement list) synchronously.
  void prime(std::vector<Placement> placements, const PrimeSpec& spec,
             NodeSink on_node, DoneSink on_done);

  /// Tears the nodes down on their (still-alive) daemons and clears the
  /// list — creation rollback after a partial fan-out failure.
  void rollback(std::vector<NodeDescriptor>& nodes);

  [[nodiscard]] std::uint64_t fanouts() const noexcept { return fanouts_; }
  [[nodiscard]] std::uint64_t nodes_primed() const noexcept {
    return nodes_primed_;
  }

  /// Checkpoints the fan-out counters (in-flight fan-outs are closures and
  /// must be quiesced before a snapshot — the owner asserts that).
  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("priming");
    writer.u64(fanouts_);
    writer.u64(nodes_primed_);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) {
    reader.begin_section("priming");
    fanouts_ = reader.u64();
    nodes_primed_ = reader.u64();
    reader.end_section();
  }

 private:
  sim::Engine& engine_;
  const image::RepositoryDirectory& directory_;
  const std::vector<SodaDaemon*>& daemons_;
  std::uint64_t fanouts_ = 0;
  std::uint64_t nodes_primed_ = 0;
};

}  // namespace soda::core
