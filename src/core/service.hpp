// Service lifecycle. A SODA service moves through a strict state machine:
// Requested -> Admitted -> Priming -> Running -> (Resizing <-> Running)
// -> TearingDown -> Gone, with Failed reachable from the setup states and
// Degraded <-> Running when host failures cost the service capacity.
#pragma once

#include <string>

#include "util/result.hpp"

namespace soda::core {

enum class ServiceState {
  kRequested,    // creation call accepted by the Agent
  kAdmitted,     // Master admitted it against HUP availability
  kPriming,      // daemons are downloading images / booting nodes
  kRunning,      // switch created, nodes serving
  kResizing,     // SODA_service_resizing in progress
  kDegraded,     // running below admitted capacity after a host failure
  kTearingDown,  // SODA_service_teardown in progress
  kGone,         // fully released
  kFailed,       // creation failed (resources / image / priming)
};

std::string_view service_state_name(ServiceState state) noexcept;

/// Validated transition helper: returns an error naming both states when the
/// move is not legal.
class ServiceLifecycle {
 public:
  explicit ServiceLifecycle(std::string service_name)
      : service_name_(std::move(service_name)) {}

  [[nodiscard]] ServiceState state() const noexcept { return state_; }

  /// Attempts the transition; legal edges are exactly those of the diagram
  /// above.
  Status transition(ServiceState to);

  /// True when the service holds HUP resources (admitted through resizing).
  [[nodiscard]] bool holds_resources() const noexcept;

  [[nodiscard]] const std::string& service_name() const noexcept {
    return service_name_;
  }

  /// Checkpoint restore: sets the state directly, bypassing transition
  /// validation (the saved state was legal when captured).
  void restore_state(ServiceState state) noexcept { state_ = state; }

 private:
  std::string service_name_;
  ServiceState state_ = ServiceState::kRequested;
};

}  // namespace soda::core
