#include "core/monitor.hpp"

#include "util/contract.hpp"
#include "util/log.hpp"

namespace soda::core {

namespace {

/// Resolves the live node object behind a descriptor, or nullptr when the
/// host or node is gone.
vm::VirtualServiceNode* resolve_node(SodaMaster& master,
                                     const NodeDescriptor& descriptor) {
  SodaDaemon* daemon = master.daemon_for(descriptor.host_name);
  return daemon == nullptr ? nullptr : daemon->find_node(descriptor.node_name);
}

}  // namespace

Result<ServiceStatusReport> collect_service_status(
    SodaMaster& master, const std::string& service_name) {
  const ServiceRecord* record = master.find_service(service_name);
  if (!record) return Error{"no such service: " + service_name};

  ServiceStatusReport report;
  report.service_name = service_name;
  report.state = record->lifecycle.state();
  ServiceSwitch* service_switch = master.find_switch(service_name);
  if (service_switch) {
    report.requests_routed = service_switch->requests_routed();
    report.requests_refused = service_switch->requests_refused();
  }
  for (const NodeDescriptor& descriptor : record->nodes) {
    NodeStatus status;
    status.node_name = descriptor.node_name;
    status.host_name = descriptor.host_name;
    status.address = descriptor.address;
    status.port = descriptor.port;
    status.capacity_units = descriptor.capacity_units;
    if (const vm::VirtualServiceNode* node = resolve_node(master, descriptor)) {
      status.vm_state = node->uml().state();
      status.process_count = node->uml().processes().count();
      status.memory_used_mb = node->uml().memory_used_mb();
      status.memory_cap_mb = node->uml().memory_cap_mb();
    }
    if (service_switch) {
      status.requests_routed =
          service_switch->routed_to(descriptor.address, descriptor.port);
      for (const BackEndState& backend : service_switch->backends()) {
        if (backend.entry.address == descriptor.address &&
            backend.entry.port == descriptor.port) {
          status.healthy_in_switch = backend.healthy;
        }
      }
    }
    report.nodes.push_back(std::move(status));
  }
  return report;
}

HealthMonitor::HealthMonitor(sim::Engine& engine, SodaMaster& master,
                             sim::SimTime interval)
    : engine_(engine), master_(master), interval_(interval) {
  SODA_EXPECTS(interval > sim::SimTime::zero());
  // A passive bus tap: the monitor observes the control plane it probes
  // (host-down/up, recoveries) without polling the Master for them.
  subscription_ = master_.bus().subscribe(
      [this](const ControlPlaneEvent&) { ++bus_events_seen_; });
}

HealthMonitor::~HealthMonitor() { master_.bus().unsubscribe(subscription_); }

void HealthMonitor::start() {
  if (running_) return;
  running_ = true;
  tick_next_ = engine_.now() + interval_;
  tick_event_ = engine_.schedule_after(interval_, [this] { tick(); });
}

void HealthMonitor::tick() {
  // Deliberately untagged (a serial barrier under a sharded engine): the
  // probe walks the whole service table and flips switch health fleet-wide.
  if (!running_) return;
  probe_once();
  tick_next_ = engine_.now() + interval_;
  tick_event_ = engine_.schedule_after(interval_, [this] { tick(); });
}

void HealthMonitor::rearm_tick_at(sim::SimTime when) {
  SODA_EXPECTS(running_);
  tick_next_ = when;
  tick_event_ = engine_.schedule_at(when, [this] { tick(); });
}

void HealthMonitor::save_state(snapshot::Writer& writer) const {
  writer.begin_section("monitor");
  writer.time(interval_);
  writer.boolean(running_);
  writer.u64(probes_);
  writer.u64(to_unhealthy_);
  writer.u64(to_healthy_);
  writer.u64(bus_events_seen_);
  writer.end_section();
}

void HealthMonitor::load_state(snapshot::Reader& reader) {
  reader.begin_section("monitor");
  const sim::SimTime interval = reader.time();
  if (reader.ok() && interval != interval_) {
    reader.fail("health monitor interval mismatch");
    return;
  }
  running_ = reader.boolean();
  probes_ = reader.u64();
  to_unhealthy_ = reader.u64();
  to_healthy_ = reader.u64();
  bus_events_seen_ = reader.u64();
  reader.end_section();
}

std::size_t HealthMonitor::probe_once() {
  ++probes_;
  std::size_t transitions = 0;
  // Straight over the service table — no per-probe name-vector churn.
  master_.services().for_each([&](const std::string&, ServiceRecord& record) {
    ServiceSwitch* service_switch = record.service_switch.get();
    if (!service_switch) return;
    for (const NodeDescriptor& descriptor : record.nodes) {
      vm::VirtualServiceNode* node = resolve_node(master_, descriptor);
      const bool alive = node != nullptr && node->running();
      bool currently_healthy = true;
      for (const BackEndState& backend : service_switch->backends()) {
        if (backend.entry.address == descriptor.address &&
            backend.entry.port == descriptor.port) {
          currently_healthy = backend.healthy;
        }
      }
      if (alive != currently_healthy) {
        must(service_switch->set_backend_health(descriptor.address,
                                                descriptor.port, alive));
        ++transitions;
        if (alive) {
          ++to_healthy_;
        } else {
          ++to_unhealthy_;
        }
        master_.bus().publish(engine_.now(), TraceKind::kHealthChanged,
                              "monitor", descriptor.node_name,
                              alive ? "healthy" : "unhealthy");
        util::global_logger().warn(
            "monitor", descriptor.node_name + " marked " +
                           (alive ? "healthy" : "unhealthy") + " in switch");
      }
    }
  });
  return transitions;
}

}  // namespace soda::core
