#include "core/switch.hpp"

#include <algorithm>
#include <climits>

#include "util/contract.hpp"

namespace soda::core {

namespace {

/// Policy state is keyed by the full (address, port) endpoint: two backends
/// of one service may share their host's public address on different ports
/// (proxied components), and an address-only key would alias their state.
using EndpointKey = std::pair<std::uint32_t, int>;

EndpointKey endpoint_key(const BackEndEntry& entry) noexcept {
  return {entry.address.value(), entry.port};
}

/// Nginx-style smooth weighted round-robin: each pick, every backend's
/// current weight grows by its capacity; the largest current weight wins and
/// is decremented by the total capacity. Produces evenly interleaved 2:1
/// patterns (A B A A B A ...), which is what keeps per-node response times
/// flat in Figure 4.
class SmoothWrr final : public SwitchPolicy {
 public:
  std::optional<std::size_t> pick(const std::vector<BackEndState>& backends) override {
    if (backends.empty()) return std::nullopt;
    int total = 0;
    std::size_t best = 0;
    long long best_weight = LLONG_MIN;
    for (std::size_t i = 0; i < backends.size(); ++i) {
      const auto key = endpoint_key(backends[i].entry);
      current_[key] += backends[i].entry.capacity;
      total += backends[i].entry.capacity;
      if (current_[key] > best_weight) {
        best_weight = current_[key];
        best = i;
      }
    }
    current_[endpoint_key(backends[best].entry)] -= total;
    return best;
  }
  [[nodiscard]] std::string name() const override { return "weighted-round-robin"; }
  void on_backends_changed() override { current_.clear(); }

 private:
  std::map<EndpointKey, long long> current_;
};

class PlainRr final : public SwitchPolicy {
 public:
  std::optional<std::size_t> pick(const std::vector<BackEndState>& backends) override {
    if (backends.empty()) return std::nullopt;
    return next_++ % backends.size();
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  void on_backends_changed() override { next_ = 0; }

 private:
  std::size_t next_ = 0;
};

class RandomPolicy final : public SwitchPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  std::optional<std::size_t> pick(const std::vector<BackEndState>& backends) override {
    if (backends.empty()) return std::nullopt;
    return static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(backends.size()) - 1));
  }
  [[nodiscard]] std::string name() const override { return "random"; }

 private:
  sim::Rng rng_;
};

class LeastConnections final : public SwitchPolicy {
 public:
  std::optional<std::size_t> pick(const std::vector<BackEndState>& backends) override {
    if (backends.empty()) return std::nullopt;
    std::size_t best = 0;
    double best_load = load(backends[0]);
    for (std::size_t i = 1; i < backends.size(); ++i) {
      const double l = load(backends[i]);
      if (l < best_load) {
        best_load = l;
        best = i;
      }
    }
    return best;
  }
  [[nodiscard]] std::string name() const override { return "least-connections"; }

 private:
  static double load(const BackEndState& b) {
    return static_cast<double>(b.active_connections) /
           static_cast<double>(std::max(1, b.entry.capacity));
  }
};

/// EWMA-of-response-time policy. Estimates are kept per backend address;
/// the score divides by capacity so that, at equal observed response times,
/// the larger node is preferred (it has more headroom to absorb the next
/// request). Unsampled backends win ties so every backend gets probed.
class FastestResponse final : public SwitchPolicy {
 public:
  explicit FastestResponse(double alpha) : alpha_(alpha) {
    SODA_EXPECTS(alpha > 0 && alpha <= 1);
  }

  std::optional<std::size_t> pick(const std::vector<BackEndState>& backends) override {
    if (backends.empty()) return std::nullopt;
    std::size_t best = backends.size();
    double best_score = 0;
    for (std::size_t i = 0; i < backends.size(); ++i) {
      const auto it = ewma_.find(endpoint_key(backends[i].entry));
      if (it == ewma_.end()) return i;  // explore unsampled backends first
      const double score =
          it->second / static_cast<double>(std::max(1, backends[i].entry.capacity));
      if (best == backends.size() || score < best_score) {
        best = i;
        best_score = score;
      }
    }
    return best;
  }

  void on_response_time(const BackEndEntry& backend, double seconds) override {
    auto [it, inserted] = ewma_.emplace(endpoint_key(backend), seconds);
    if (!inserted) {
      it->second = alpha_ * seconds + (1 - alpha_) * it->second;
    }
  }

  [[nodiscard]] std::string name() const override { return "fastest-response"; }
  void on_backends_changed() override { ewma_.clear(); }

 private:
  double alpha_;
  std::map<EndpointKey, double> ewma_;
};

class CustomPolicy final : public SwitchPolicy {
 public:
  CustomPolicy(std::string name,
               std::function<std::optional<std::size_t>(
                   const std::vector<BackEndState>&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {
    SODA_EXPECTS(fn_ != nullptr);
  }
  std::optional<std::size_t> pick(const std::vector<BackEndState>& backends) override {
    return fn_(backends);
  }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<std::optional<std::size_t>(const std::vector<BackEndState>&)> fn_;
};

}  // namespace

std::unique_ptr<SwitchPolicy> make_weighted_round_robin() {
  return std::make_unique<SmoothWrr>();
}
std::unique_ptr<SwitchPolicy> make_plain_round_robin() {
  return std::make_unique<PlainRr>();
}
std::unique_ptr<SwitchPolicy> make_random_policy(std::uint64_t seed) {
  return std::make_unique<RandomPolicy>(seed);
}
std::unique_ptr<SwitchPolicy> make_least_connections() {
  return std::make_unique<LeastConnections>();
}
std::unique_ptr<SwitchPolicy> make_fastest_response(double alpha) {
  return std::make_unique<FastestResponse>(alpha);
}

std::unique_ptr<SwitchPolicy> make_custom_policy(
    std::string name,
    std::function<std::optional<std::size_t>(const std::vector<BackEndState>&)> fn) {
  return std::make_unique<CustomPolicy>(std::move(name), std::move(fn));
}

ServiceSwitch::ServiceSwitch(std::string service_name, net::Ipv4Address listen,
                             int port)
    : service_name_(std::move(service_name)),
      listen_(listen),
      port_(port),
      policy_(make_weighted_round_robin()) {
  SODA_EXPECTS(port_ > 0);
}

BackEndState* ServiceSwitch::find(net::Ipv4Address address) {
  auto it = std::find_if(backends_.begin(), backends_.end(),
                         [&](const BackEndState& b) {
                           return b.entry.address == address;
                         });
  return it == backends_.end() ? nullptr : &*it;
}

BackEndState* ServiceSwitch::find(net::Ipv4Address address, int port) {
  auto it = std::find_if(backends_.begin(), backends_.end(),
                         [&](const BackEndState& b) {
                           return b.entry.address == address &&
                                  b.entry.port == port;
                         });
  return it == backends_.end() ? nullptr : &*it;
}

Status ServiceSwitch::add_backend(const BackEndEntry& entry) {
  if (find(entry.address, entry.port)) {
    return Error{"backend already present: " + entry.address.to_string() + ":" +
                 std::to_string(entry.port)};
  }
  backends_.push_back(BackEndState{entry, 0, 0, true});
  policy_->on_backends_changed();
  return {};
}

Status ServiceSwitch::remove_backend(net::Ipv4Address address) {
  BackEndState* backend = find(address);
  if (!backend) return Error{"no backend " + address.to_string()};
  return remove_backend(backend->entry.address, backend->entry.port);
}

Status ServiceSwitch::remove_backend(net::Ipv4Address address, int port) {
  auto it = std::find_if(backends_.begin(), backends_.end(),
                         [&](const BackEndState& b) {
                           return b.entry.address == address &&
                                  b.entry.port == port;
                         });
  if (it == backends_.end()) {
    return Error{"no backend " + address.to_string() + ":" +
                 std::to_string(port)};
  }
  if (it->active_connections > 0) {
    // In-flight requests keep the backend alive; healthy_view() hides
    // draining entries, so no new requests arrive, and the last
    // on_request_complete() erases it.
    it->draining = true;
    policy_->on_backends_changed();
    return {};
  }
  backends_.erase(it);
  policy_->on_backends_changed();
  return {};
}

Status ServiceSwitch::set_backend_capacity(net::Ipv4Address address, int capacity) {
  BackEndState* backend = find(address);
  if (!backend) return Error{"no backend " + address.to_string()};
  return set_backend_capacity(backend->entry.address, backend->entry.port,
                              capacity);
}

Status ServiceSwitch::set_backend_capacity(net::Ipv4Address address, int port,
                                           int capacity) {
  SODA_EXPECTS(capacity >= 1);
  BackEndState* backend = find(address, port);
  if (!backend) {
    return Error{"no backend " + address.to_string() + ":" +
                 std::to_string(port)};
  }
  backend->entry.capacity = capacity;
  policy_->on_backends_changed();
  return {};
}

void ServiceSwitch::load_config(const ServiceConfigFile& file) {
  backends_.clear();
  for (const auto& entry : file.entries()) {
    backends_.push_back(BackEndState{entry, 0, 0, true});
  }
  policy_->on_backends_changed();
}

Status ServiceSwitch::set_backend_health(net::Ipv4Address address, bool healthy) {
  BackEndState* backend = find(address);
  if (!backend) return Error{"no backend " + address.to_string()};
  backend->healthy = healthy;
  return {};
}

Status ServiceSwitch::set_backend_health(net::Ipv4Address address, int port,
                                         bool healthy) {
  BackEndState* backend = find(address, port);
  if (!backend) {
    return Error{"no backend " + address.to_string() + ":" +
                 std::to_string(port)};
  }
  backend->healthy = healthy;
  return {};
}

void ServiceSwitch::set_policy(std::unique_ptr<SwitchPolicy> policy) {
  SODA_EXPECTS(policy != nullptr);
  policy_ = std::move(policy);
  policy_->on_backends_changed();
}

void ServiceSwitch::rehome(net::Ipv4Address listen, int port) {
  SODA_EXPECTS(port > 0);
  listen_ = listen;
  port_ = port;
}

std::vector<BackEndState> ServiceSwitch::healthy_view(
    std::string_view component) const {
  std::vector<BackEndState> view;
  for (const auto& backend : backends_) {
    if (backend.healthy && !backend.draining &&
        backend.entry.component == component) {
      view.push_back(backend);
    }
  }
  return view;
}

void ServiceSwitch::set_component_route(std::string prefix,
                                        std::string component) {
  SODA_EXPECTS(!prefix.empty());
  routes_.emplace_back(std::move(prefix), std::move(component));
}

std::string ServiceSwitch::component_for(std::string_view target) const {
  std::size_t best_len = 0;
  std::string best;
  for (const auto& [prefix, component] : routes_) {
    if (target.substr(0, prefix.size()) == prefix && prefix.size() >= best_len) {
      best_len = prefix.size();
      best = component;
    }
  }
  return best;
}

Result<BackEndEntry> ServiceSwitch::route_target(std::string_view target) {
  return route(component_for(target));
}

Result<BackEndEntry> ServiceSwitch::route(std::string_view component) {
  const auto view = healthy_view(component);
  if (view.empty()) {
    ++refused_;
    return Error{"switch " + service_name_ + ": no healthy backend" +
                 (component.empty() ? std::string()
                                    : " for component '" + std::string(component) +
                                          "'")};
  }
  const auto choice = policy_->pick(view);
  if (!choice || *choice >= view.size()) {
    ++refused_;
    return Error{"switch " + service_name_ + ": policy '" + policy_->name() +
                 "' refused the request"};
  }
  BackEndState* backend =
      find(view[*choice].entry.address, view[*choice].entry.port);
  SODA_ENSURES(backend != nullptr);
  ++backend->requests_routed;
  ++backend->active_connections;
  ++routed_;
  return backend->entry;
}

void ServiceSwitch::on_request_complete(net::Ipv4Address backend_address) {
  BackEndState* backend = find(backend_address);
  if (backend) {
    on_request_complete(backend->entry.address, backend->entry.port);
  }
}

void ServiceSwitch::on_request_complete(net::Ipv4Address backend_address,
                                        int port) {
  BackEndState* backend = find(backend_address, port);
  if (!backend) return;
  if (backend->active_connections > 0) --backend->active_connections;
  if (backend->draining && backend->active_connections == 0) {
    backends_.erase(backends_.begin() + (backend - backends_.data()));
    policy_->on_backends_changed();
  }
}

void ServiceSwitch::report_response_time(net::Ipv4Address backend_address,
                                         double seconds) {
  BackEndState* backend = find(backend_address);
  if (backend) {
    report_response_time(backend->entry.address, backend->entry.port, seconds);
  }
}

void ServiceSwitch::report_response_time(net::Ipv4Address backend_address,
                                         int port, double seconds) {
  BackEndState* backend = find(backend_address, port);
  if (backend) policy_->on_response_time(backend->entry, seconds);
}

void ServiceSwitch::report_backend_failure(net::Ipv4Address backend_address,
                                           int port) {
  BackEndState* backend = find(backend_address, port);
  if (!backend) return;
  backend->healthy = false;
  if (backend->active_connections > 0) --backend->active_connections;
}

Result<BackEndEntry> ServiceSwitch::route_failover(const BackEndEntry& dead,
                                                   std::string_view component) {
  report_backend_failure(dead.address, dead.port);
  auto retried = route(component);
  if (retried.ok()) ++failovers_;
  return retried;
}

std::string ServiceSwitch::config_text() const {
  ServiceConfigFile file;
  for (const auto& backend : backends_) must(file.add(backend.entry));
  return file.serialize();
}

std::uint64_t ServiceSwitch::routed_to(net::Ipv4Address backend_address) const {
  std::uint64_t total = 0;
  for (const auto& backend : backends_) {
    if (backend.entry.address == backend_address) total += backend.requests_routed;
  }
  return total;
}

}  // namespace soda::core
