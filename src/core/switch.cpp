#include "core/switch.hpp"

#include <algorithm>
#include <array>
#include <climits>

#include "util/contract.hpp"

namespace soda::core {

namespace {

/// Nginx-style smooth weighted round-robin: each pick, every backend's
/// current weight grows by its capacity; the largest current weight wins and
/// is decremented by the total capacity. Produces evenly interleaved 2:1
/// patterns (A B A A B A ...), which is what keeps per-node response times
/// flat in Figure 4.
///
/// Current weights live in a dense per-slot array (re-seeded to zero on
/// membership changes, preserved across health flips — same lifecycle the
/// old map-keyed state had, minus the per-pick tree lookups).
class SmoothWrr final : public SwitchPolicy {
 public:
  std::optional<std::size_t> pick(const RoutableView& view) override {
    if (view.empty()) return std::nullopt;
    if (current_.size() != view.slot_count()) {
      current_.assign(view.slot_count(), 0);
    }
    // Totals accumulate in long long: many backends with near-INT_MAX
    // capacities must not overflow the running sum.
    long long total = 0;
    std::size_t best = 0;
    long long best_weight = LLONG_MIN;
    for (std::size_t i = 0; i < view.size(); ++i) {
      const std::uint32_t slot = view.slot(i);
      const int capacity = view[i].entry.capacity;
      current_[slot] += capacity;
      total += capacity;
      if (current_[slot] > best_weight) {
        best_weight = current_[slot];
        best = i;
      }
    }
    current_[view.slot(best)] -= total;
    return best;
  }
  [[nodiscard]] std::string name() const override { return "weighted-round-robin"; }
  void on_backends_changed(const std::vector<BackEndState>& slots) override {
    current_.assign(slots.size(), 0);
  }
  void save_state(snapshot::Writer& writer) const override {
    writer.begin_section("policy_state");
    writer.u64(current_.size());
    for (const long long weight : current_) writer.i64(weight);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) override {
    reader.begin_section("policy_state");
    current_.clear();
    const std::uint64_t count = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < count; ++i) {
      current_.push_back(reader.i64());
    }
    reader.end_section();
  }

 private:
  std::vector<long long> current_;  // indexed by backend slot
};

class PlainRr final : public SwitchPolicy {
 public:
  std::optional<std::size_t> pick(const RoutableView& view) override {
    if (view.empty()) return std::nullopt;
    return next_++ % view.size();
  }
  [[nodiscard]] std::string name() const override { return "round-robin"; }
  void on_backends_changed(const std::vector<BackEndState>&) override {
    next_ = 0;
  }
  void save_state(snapshot::Writer& writer) const override {
    writer.begin_section("policy_state");
    writer.u64(next_);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) override {
    reader.begin_section("policy_state");
    next_ = static_cast<std::size_t>(reader.u64());
    reader.end_section();
  }

 private:
  std::size_t next_ = 0;
};

class RandomPolicy final : public SwitchPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}
  std::optional<std::size_t> pick(const RoutableView& view) override {
    if (view.empty()) return std::nullopt;
    return static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(view.size()) - 1));
  }
  [[nodiscard]] std::string name() const override { return "random"; }
  void save_state(snapshot::Writer& writer) const override {
    writer.begin_section("policy_state");
    for (const std::uint64_t word : rng_.state()) writer.u64(word);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) override {
    reader.begin_section("policy_state");
    std::array<std::uint64_t, 4> state{};
    for (std::uint64_t& word : state) word = reader.u64();
    if (reader.ok()) rng_.set_state(state);
    reader.end_section();
  }

 private:
  sim::Rng rng_;
};

class LeastConnections final : public SwitchPolicy {
 public:
  std::optional<std::size_t> pick(const RoutableView& view) override {
    if (view.empty()) return std::nullopt;
    std::size_t best = 0;
    double best_load = load(view[0]);
    for (std::size_t i = 1; i < view.size(); ++i) {
      const double l = load(view[i]);
      if (l < best_load) {
        best_load = l;
        best = i;
      }
    }
    return best;
  }
  [[nodiscard]] std::string name() const override { return "least-connections"; }

 private:
  static double load(const BackEndState& b) {
    return static_cast<double>(b.active_connections) /
           static_cast<double>(std::max(1, b.entry.capacity));
  }
};

/// EWMA-of-response-time policy. Estimates are kept per backend slot; the
/// score divides by capacity so that, at equal observed response times, the
/// larger node is preferred (it has more headroom to absorb the next
/// request). Unsampled backends win ties so every backend gets probed.
class FastestResponse final : public SwitchPolicy {
 public:
  explicit FastestResponse(double alpha) : alpha_(alpha) {
    SODA_EXPECTS(alpha > 0 && alpha <= 1);
  }

  std::optional<std::size_t> pick(const RoutableView& view) override {
    if (view.empty()) return std::nullopt;
    if (sampled_.size() != view.slot_count()) reseed(view.slot_count());
    std::size_t best = view.size();
    double best_score = 0;
    for (std::size_t i = 0; i < view.size(); ++i) {
      const std::uint32_t slot = view.slot(i);
      if (!sampled_[slot]) return i;  // explore unsampled backends first
      const double score =
          ewma_[slot] / static_cast<double>(std::max(1, view[i].entry.capacity));
      if (best == view.size() || score < best_score) {
        best = i;
        best_score = score;
      }
    }
    return best;
  }

  void on_response_time(std::uint32_t slot, const BackEndEntry&,
                        double seconds) override {
    if (slot >= sampled_.size()) reseed(slot + 1);
    if (!sampled_[slot]) {
      sampled_[slot] = 1;
      ewma_[slot] = seconds;
    } else {
      ewma_[slot] = alpha_ * seconds + (1 - alpha_) * ewma_[slot];
    }
  }

  [[nodiscard]] std::string name() const override { return "fastest-response"; }
  void on_backends_changed(const std::vector<BackEndState>& slots) override {
    reseed(slots.size());
  }
  void save_state(snapshot::Writer& writer) const override {
    writer.begin_section("policy_state");
    writer.f64(alpha_);
    writer.u64(ewma_.size());
    for (std::size_t i = 0; i < ewma_.size(); ++i) {
      writer.f64(ewma_[i]);
      writer.u8(sampled_[i]);
    }
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) override {
    reader.begin_section("policy_state");
    alpha_ = reader.f64();
    ewma_.clear();
    sampled_.clear();
    const std::uint64_t count = reader.u64();
    for (std::uint64_t i = 0; reader.ok() && i < count; ++i) {
      ewma_.push_back(reader.f64());
      sampled_.push_back(reader.u8());
    }
    reader.end_section();
  }

 private:
  void reseed(std::size_t n) {
    ewma_.assign(n, 0);
    sampled_.assign(n, 0);
  }

  double alpha_;
  std::vector<double> ewma_;            // indexed by backend slot
  std::vector<unsigned char> sampled_;  // 1 once a sample arrived
};

/// Adapter for the ASP function hook: materializes the view into a reused
/// buffer (element-wise assignment, so string capacity is recycled) and
/// hands the legacy vector shape to the user function.
class CustomPolicy final : public SwitchPolicy {
 public:
  CustomPolicy(std::string name,
               std::function<std::optional<std::size_t>(
                   const std::vector<BackEndState>&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {
    SODA_EXPECTS(fn_ != nullptr);
  }
  std::optional<std::size_t> pick(const RoutableView& view) override {
    scratch_.resize(view.size());
    for (std::size_t i = 0; i < view.size(); ++i) scratch_[i] = view[i];
    return fn_(scratch_);
  }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<std::optional<std::size_t>(const std::vector<BackEndState>&)> fn_;
  std::vector<BackEndState> scratch_;
};

}  // namespace

std::unique_ptr<SwitchPolicy> make_weighted_round_robin() {
  return std::make_unique<SmoothWrr>();
}
std::unique_ptr<SwitchPolicy> make_plain_round_robin() {
  return std::make_unique<PlainRr>();
}
std::unique_ptr<SwitchPolicy> make_random_policy(std::uint64_t seed) {
  return std::make_unique<RandomPolicy>(seed);
}
std::unique_ptr<SwitchPolicy> make_least_connections() {
  return std::make_unique<LeastConnections>();
}
std::unique_ptr<SwitchPolicy> make_fastest_response(double alpha) {
  return std::make_unique<FastestResponse>(alpha);
}

Result<std::unique_ptr<SwitchPolicy>> make_switch_policy_by_name(
    std::string_view name, std::uint64_t seed) {
  if (name == "weighted-round-robin") return make_weighted_round_robin();
  if (name == "round-robin") return make_plain_round_robin();
  if (name == "random") return make_random_policy(seed);
  if (name == "least-connections") return make_least_connections();
  if (name == "fastest-response") return make_fastest_response();
  return Error{"unknown switch policy '" + std::string(name) + "'"};
}

std::unique_ptr<SwitchPolicy> make_custom_policy(
    std::string name,
    std::function<std::optional<std::size_t>(const std::vector<BackEndState>&)> fn) {
  return std::make_unique<CustomPolicy>(std::move(name), std::move(fn));
}

ServiceSwitch::ServiceSwitch(std::string service_name, net::Ipv4Address listen,
                             int port)
    : service_name_(std::move(service_name)),
      listen_(listen),
      port_(port),
      policy_(make_weighted_round_robin()) {
  SODA_EXPECTS(port_ > 0);
}

BackEndState* ServiceSwitch::find(net::Ipv4Address address) {
  auto it = std::find_if(backends_.begin(), backends_.end(),
                         [&](const BackEndState& b) {
                           return b.entry.address == address;
                         });
  return it == backends_.end() ? nullptr : &*it;
}

BackEndState* ServiceSwitch::find(net::Ipv4Address address, int port) {
  auto it = std::find_if(backends_.begin(), backends_.end(),
                         [&](const BackEndState& b) {
                           return b.entry.address == address &&
                                  b.entry.port == port;
                         });
  return it == backends_.end() ? nullptr : &*it;
}

BackEndState* ServiceSwitch::resolve_unique(net::Ipv4Address address) {
  BackEndState* match = nullptr;
  for (auto& backend : backends_) {
    if (backend.entry.address != address) continue;
    if (match) return nullptr;  // shared address: not attributable
    match = &backend;
  }
  return match;
}

BackEndState* ServiceSwitch::resolve_completion(net::Ipv4Address address) {
  BackEndState* match = nullptr;
  BackEndState* active = nullptr;
  bool shared = false;
  bool active_shared = false;
  for (auto& backend : backends_) {
    if (backend.entry.address != address) continue;
    if (match) shared = true;
    match = &backend;
    if (backend.active_connections > 0) {
      if (active) active_shared = true;
      active = &backend;
    }
  }
  if (!shared) return match;
  // Several backends share the address: only one with an in-flight
  // connection can be the one completing. Two or more active stays
  // ambiguous — drop rather than guess wrong.
  return active_shared ? nullptr : active;
}

void ServiceSwitch::on_membership_changed() {
  touch();
  policy_->on_backends_changed(backends_);
}

Status ServiceSwitch::add_backend(const BackEndEntry& entry) {
  if (find(entry.address, entry.port)) {
    return Error{"backend already present: " + entry.address.to_string() + ":" +
                 std::to_string(entry.port)};
  }
  backends_.push_back(BackEndState{entry, 0, 0, true, false});
  on_membership_changed();
  return {};
}

Status ServiceSwitch::remove_backend(net::Ipv4Address address) {
  BackEndState* backend = find(address);
  if (!backend) return Error{"no backend " + address.to_string()};
  return remove_backend(backend->entry.address, backend->entry.port);
}

Status ServiceSwitch::remove_backend(net::Ipv4Address address, int port) {
  auto it = std::find_if(backends_.begin(), backends_.end(),
                         [&](const BackEndState& b) {
                           return b.entry.address == address &&
                                  b.entry.port == port;
                         });
  if (it == backends_.end()) {
    return Error{"no backend " + address.to_string() + ":" +
                 std::to_string(port)};
  }
  if (it->active_connections > 0) {
    // In-flight requests keep the backend alive; the routable snapshot
    // hides draining entries, so no new requests arrive, and the last
    // on_request_complete() erases it.
    it->draining = true;
    on_membership_changed();
    return {};
  }
  backends_.erase(it);
  on_membership_changed();
  return {};
}

Status ServiceSwitch::set_backend_capacity(net::Ipv4Address address, int capacity) {
  BackEndState* backend = find(address);
  if (!backend) return Error{"no backend " + address.to_string()};
  return set_backend_capacity(backend->entry.address, backend->entry.port,
                              capacity);
}

Status ServiceSwitch::set_backend_capacity(net::Ipv4Address address, int port,
                                           int capacity) {
  SODA_EXPECTS(capacity >= 1);
  BackEndState* backend = find(address, port);
  if (!backend) {
    return Error{"no backend " + address.to_string() + ":" +
                 std::to_string(port)};
  }
  backend->entry.capacity = capacity;
  on_membership_changed();
  return {};
}

void ServiceSwitch::load_config(const ServiceConfigFile& file) {
  backends_.clear();
  for (const auto& entry : file.entries()) {
    backends_.push_back(BackEndState{entry, 0, 0, true, false});
  }
  on_membership_changed();
}

Status ServiceSwitch::set_backend_health(net::Ipv4Address address, bool healthy) {
  BackEndState* backend = find(address);
  if (!backend) return Error{"no backend " + address.to_string()};
  if (backend->healthy != healthy) {
    backend->healthy = healthy;
    touch();  // routable set changed; policy state survives health flips
  }
  return {};
}

Status ServiceSwitch::set_backend_health(net::Ipv4Address address, int port,
                                         bool healthy) {
  BackEndState* backend = find(address, port);
  if (!backend) {
    return Error{"no backend " + address.to_string() + ":" +
                 std::to_string(port)};
  }
  if (backend->healthy != healthy) {
    backend->healthy = healthy;
    touch();
  }
  return {};
}

void ServiceSwitch::set_policy(std::unique_ptr<SwitchPolicy> policy) {
  SODA_EXPECTS(policy != nullptr);
  policy_ = std::move(policy);
  policy_->on_backends_changed(backends_);
}

void ServiceSwitch::rehome(net::Ipv4Address listen, int port) {
  SODA_EXPECTS(port > 0);
  listen_ = listen;
  port_ = port;
}

void ServiceSwitch::rebuild_snapshots() {
  // Reuse the snapshot vectors across rebuilds: clear() keeps their
  // capacity, so a rebuild after a health flip usually allocates nothing
  // either. Snapshots for components that vanished stay behind empty (they
  // route-refuse exactly like a missing snapshot, and components per
  // service are few).
  for (auto& snapshot : snapshots_) snapshot.slots.clear();
  for (std::uint32_t i = 0; i < backends_.size(); ++i) {
    const BackEndState& backend = backends_[i];
    if (!backend.healthy || backend.draining) continue;
    ComponentSnapshot* snapshot = nullptr;
    for (auto& existing : snapshots_) {
      if (existing.component == backend.entry.component) {
        snapshot = &existing;
        break;
      }
    }
    if (!snapshot) {
      snapshots_.push_back(ComponentSnapshot{backend.entry.component, {}});
      snapshot = &snapshots_.back();
    }
    snapshot->slots.push_back(i);
  }
  snapshot_epoch_ = epoch_;
}

const ServiceSwitch::ComponentSnapshot* ServiceSwitch::routable_snapshot(
    std::string_view component) {
  if (snapshot_epoch_ != epoch_) rebuild_snapshots();
  for (const auto& snapshot : snapshots_) {
    if (snapshot.component == component) {
      return snapshot.slots.empty() ? nullptr : &snapshot;
    }
  }
  return nullptr;
}

void ServiceSwitch::set_component_route(std::string prefix,
                                        std::string component) {
  SODA_EXPECTS(!prefix.empty());
  routes_.push_back(PrefixRoute{std::move(prefix), std::move(component)});
  route_order_.resize(routes_.size());
  for (std::uint32_t i = 0; i < route_order_.size(); ++i) route_order_[i] = i;
  std::sort(route_order_.begin(), route_order_.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const std::size_t la = routes_[a].prefix.size();
              const std::size_t lb = routes_[b].prefix.size();
              if (la != lb) return la > lb;
              return a > b;  // equal length: later registration wins
            });
}

std::string_view ServiceSwitch::component_for(std::string_view target) const {
  // route_order_ is sorted longest-prefix-first (ties: latest rule first),
  // so the first match is the winning rule — no full scan, no copy.
  for (const std::uint32_t index : route_order_) {
    const PrefixRoute& route = routes_[index];
    if (route.prefix.size() <= target.size() &&
        target.substr(0, route.prefix.size()) == route.prefix) {
      return route.component;
    }
  }
  return {};
}

Result<BackEndEntry> ServiceSwitch::route_target(std::string_view target) {
  return route(component_for(target));
}

Result<BackEndEntry> ServiceSwitch::route(std::string_view component) {
  const ComponentSnapshot* snapshot = routable_snapshot(component);
  if (!snapshot) {
    ++refused_;
    return Error{"switch " + service_name_ + ": no healthy backend" +
                 (component.empty() ? std::string()
                                    : " for component '" + std::string(component) +
                                          "'")};
  }
  const RoutableView view(backends_, snapshot->slots.data(),
                          snapshot->slots.size());
  const auto choice = policy_->pick(view);
  if (!choice || *choice >= view.size()) {
    ++refused_;
    return Error{"switch " + service_name_ + ": policy '" + policy_->name() +
                 "' refused the request"};
  }
  // The winning view position maps straight back to its backend slot — no
  // post-pick rescan of the backend table.
  BackEndState& backend = backends_[snapshot->slots[*choice]];
  ++backend.requests_routed;
  ++backend.active_connections;
  ++routed_;
  return backend.entry;
}

void ServiceSwitch::on_request_complete(net::Ipv4Address backend_address) {
  BackEndState* backend = resolve_completion(backend_address);
  if (backend) {
    on_request_complete(backend->entry.address, backend->entry.port);
  }
}

void ServiceSwitch::on_request_complete(net::Ipv4Address backend_address,
                                        int port) {
  BackEndState* backend = find(backend_address, port);
  if (!backend) return;
  if (backend->active_connections > 0) --backend->active_connections;
  if (backend->draining && backend->active_connections == 0) {
    backends_.erase(backends_.begin() + (backend - backends_.data()));
    on_membership_changed();
  }
}

void ServiceSwitch::report_response_time(net::Ipv4Address backend_address,
                                         double seconds) {
  BackEndState* backend = resolve_unique(backend_address);
  if (backend) {
    report_response_time(backend->entry.address, backend->entry.port, seconds);
  }
}

void ServiceSwitch::report_response_time(net::Ipv4Address backend_address,
                                         int port, double seconds) {
  BackEndState* backend = find(backend_address, port);
  if (backend) {
    policy_->on_response_time(
        static_cast<std::uint32_t>(backend - backends_.data()), backend->entry,
        seconds);
  }
}

void ServiceSwitch::report_backend_failure(net::Ipv4Address backend_address,
                                           int port) {
  BackEndState* backend = find(backend_address, port);
  if (!backend) return;
  backend->healthy = false;
  touch();
  if (backend->active_connections > 0) --backend->active_connections;
}

Result<BackEndEntry> ServiceSwitch::route_failover(const BackEndEntry& dead,
                                                   std::string_view component) {
  report_backend_failure(dead.address, dead.port);
  auto retried = route(component);
  if (retried.ok()) ++failovers_;
  return retried;
}

std::string ServiceSwitch::config_text() const {
  ServiceConfigFile file;
  for (const auto& backend : backends_) must(file.add(backend.entry));
  return file.serialize();
}

std::uint64_t ServiceSwitch::routed_to(net::Ipv4Address backend_address) const {
  std::uint64_t total = 0;
  for (const auto& backend : backends_) {
    if (backend.entry.address == backend_address) total += backend.requests_routed;
  }
  return total;
}

std::uint64_t ServiceSwitch::routed_to(net::Ipv4Address backend_address,
                                       int port) const {
  for (const auto& backend : backends_) {
    if (backend.entry.address == backend_address && backend.entry.port == port) {
      return backend.requests_routed;
    }
  }
  return 0;
}

void ServiceSwitch::save_state(snapshot::Writer& writer) const {
  writer.begin_section("switch");
  writer.u32(listen_.value());
  writer.i64(port_);
  writer.u64(backends_.size());
  for (const BackEndState& backend : backends_) {
    writer.u32(backend.entry.address.value());
    writer.i64(backend.entry.port);
    writer.i64(backend.entry.capacity);
    writer.str(backend.entry.component);
    writer.u64(backend.requests_routed);
    writer.u64(backend.active_connections);
    writer.boolean(backend.healthy);
    writer.boolean(backend.draining);
  }
  writer.u64(routes_.size());
  for (const PrefixRoute& route : routes_) {
    writer.str(route.prefix);
    writer.str(route.component);
  }
  writer.u64(route_order_.size());
  for (const std::uint32_t index : route_order_) writer.u32(index);
  writer.str(policy_->name());
  policy_->save_state(writer);
  writer.u64(epoch_);
  writer.u64(routed_);
  writer.u64(refused_);
  writer.u64(failovers_);
  writer.end_section();
}

void ServiceSwitch::load_state(snapshot::Reader& reader) {
  reader.begin_section("switch");
  listen_ = net::Ipv4Address{reader.u32()};
  port_ = static_cast<int>(reader.i64());
  backends_.clear();
  const std::uint64_t backend_count = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < backend_count; ++i) {
    BackEndState backend;
    backend.entry.address = net::Ipv4Address{reader.u32()};
    backend.entry.port = static_cast<int>(reader.i64());
    backend.entry.capacity = static_cast<int>(reader.i64());
    backend.entry.component = reader.str();
    backend.requests_routed = reader.u64();
    backend.active_connections = reader.u64();
    backend.healthy = reader.boolean();
    backend.draining = reader.boolean();
    backends_.push_back(std::move(backend));
  }
  routes_.clear();
  const std::uint64_t route_count = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < route_count; ++i) {
    PrefixRoute route;
    route.prefix = reader.str();
    route.component = reader.str();
    routes_.push_back(std::move(route));
  }
  route_order_.clear();
  const std::uint64_t order_count = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < order_count; ++i) {
    route_order_.push_back(reader.u32());
  }
  const std::string policy_name = reader.str();
  if (reader.ok()) {
    auto policy = make_switch_policy_by_name(policy_name);
    if (!policy.ok()) {
      reader.fail("cannot restore switch policy '" + policy_name +
                  "' (custom policies are not checkpointable)");
      return;
    }
    policy_ = std::move(policy.value());
  }
  policy_->load_state(reader);
  epoch_ = reader.u64();
  routed_ = reader.u64();
  refused_ = reader.u64();
  failovers_ = reader.u64();
  // The routable snapshots are cache: force a deterministic lazy rebuild.
  snapshots_.clear();
  snapshot_epoch_ = epoch_ - 1;
  reader.end_section();
}

}  // namespace soda::core
