// Failure detection & recovery, extracted from the Master behind a narrow
// view of its service table. The detector declares hosts dead when their
// heartbeats lapse (or an active probe finds them down), strips the lost
// placements, rehomes switches off dead colocation nodes, and re-creates
// lost capacity on surviving hosts through the shared planner and priming
// coordinator. Every state change publishes into the control-plane bus.
//
// Fleet-scale detector (DESIGN.md §11): instead of the seed's per-check
// O(all-hosts) scan over a name-keyed map, deadlines live in a HostId-dense
// vector and hosts hang in a bucketed timer wheel (granularity = one
// heartbeat interval). A heartbeat just overwrites the host's deadline;
// wheel entries are reconciled lazily when their bucket expires — reinsert
// at the true deadline or declare the host dead — so a check costs
// O(expiring hosts), not O(fleet), and steady state allocates nothing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/events.hpp"
#include "core/ids.hpp"
#include "core/placement.hpp"
#include "core/priming.hpp"
#include "image/distributor.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "snapshot/format.hpp"

namespace soda::core {

struct ServiceRecord;
class ServiceTable;

/// Failure-detector tuning. The Master declares a host dead when no
/// heartbeat arrived for `timeout` (several missed intervals, so one late
/// heartbeat does not flap the host).
struct FailureDetectorConfig {
  sim::SimTime heartbeat_interval = sim::SimTime::milliseconds(250);
  sim::SimTime timeout = sim::SimTime::seconds(1);
};

/// The narrow interface the recovery subsystem holds onto the Master: its
/// service table, daemon list, down-host bitset, and chunk registry — all
/// by reference, so recovery always operates on the live control plane.
struct ControlPlaneView {
  ServiceTable& services;
  const std::vector<SodaDaemon*>& daemons;
  HostSet& down_hosts;
  image::ChunkRegistry& chunk_registry;
};

class RecoveryManager {
 public:
  RecoveryManager(sim::Engine& engine, ControlPlaneView view,
                  const PlacementPlanner& planner,
                  PrimingCoordinator& priming, ControlPlaneBus& bus);
  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Arms the timeout-based detector: every registered daemon is considered
  /// heard-from now; check_once() declares any host silent for
  /// `config.timeout` dead.
  void enable(FailureDetectorConfig config);

  /// Starts the periodic detector loop (arms detection first if needed).
  void start(FailureDetectorConfig config);
  void stop() noexcept { running_ = false; }

  /// A daemon registered after enable(): arm it as heard-from now (the seed
  /// left late registrations with a zero heartbeat stamp, instantly dead).
  void on_host_registered(SodaDaemon& daemon);

  /// Heartbeat sink. O(1): overwrites the host's deadline (the wheel entry
  /// is reconciled lazily). A heartbeat from a host previously declared
  /// dead brings it back (host-up) and re-attempts recovery of every
  /// degraded service.
  void on_heartbeat(SodaDaemon& daemon, sim::SimTime now);

  /// One timeout sweep; returns the number of hosts newly declared dead.
  /// Cost is proportional to the hosts whose wheel buckets came due, not to
  /// the fleet.
  std::size_t check_once();

  /// Active-probe variant: polls each daemon's liveness directly; detects
  /// both failures and recoveries. Returns hosts whose state changed.
  std::size_t poll_once();

  /// Re-attempts recovery of every service currently Degraded. Covers the
  /// liveness gap where a failed recovery attempt (e.g. priming died on a
  /// host that crashed mid-recovery) leaves a service degraded with no
  /// event left to retrigger it until the next host transition. Returns the
  /// number of services retried.
  std::size_t retry_recoveries();

  // --- Checkpoint / restore ------------------------------------------------

  [[nodiscard]] bool running() const noexcept { return running_; }
  /// Absolute time of the next detector tick (valid while running).
  [[nodiscard]] sim::SimTime tick_next() const noexcept { return tick_next_; }
  /// Engine id of the pending detector tick (valid while running).
  [[nodiscard]] sim::EventId tick_event() const noexcept { return tick_event_; }
  /// Re-arms the detector tick at the absolute time saved in the
  /// checkpoint's timers section (load_state does not schedule).
  void rearm_tick_at(sim::SimTime when);

  /// Checkpoints the detector: config, deadline wheel, and counters. The
  /// pending tick itself travels through the owner's timers section.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }
  [[nodiscard]] std::uint64_t host_failures() const noexcept {
    return host_failures_;
  }
  [[nodiscard]] std::uint64_t placements_lost() const noexcept {
    return placements_lost_;
  }
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_;
  }

 private:
  void tick();
  /// Stamps `id`'s deadline at now + timeout and hangs it in the wheel
  /// (no-op for hosts already hanging — the deadline alone moves).
  void arm_host(HostId id, sim::SimTime now);
  [[nodiscard]] std::size_t bucket_of(sim::SimTime deadline) const noexcept;
  /// Declares `daemon`'s host dead: strips its placements from every
  /// service (switch backends included), degrades affected services, then
  /// attempts to re-create the lost capacity on surviving hosts.
  void handle_host_failure(SodaDaemon& daemon);
  /// A dead host came back (heartbeat resumed or probe saw it alive).
  void handle_host_recovery(SodaDaemon& daemon);
  /// Re-creates as much of a degraded service's lost capacity as fits on
  /// live hosts; transitions Degraded -> Running when fully restored.
  void attempt_recovery(const std::string& service_name);
  /// Keeps the switch's colocation endpoint pointing at a live node.
  void maybe_rehome_switch(ServiceRecord& record);
  void finish_if_restored(ServiceRecord& record);

  sim::Engine& engine_;
  ControlPlaneView view_;
  const PlacementPlanner& planner_;
  PrimingCoordinator& priming_;
  ControlPlaneBus& bus_;

  bool enabled_ = false;
  bool running_ = false;
  FailureDetectorConfig config_;

  // Deadline wheel, all indexed by HostId where applicable. Ticks count
  // heartbeat intervals since simulation start; a bucket holds the hosts
  // whose (possibly stale) hang tick maps to it — the authoritative expiry
  // is always deadline_.
  std::vector<sim::SimTime> deadline_;     // HostId -> true expiry instant
  std::vector<std::uint8_t> in_wheel_;     // HostId -> hanging in a bucket?
  std::vector<std::vector<std::uint32_t>> wheel_;  // bucket -> HostId values
  std::uint64_t cursor_tick_ = 0;          // next tick to drain
  std::vector<std::uint32_t> expired_;     // scratch, reused per check
  std::vector<std::uint32_t> drain_;       // scratch bucket being drained

  sim::SimTime tick_next_ = sim::SimTime::zero();
  sim::EventId tick_event_{};

  std::uint64_t host_failures_ = 0;
  std::uint64_t placements_lost_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace soda::core
