// The HUP façade: assembles a complete hosting utility platform — engine,
// LAN, hosts with daemons and shapers, repositories, client machines, the
// SODA Master and Agent — so examples and benches build a testbed in a few
// lines. The default LAN mirrors the paper's: a 100 Mbps switched network.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/daemon.hpp"
#include "core/master.hpp"
#include "core/monitor.hpp"
#include "core/trace.hpp"
#include "host/host.hpp"
#include "image/repository.hpp"
#include "net/flow_network.hpp"
#include "net/shaper.hpp"
#include "sim/engine.hpp"

namespace soda::core {

/// LAN parameters of the platform (defaults mirror the paper's 100 Mbps
/// departmental network).
struct LanConfig {
  double mbps = 100;
  sim::SimTime latency = sim::SimTime::microseconds(100);
};

/// Everything needed to run SODA experiments, wired and owned in one place.
class Hup {
 public:
  explicit Hup(MasterConfig master_config = {}, LanConfig lan = {});
  /// Federation constructor: this HUP becomes one site of a wide-area
  /// deployment, sharing `engine` and `network` with its peers. `site_name`
  /// prefixes the LAN switch node.
  Hup(sim::Engine& engine, net::FlowNetwork& network, std::string site_name,
      MasterConfig master_config = {}, LanConfig lan = {});
  Hup(const Hup&) = delete;
  Hup& operator=(const Hup&) = delete;

  /// Adds a HUP host: attaches it to the LAN, gives it an IP pool of
  /// `pool_size` addresses starting at `pool_start`, and starts its daemon
  /// (registered with the Master).
  host::HupHost& add_host(host::HostSpec spec, net::Ipv4Address pool_start,
                          std::size_t pool_size = 16);

  /// Adds an ASP image repository machine on the LAN.
  image::ImageRepository& add_repository(const std::string& name);

  /// Adds a client machine on the LAN; returns its network node.
  net::NodeId add_client(const std::string& name);

  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] net::FlowNetwork& network() noexcept { return *network_; }
  [[nodiscard]] net::NodeId lan_switch() const noexcept { return lan_switch_; }
  [[nodiscard]] SodaMaster& master() noexcept { return *master_; }
  [[nodiscard]] SodaAgent& agent() noexcept { return *agent_; }
  /// The HUP's health monitor (created lazily; call start() to enable the
  /// periodic probing loop).
  [[nodiscard]] HealthMonitor& health_monitor();

  /// The control-plane event trace (always on; bounded).
  [[nodiscard]] TraceLog& trace() noexcept { return *trace_; }

  [[nodiscard]] host::HupHost* find_host(const std::string& name);
  [[nodiscard]] SodaDaemon* find_daemon(const std::string& host_name);
  [[nodiscard]] net::TrafficShaper* find_shaper(const std::string& host_name);
  [[nodiscard]] std::size_t host_count() const noexcept { return hosts_.size(); }

  // --- Failure handling ----------------------------------------------------

  /// Wires the failure detector end to end: every daemon heartbeats into the
  /// Master, and the Master's periodic timeout sweep runs. The loops keep
  /// the event queue non-empty — drive the simulation with run_until.
  void enable_failure_detection(FailureDetectorConfig config = {});

  /// Fail-stop host crash: kills every guest on the host and releases its
  /// resources; detection/recovery is the Master's job. No-ops when unknown.
  void crash_host(const std::string& host_name);
  /// The crashed host reboots empty and its daemon resumes heartbeating.
  void recover_host(const std::string& host_name);

  /// Scales a host's LAN uplink to `factor` x its base NIC rate in both
  /// directions (slow-host / lossy-link injection; 1.0 restores it).
  void scale_host_uplink(const std::string& host_name, double factor);

  // --- Checkpoint / restore (DESIGN.md §14) --------------------------------

  /// Checkpoints the whole world into `writer`: clock, network, hosts
  /// (guests included), repositories, control plane, and a timers section
  /// that accounts for every pending engine event. Fails (returned Status)
  /// when the world is not quiesced — i.e. the engine holds pending events
  /// other than the periodic heartbeat/detector/monitor ticks, which are the
  /// only events a checkpoint can re-arm.
  Status save_state(snapshot::Writer& writer) const;

  /// Restores a world saved by save_state into this (freshly constructed,
  /// never-run) Hup: the construction config must match the saved one and no
  /// hosts/repositories/clients may have been added. Reconstructs hosts,
  /// guests, and repositories, reloads every subsystem wholesale, restores
  /// the clock, and re-arms the saved timers in their saved heap order so a
  /// continued run is bit-identical to an uninterrupted one.
  void load_state(snapshot::Reader& reader);

  /// Whole-snapshot convenience: versioned bytes, checksum appended.
  Result<std::string> save_snapshot() const;
  Status load_snapshot(std::string_view bytes);
  /// File-backed variants (atomic write; clear errors on version skew).
  Status save_snapshot_file(const std::string& path) const;
  Status load_snapshot_file(const std::string& path);

  /// FNV-1a digest of the world's snapshot bytes: two worlds are
  /// bit-identical exactly when their digests are (the save→load→continue
  /// gate value).
  [[nodiscard]] Result<std::uint64_t> state_digest() const;

  /// The paper's two-host testbed (§4): seattle + tacoma + one ASP
  /// repository ("asp-repo") + one client machine ("client-0").
  struct PaperTestbed {
    std::unique_ptr<Hup> hup;
    image::ImageRepository* repo;
    net::NodeId client;
  };
  static PaperTestbed paper_testbed(MasterConfig master_config = {});

 private:
  struct HostBundle {
    std::unique_ptr<host::HupHost> host;
    std::unique_ptr<net::TrafficShaper> shaper;
    std::unique_ptr<SodaDaemon> daemon;
    /// The host<->LAN-switch link pair and its nominal rate, kept so fault
    /// injection can degrade and restore the uplink.
    std::pair<net::LinkId, net::LinkId> uplink;
    double uplink_mbps = 0;
  };

  // Owned in standalone mode; null when attached to a federation's world.
  std::unique_ptr<sim::Engine> owned_engine_;
  std::unique_ptr<net::FlowNetwork> owned_network_;
  sim::Engine* engine_ = nullptr;
  net::FlowNetwork* network_ = nullptr;
  LanConfig lan_;
  net::NodeId lan_switch_;
  std::map<std::string, HostBundle> hosts_;
  std::vector<std::unique_ptr<image::ImageRepository>> repositories_;
  std::unique_ptr<TraceLog> trace_;
  std::unique_ptr<SodaMaster> master_;
  std::unique_ptr<SodaAgent> agent_;
  std::unique_ptr<HealthMonitor> monitor_;
};

}  // namespace soda::core
