#include "core/recovery.hpp"

#include <algorithm>

#include "core/master.hpp"
#include "util/contract.hpp"
#include "util/log.hpp"

namespace soda::core {

RecoveryManager::RecoveryManager(sim::Engine& engine, ControlPlaneView view,
                                 const PlacementPlanner& planner,
                                 PrimingCoordinator& priming,
                                 ControlPlaneBus& bus)
    : engine_(engine), view_(view), planner_(planner), priming_(priming),
      bus_(bus) {}

void RecoveryManager::enable(FailureDetectorConfig config) {
  SODA_EXPECTS(config.heartbeat_interval > sim::SimTime::zero());
  SODA_EXPECTS(config.timeout >= config.heartbeat_interval);
  config_ = config;
  enabled_ = true;
  // Wheel geometry: one bucket per heartbeat interval, spanning a little
  // more than the timeout so any deadline armed "now" lands in a bucket
  // that has not been drained yet.
  const auto granularity = static_cast<std::uint64_t>(
      config_.heartbeat_interval.ns());
  const std::size_t buckets = static_cast<std::size_t>(
      static_cast<std::uint64_t>(config_.timeout.ns()) / granularity + 2);
  wheel_.assign(buckets, {});
  deadline_.assign(view_.daemons.size(), sim::SimTime::zero());
  in_wheel_.assign(view_.daemons.size(), 0);
  const sim::SimTime now = engine_.now();
  cursor_tick_ = static_cast<std::uint64_t>(now.ns()) / granularity;
  // Every registered host counts as heard-from now, so an idle HUP does not
  // mass-expire at the first check.
  for (const SodaDaemon* daemon : view_.daemons) {
    arm_host(daemon->host_id(), now);
  }
}

void RecoveryManager::start(FailureDetectorConfig config) {
  if (!enabled_) enable(config);
  if (running_) return;
  running_ = true;
  tick_next_ = engine_.now() + config_.heartbeat_interval;
  tick_event_ =
      engine_.schedule_after(config_.heartbeat_interval, [this] { tick(); });
}

void RecoveryManager::tick() {
  // Deliberately untagged: the detector sweep reads every host's freshness
  // and can trigger Master-wide recovery placement, so under a sharded
  // engine it must stay a serial barrier. The schedule-sequence position of
  // the barrier is preserved exactly (DESIGN.md §15).
  if (!running_) return;
  check_once();
  tick_next_ = engine_.now() + config_.heartbeat_interval;
  tick_event_ =
      engine_.schedule_after(config_.heartbeat_interval, [this] { tick(); });
}

void RecoveryManager::rearm_tick_at(sim::SimTime when) {
  SODA_EXPECTS(running_);
  tick_next_ = when;
  tick_event_ = engine_.schedule_at(when, [this] { tick(); });
}

void RecoveryManager::save_state(snapshot::Writer& writer) const {
  writer.begin_section("recovery");
  writer.boolean(enabled_);
  writer.boolean(running_);
  writer.time(config_.heartbeat_interval);
  writer.time(config_.timeout);
  writer.u64(deadline_.size());
  for (const sim::SimTime deadline : deadline_) writer.time(deadline);
  for (const std::uint8_t hanging : in_wheel_) writer.u8(hanging);
  writer.u64(wheel_.size());
  for (const std::vector<std::uint32_t>& bucket : wheel_) {
    writer.u64(bucket.size());
    for (const std::uint32_t id : bucket) writer.u32(id);
  }
  writer.u64(cursor_tick_);
  writer.u64(host_failures_);
  writer.u64(placements_lost_);
  writer.u64(recoveries_);
  writer.end_section();
}

void RecoveryManager::load_state(snapshot::Reader& reader) {
  reader.begin_section("recovery");
  enabled_ = reader.boolean();
  running_ = reader.boolean();
  config_.heartbeat_interval = reader.time();
  config_.timeout = reader.time();
  const std::uint64_t hosts = reader.u64();
  deadline_.clear();
  in_wheel_.clear();
  for (std::uint64_t i = 0; reader.ok() && i < hosts; ++i) {
    deadline_.push_back(reader.time());
  }
  for (std::uint64_t i = 0; reader.ok() && i < hosts; ++i) {
    in_wheel_.push_back(reader.u8());
  }
  const std::uint64_t buckets = reader.u64();
  wheel_.clear();
  for (std::uint64_t i = 0; reader.ok() && i < buckets; ++i) {
    std::vector<std::uint32_t>& bucket = wheel_.emplace_back();
    const std::uint64_t entries = reader.u64();
    for (std::uint64_t j = 0; reader.ok() && j < entries; ++j) {
      bucket.push_back(reader.u32());
    }
  }
  cursor_tick_ = reader.u64();
  host_failures_ = reader.u64();
  placements_lost_ = reader.u64();
  recoveries_ = reader.u64();
  reader.end_section();
}

void RecoveryManager::on_host_registered(SodaDaemon& daemon) {
  if (!enabled_) return;
  const HostId id = daemon.host_id();
  if (id.index() >= deadline_.size()) {
    deadline_.resize(id.index() + 1, sim::SimTime::zero());
    in_wheel_.resize(id.index() + 1, 0);
  }
  arm_host(id, engine_.now());
}

std::size_t RecoveryManager::bucket_of(sim::SimTime deadline) const noexcept {
  const auto granularity = static_cast<std::uint64_t>(
      config_.heartbeat_interval.ns());
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(deadline.ns()) / granularity) %
      wheel_.size());
}

void RecoveryManager::arm_host(HostId id, sim::SimTime now) {
  deadline_[id.index()] = now + config_.timeout;
  if (in_wheel_[id.index()] != 0) return;  // bucket hint stays; deadline moved
  wheel_[bucket_of(deadline_[id.index()])].push_back(id.value);
  in_wheel_[id.index()] = 1;
}

void RecoveryManager::on_heartbeat(SodaDaemon& daemon, sim::SimTime now) {
  if (enabled_) arm_host(daemon.host_id(), now);
  if (view_.down_hosts.test(daemon.host_id())) handle_host_recovery(daemon);
}

std::size_t RecoveryManager::check_once() {
  SODA_EXPECTS(enabled_);
  const sim::SimTime now = engine_.now();
  const auto granularity = static_cast<std::uint64_t>(
      config_.heartbeat_interval.ns());
  const std::uint64_t now_tick = static_cast<std::uint64_t>(now.ns()) /
                                 granularity;
  expired_.clear();
  while (cursor_tick_ <= now_tick) {
    std::vector<std::uint32_t>& bucket = wheel_[static_cast<std::size_t>(
        cursor_tick_ % wheel_.size())];
    drain_.clear();
    drain_.swap(bucket);  // capacities ping-pong; steady state allocates none
    for (const std::uint32_t raw : drain_) {
      const HostId id{raw};
      in_wheel_[id.index()] = 0;
      if (view_.down_hosts.test(id)) continue;  // unhung until it recovers
      const sim::SimTime deadline = deadline_[id.index()];
      if (deadline <= now) {
        expired_.push_back(raw);
        continue;
      }
      // Heard from since it was hung: reinsert at the true deadline (never
      // into a tick this pass already drained).
      std::uint64_t tick = static_cast<std::uint64_t>(deadline.ns()) /
                           granularity;
      if (tick <= cursor_tick_) tick = cursor_tick_ + 1;
      wheel_[static_cast<std::size_t>(tick % wheel_.size())].push_back(raw);
      in_wheel_[id.index()] = 1;
    }
    ++cursor_tick_;
  }
  // Registration order (== HostId order), exactly how the seed's linear scan
  // declared deaths — the recovery trace is pinned to it.
  std::sort(expired_.begin(), expired_.end());
  for (const std::uint32_t raw : expired_) {
    handle_host_failure(*view_.daemons[HostId{raw}.index()]);
  }
  return expired_.size();
}

std::size_t RecoveryManager::poll_once() {
  std::size_t changed = 0;
  for (SodaDaemon* daemon : view_.daemons) {
    const bool marked_down = view_.down_hosts.test(daemon->host_id());
    if (!daemon->alive() && !marked_down) {
      handle_host_failure(*daemon);
      ++changed;
    } else if (daemon->alive() && marked_down) {
      handle_host_recovery(*daemon);
      ++changed;
    }
  }
  return changed;
}

void RecoveryManager::handle_host_failure(SodaDaemon& daemon) {
  const HostId id = daemon.host_id();
  if (view_.down_hosts.test(id)) return;
  view_.down_hosts.set(id);
  const std::string& host = daemon.host_name();
  ++host_failures_;
  util::global_logger().warn("master", "host " + host + " declared dead");
  bus_.publish(engine_.now(), TraceKind::kHostDown, "master", host);
  // The crashed host's chunks are unreachable: purge them from the registry
  // so peers stop selecting it and fail over their in-flight transfers.
  view_.chunk_registry.remove_host(host);

  std::vector<std::string> degraded;
  view_.services.for_each([&](const std::string& name, ServiceRecord& record) {
    bool lost_any = false;
    int units_lost = 0;
    for (auto p_it = record.placements.begin();
         p_it != record.placements.end();) {
      if (p_it->daemon != &daemon) {
        ++p_it;
        continue;
      }
      lost_any = true;
      units_lost += p_it->units;
      ++placements_lost_;
      bus_.publish(engine_.now(), TraceKind::kNodeLost, "master",
                   p_it->node_name, "host " + host + " down");
      auto d_it = std::find_if(record.nodes.begin(), record.nodes.end(),
                               [&](const NodeDescriptor& d) {
                                 return d.node_name == p_it->node_name;
                               });
      if (d_it != record.nodes.end()) {
        if (record.service_switch) {
          // The backend may still be mid-priming and absent from the switch.
          (void)record.service_switch->remove_backend(d_it->address,
                                                      d_it->port);
        }
        record.nodes.erase(d_it);
      }
      p_it = record.placements.erase(p_it);
    }
    if (!lost_any) return;
    maybe_rehome_switch(record);
    if (record.lifecycle.state() == ServiceState::kRunning) {
      must(record.lifecycle.transition(ServiceState::kDegraded));
      bus_.publish(engine_.now(), TraceKind::kDegraded, "master", name,
                   std::to_string(units_lost) + " unit(s) lost with " + host);
    }
    if (record.lifecycle.state() == ServiceState::kDegraded) {
      degraded.push_back(name);
    }
  });
  for (const std::string& name : degraded) attempt_recovery(name);
}

void RecoveryManager::handle_host_recovery(SodaDaemon& daemon) {
  const HostId id = daemon.host_id();
  if (!view_.down_hosts.test(id)) return;
  view_.down_hosts.reset(id);
  if (enabled_) arm_host(id, engine_.now());
  util::global_logger().info("master",
                             "host " + daemon.host_name() + " is back");
  bus_.publish(engine_.now(), TraceKind::kHostUp, "master", daemon.host_name());
  // The returned capacity may complete recoveries that were stuck short.
  std::vector<std::string> degraded;
  view_.services.for_each(
      [&](const std::string& name, const ServiceRecord& record) {
        if (record.lifecycle.state() == ServiceState::kDegraded) {
          degraded.push_back(name);
        }
      });
  for (const std::string& name : degraded) attempt_recovery(name);
}

std::size_t RecoveryManager::retry_recoveries() {
  std::vector<std::string> degraded;
  view_.services.for_each(
      [&](const std::string& name, const ServiceRecord& record) {
        if (record.lifecycle.state() == ServiceState::kDegraded) {
          degraded.push_back(name);
        }
      });
  for (const std::string& name : degraded) attempt_recovery(name);
  return degraded.size();
}

void RecoveryManager::maybe_rehome_switch(ServiceRecord& record) {
  if (!record.service_switch || record.nodes.empty()) return;
  const net::Ipv4Address listen = record.service_switch->listen_address();
  for (const NodeDescriptor& node : record.nodes) {
    if (node.address == listen) return;  // colocation node is still alive
  }
  // Deterministic choice: the surviving node with the smallest name.
  const NodeDescriptor* front = &record.nodes.front();
  for (const NodeDescriptor& node : record.nodes) {
    if (node.node_name < front->node_name) front = &node;
  }
  record.service_switch->rehome(front->address, record.listen_port);
  bus_.publish(engine_.now(), TraceKind::kSwitchCreated, "master",
               record.service_name,
               "rehomed to " + front->address.to_string() + ":" +
                   std::to_string(record.listen_port));
}

void RecoveryManager::finish_if_restored(ServiceRecord& record) {
  // Only booted placements count toward "restored": a placement exists from
  // the moment recovery plans it, but its capacity is real only once the
  // node descriptor lands. Declaring kRunning on an in-flight placement
  // strands the service at reduced capacity if that priming later fails.
  const auto booted = [&](const Placement& p) {
    return std::any_of(record.nodes.begin(), record.nodes.end(),
                       [&](const NodeDescriptor& d) {
                         return d.node_name == p.node_name;
                       });
  };
  bool restored;
  if (!record.components.empty()) {
    restored = std::all_of(
        record.components.begin(), record.components.end(),
        [&](const image::ServiceComponent& component) {
          return std::any_of(record.placements.begin(),
                             record.placements.end(),
                             [&](const Placement& p) {
                               return p.component == component.name &&
                                      booted(p);
                             });
        });
  } else {
    int have = 0;
    for (const Placement& p : record.placements) {
      if (booted(p)) have += p.units;
    }
    restored = have >= record.requirement.n;
  }
  if (restored && record.lifecycle.state() == ServiceState::kDegraded) {
    must(record.lifecycle.transition(ServiceState::kRunning));
    ++recoveries_;
    bus_.publish(engine_.now(), TraceKind::kRecovered, "master",
                 record.service_name,
                 std::to_string(record.nodes.size()) + " node(s)");
    util::global_logger().info(
        "master", record.service_name + " recovered to full capacity");
  }
}

void RecoveryManager::attempt_recovery(const std::string& service_name) {
  ServiceRecord* found = view_.services.find(service_name);
  if (found == nullptr) return;
  ServiceRecord& record = *found;
  if (record.lifecycle.state() != ServiceState::kDegraded ||
      !record.service_switch) {
    return;
  }

  // Re-run admission for the lost capacity on the surviving hosts.
  std::vector<Placement> plan;
  if (!record.components.empty()) {
    std::vector<image::ServiceComponent> lost;
    for (const auto& component : record.components) {
      if (std::none_of(record.placements.begin(), record.placements.end(),
                       [&](const Placement& p) {
                         return p.component == component.name;
                       })) {
        lost.push_back(component);
      }
    }
    if (lost.empty()) {
      finish_if_restored(record);
      return;
    }
    auto planned = planner_.plan_components(record.requirement.m, lost);
    if (!planned.ok()) return;  // no host fits: stay degraded
    plan = std::move(planned).value();
  } else {
    const host::ResourceVector unit =
        planner_.inflated_unit(record.requirement.m);
    int have = 0;
    for (const Placement& p : record.placements) have += p.units;
    int missing = record.requirement.n - have;
    if (missing <= 0) {
      finish_if_restored(record);
      return;
    }
    for (SodaDaemon* daemon : planner_.ordered_daemons()) {
      if (missing == 0) break;
      const bool used = std::any_of(
          record.placements.begin(), record.placements.end(),
          [&](const Placement& p) { return p.daemon == daemon; });
      if (used) continue;
      const int k = std::min(units_that_fit(daemon->available(), unit), missing);
      if (k >= 1) {
        plan.push_back(Placement{daemon, "", k});
        missing -= k;
      }
    }
    // Whatever fits is re-created now; a later host-up retries the rest.
    if (plan.empty()) return;
  }

  std::vector<std::string> batch;
  batch.reserve(plan.size());
  for (Placement& placement : plan) {
    placement.node_name =
        service_name + "/" + std::to_string(record.next_ordinal++);
    batch.push_back(placement.node_name);
    record.placements.push_back(placement);
  }
  util::global_logger().info(
      "master", "recovering " + service_name + ": re-priming " +
                    std::to_string(plan.size()) + " node(s)");

  PrimeSpec spec;
  spec.service_name = service_name;
  spec.location = record.image_location;
  spec.unit = record.requirement.m;
  spec.inflated_unit = planner_.inflated_unit(record.requirement.m);
  spec.listen_port = record.listen_port;
  spec.components = &record.components;
  spec.customize_rootfs = record.customize_rootfs;
  spec.address_mode = record.address_mode;
  priming_.prime(
      std::move(plan), spec,
      [this, name = service_name](vm::VirtualServiceNode& node,
                                  sim::SimTime) {
        ServiceRecord* rec = view_.services.find(name);
        if (rec == nullptr) return;  // torn down meanwhile
        const NodeDescriptor descriptor = describe_node(node, rec->listen_port);
        must(rec->service_switch->add_backend(BackEndEntry{
            descriptor.address, descriptor.port, descriptor.capacity_units,
            descriptor.component}));
        rec->nodes.push_back(descriptor);
      },
      [this, name = service_name, batch = std::move(batch)](
          const PrimingCoordinator::Outcome& outcome, sim::SimTime) {
        ServiceRecord* rec = view_.services.find(name);
        if (rec == nullptr) return;  // torn down meanwhile
        if (outcome.failed) {
          // Drop this batch's placements whose re-priming never produced a
          // node; the service stays degraded with whatever did come up.
          // Only this batch's names: a concurrent recovery attempt (crash,
          // recover, crash again) may still be priming its own placements,
          // and those legitimately have no node yet.
          auto& placements = rec->placements;
          placements.erase(
              std::remove_if(placements.begin(), placements.end(),
                             [&](const Placement& p) {
                               return std::find(batch.begin(), batch.end(),
                                                p.node_name) != batch.end() &&
                                      std::none_of(
                                          rec->nodes.begin(), rec->nodes.end(),
                                          [&](const NodeDescriptor& d) {
                                            return d.node_name == p.node_name;
                                          });
                             }),
              placements.end());
          util::global_logger().warn(
              "master", name + " recovery incomplete: " + outcome.first_error);
        }
        maybe_rehome_switch(*rec);
        finish_if_restored(*rec);
      });
}

}  // namespace soda::core
