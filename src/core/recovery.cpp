#include "core/recovery.hpp"

#include <algorithm>

#include "core/master.hpp"
#include "util/contract.hpp"
#include "util/log.hpp"

namespace soda::core {

RecoveryManager::RecoveryManager(sim::Engine& engine, ControlPlaneView view,
                                 const PlacementPlanner& planner,
                                 PrimingCoordinator& priming,
                                 ControlPlaneBus& bus)
    : engine_(engine), view_(view), planner_(planner), priming_(priming),
      bus_(bus) {}

void RecoveryManager::enable(FailureDetectorConfig config) {
  SODA_EXPECTS(config.heartbeat_interval > sim::SimTime::zero());
  SODA_EXPECTS(config.timeout >= config.heartbeat_interval);
  config_ = config;
  enabled_ = true;
  // Every registered host counts as heard-from now, so an idle HUP does not
  // mass-expire at the first check.
  for (const SodaDaemon* daemon : view_.daemons) {
    last_heartbeat_[daemon->host_name()] = engine_.now();
  }
}

void RecoveryManager::start(FailureDetectorConfig config) {
  if (!enabled_) enable(config);
  if (running_) return;
  running_ = true;
  engine_.schedule_after(config_.heartbeat_interval, [this] { tick(); });
}

void RecoveryManager::tick() {
  if (!running_) return;
  check_once();
  engine_.schedule_after(config_.heartbeat_interval, [this] { tick(); });
}

void RecoveryManager::on_heartbeat(SodaDaemon& daemon, sim::SimTime now) {
  last_heartbeat_[daemon.host_name()] = now;
  if (view_.down_hosts.count(daemon.host_name())) handle_host_recovery(daemon);
}

std::size_t RecoveryManager::check_once() {
  SODA_EXPECTS(enabled_);
  const sim::SimTime now = engine_.now();
  std::size_t newly_dead = 0;
  for (SodaDaemon* daemon : view_.daemons) {
    if (view_.down_hosts.count(daemon->host_name())) continue;
    const sim::SimTime last = last_heartbeat_[daemon->host_name()];
    if (now - last >= config_.timeout) {
      handle_host_failure(*daemon);
      ++newly_dead;
    }
  }
  return newly_dead;
}

std::size_t RecoveryManager::poll_once() {
  std::size_t changed = 0;
  for (SodaDaemon* daemon : view_.daemons) {
    const bool marked_down = view_.down_hosts.count(daemon->host_name()) > 0;
    if (!daemon->alive() && !marked_down) {
      handle_host_failure(*daemon);
      ++changed;
    } else if (daemon->alive() && marked_down) {
      handle_host_recovery(*daemon);
      ++changed;
    }
  }
  return changed;
}

void RecoveryManager::handle_host_failure(SodaDaemon& daemon) {
  const std::string host = daemon.host_name();
  if (!view_.down_hosts.insert(host).second) return;
  ++host_failures_;
  util::global_logger().warn("master", "host " + host + " declared dead");
  bus_.publish(engine_.now(), TraceKind::kHostDown, "master", host);
  // The crashed host's chunks are unreachable: purge them from the registry
  // so peers stop selecting it and fail over their in-flight transfers.
  view_.chunk_registry.remove_host(host);

  std::vector<std::string> degraded;
  for (auto& [name, record] : view_.services) {
    bool lost_any = false;
    int units_lost = 0;
    for (auto p_it = record.placements.begin();
         p_it != record.placements.end();) {
      if (p_it->daemon != &daemon) {
        ++p_it;
        continue;
      }
      lost_any = true;
      units_lost += p_it->units;
      ++placements_lost_;
      bus_.publish(engine_.now(), TraceKind::kNodeLost, "master",
                   p_it->node_name, "host " + host + " down");
      auto d_it = std::find_if(record.nodes.begin(), record.nodes.end(),
                               [&](const NodeDescriptor& d) {
                                 return d.node_name == p_it->node_name;
                               });
      if (d_it != record.nodes.end()) {
        if (record.service_switch) {
          // The backend may still be mid-priming and absent from the switch.
          (void)record.service_switch->remove_backend(d_it->address,
                                                      d_it->port);
        }
        record.nodes.erase(d_it);
      }
      p_it = record.placements.erase(p_it);
    }
    if (!lost_any) continue;
    maybe_rehome_switch(record);
    if (record.lifecycle.state() == ServiceState::kRunning) {
      must(record.lifecycle.transition(ServiceState::kDegraded));
      bus_.publish(engine_.now(), TraceKind::kDegraded, "master", name,
                   std::to_string(units_lost) + " unit(s) lost with " + host);
    }
    if (record.lifecycle.state() == ServiceState::kDegraded) {
      degraded.push_back(name);
    }
  }
  for (const std::string& name : degraded) attempt_recovery(name);
}

void RecoveryManager::handle_host_recovery(SodaDaemon& daemon) {
  if (view_.down_hosts.erase(daemon.host_name()) == 0) return;
  last_heartbeat_[daemon.host_name()] = engine_.now();
  util::global_logger().info("master",
                             "host " + daemon.host_name() + " is back");
  bus_.publish(engine_.now(), TraceKind::kHostUp, "master", daemon.host_name());
  // The returned capacity may complete recoveries that were stuck short.
  std::vector<std::string> degraded;
  for (const auto& [name, record] : view_.services) {
    if (record.lifecycle.state() == ServiceState::kDegraded) {
      degraded.push_back(name);
    }
  }
  for (const std::string& name : degraded) attempt_recovery(name);
}

void RecoveryManager::maybe_rehome_switch(ServiceRecord& record) {
  if (!record.service_switch || record.nodes.empty()) return;
  const net::Ipv4Address listen = record.service_switch->listen_address();
  for (const NodeDescriptor& node : record.nodes) {
    if (node.address == listen) return;  // colocation node is still alive
  }
  // Deterministic choice: the surviving node with the smallest name.
  const NodeDescriptor* front = &record.nodes.front();
  for (const NodeDescriptor& node : record.nodes) {
    if (node.node_name < front->node_name) front = &node;
  }
  record.service_switch->rehome(front->address, record.listen_port);
  bus_.publish(engine_.now(), TraceKind::kSwitchCreated, "master",
               record.service_name,
               "rehomed to " + front->address.to_string() + ":" +
                   std::to_string(record.listen_port));
}

void RecoveryManager::finish_if_restored(ServiceRecord& record) {
  bool restored;
  if (!record.components.empty()) {
    restored = std::all_of(
        record.components.begin(), record.components.end(),
        [&](const image::ServiceComponent& component) {
          return std::any_of(record.placements.begin(),
                             record.placements.end(),
                             [&](const Placement& p) {
                               return p.component == component.name;
                             });
        });
  } else {
    int have = 0;
    for (const Placement& p : record.placements) have += p.units;
    restored = have >= record.requirement.n;
  }
  if (restored && record.lifecycle.state() == ServiceState::kDegraded) {
    must(record.lifecycle.transition(ServiceState::kRunning));
    ++recoveries_;
    bus_.publish(engine_.now(), TraceKind::kRecovered, "master",
                 record.service_name,
                 std::to_string(record.nodes.size()) + " node(s)");
    util::global_logger().info(
        "master", record.service_name + " recovered to full capacity");
  }
}

void RecoveryManager::attempt_recovery(const std::string& service_name) {
  auto it = view_.services.find(service_name);
  if (it == view_.services.end()) return;
  ServiceRecord& record = it->second;
  if (record.lifecycle.state() != ServiceState::kDegraded ||
      !record.service_switch) {
    return;
  }

  // Re-run admission for the lost capacity on the surviving hosts.
  std::vector<Placement> plan;
  if (!record.components.empty()) {
    std::vector<image::ServiceComponent> lost;
    for (const auto& component : record.components) {
      if (std::none_of(record.placements.begin(), record.placements.end(),
                       [&](const Placement& p) {
                         return p.component == component.name;
                       })) {
        lost.push_back(component);
      }
    }
    if (lost.empty()) {
      finish_if_restored(record);
      return;
    }
    auto planned = planner_.plan_components(record.requirement.m, lost);
    if (!planned.ok()) return;  // no host fits: stay degraded
    plan = std::move(planned).value();
  } else {
    const host::ResourceVector unit =
        planner_.inflated_unit(record.requirement.m);
    int have = 0;
    for (const Placement& p : record.placements) have += p.units;
    int missing = record.requirement.n - have;
    if (missing <= 0) {
      finish_if_restored(record);
      return;
    }
    for (SodaDaemon* daemon : planner_.ordered_daemons()) {
      if (missing == 0) break;
      const bool used = std::any_of(
          record.placements.begin(), record.placements.end(),
          [&](const Placement& p) { return p.daemon == daemon; });
      if (used) continue;
      const int k = std::min(units_that_fit(daemon->available(), unit), missing);
      if (k >= 1) {
        plan.push_back(Placement{daemon, "", k});
        missing -= k;
      }
    }
    // Whatever fits is re-created now; a later host-up retries the rest.
    if (plan.empty()) return;
  }

  for (Placement& placement : plan) {
    placement.node_name =
        service_name + "/" + std::to_string(record.next_ordinal++);
    record.placements.push_back(placement);
  }
  util::global_logger().info(
      "master", "recovering " + service_name + ": re-priming " +
                    std::to_string(plan.size()) + " node(s)");

  PrimeSpec spec;
  spec.service_name = service_name;
  spec.location = record.image_location;
  spec.unit = record.requirement.m;
  spec.inflated_unit = planner_.inflated_unit(record.requirement.m);
  spec.listen_port = record.listen_port;
  spec.components = &record.components;
  spec.customize_rootfs = record.customize_rootfs;
  spec.address_mode = record.address_mode;
  priming_.prime(
      std::move(plan), spec,
      [this, name = service_name](vm::VirtualServiceNode& node,
                                  sim::SimTime) {
        auto record_it = view_.services.find(name);
        if (record_it == view_.services.end()) return;  // torn down meanwhile
        ServiceRecord& rec = record_it->second;
        const NodeDescriptor descriptor = describe_node(node, rec.listen_port);
        must(rec.service_switch->add_backend(BackEndEntry{
            descriptor.address, descriptor.port, descriptor.capacity_units,
            descriptor.component}));
        rec.nodes.push_back(descriptor);
      },
      [this, name = service_name](const PrimingCoordinator::Outcome& outcome,
                                  sim::SimTime) {
        auto record_it = view_.services.find(name);
        if (record_it == view_.services.end()) return;  // torn down meanwhile
        ServiceRecord& rec = record_it->second;
        if (outcome.failed) {
          // Drop the placements whose re-priming never produced a node;
          // the service stays degraded with whatever did come up.
          auto& placements = rec.placements;
          placements.erase(
              std::remove_if(placements.begin(), placements.end(),
                             [&](const Placement& p) {
                               return std::none_of(
                                   rec.nodes.begin(), rec.nodes.end(),
                                   [&](const NodeDescriptor& d) {
                                     return d.node_name == p.node_name;
                                   });
                             }),
              placements.end());
          util::global_logger().warn(
              "master", name + " recovery incomplete: " + outcome.first_error);
        }
        maybe_rehome_switch(rec);
        finish_if_restored(rec);
      });
}

}  // namespace soda::core
