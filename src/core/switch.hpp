// The service switch (paper §3.4): created by the SODA Master for each
// service, colocated in one of its virtual service nodes, it accepts each
// client request and directs it to a backend according to a request-
// switching policy. The default is weighted round-robin with the capacities
// of the configuration file as weights; the ASP can replace it with a
// service-specific policy — and thanks to service isolation, an ill-behaved
// custom policy only hurts its own service.
//
// The request path is an allocation-free data plane (DESIGN.md §10): the
// control plane (add/remove/health/drain mutations) bumps an epoch counter,
// and route() serves from an epoch-cached dense snapshot of routable slot
// indices per component. Policies keep their state in dense per-slot arrays
// indexed by those snapshots, so a steady-state route() never touches the
// allocator.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/config_file.hpp"
#include "net/address.hpp"
#include "sim/random.hpp"
#include "snapshot/format.hpp"
#include "util/result.hpp"

namespace soda::core {

/// Per-backend runtime state visible to policies.
struct BackEndState {
  BackEndEntry entry;
  std::uint64_t requests_routed = 0;
  std::uint64_t active_connections = 0;
  bool healthy = true;
  /// Removal requested while connections were still in flight: the backend
  /// receives no new requests and is erased when the last one completes.
  bool draining = false;
};

/// The dense, allocation-free view a policy picks from: the routable
/// (healthy, non-draining, component-matching) backends of one request, in
/// registration order. Position i of the view maps to backend slot
/// `slot(i)` — an index into ServiceSwitch::backends() — which is what
/// dense per-slot policy state is keyed by.
class RoutableView {
 public:
  RoutableView(const std::vector<BackEndState>& slots,
               const std::uint32_t* index, std::size_t count) noexcept
      : slots_(&slots), index_(index), count_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  /// The backend slot behind view position `i`.
  [[nodiscard]] std::uint32_t slot(std::size_t i) const noexcept {
    return index_[i];
  }
  /// The backend state at view position `i`.
  [[nodiscard]] const BackEndState& operator[](std::size_t i) const noexcept {
    return (*slots_)[index_[i]];
  }
  /// Total number of backend slots (for sizing dense per-slot arrays; slots
  /// outside this view exist but are not routable right now).
  [[nodiscard]] std::size_t slot_count() const noexcept { return slots_->size(); }

 private:
  const std::vector<BackEndState>* slots_;
  const std::uint32_t* index_;
  std::size_t count_;
};

/// A request-switching policy. pick() returns a position into `view`
/// (only routable entries are offered) or nullopt to refuse the request.
/// pick() runs on the per-request path and must not allocate; state lives
/// in dense arrays sized by on_backends_changed().
class SwitchPolicy {
 public:
  virtual ~SwitchPolicy() = default;
  virtual std::optional<std::size_t> pick(const RoutableView& view) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Notification that backend membership or capacities changed (resize);
  /// `slots` is the new backend array in registration order. Stateful
  /// policies re-seed their per-slot arrays here — deterministically, so
  /// serial and parallel replicas of an experiment stay bit-identical.
  /// Health flips do NOT reset policy state (matching the pre-dataplane
  /// behavior: a backend returning from a crash keeps its old weight).
  virtual void on_backends_changed(const std::vector<BackEndState>& slots) {
    (void)slots;
  }
  /// Feedback: a request served by backend slot `slot` (entry `backend`)
  /// completed in `seconds`. Response-time-aware policies learn from this;
  /// others ignore it.
  virtual void on_response_time(std::uint32_t slot, const BackEndEntry& backend,
                                double seconds) {
    (void)slot;
    (void)backend;
    (void)seconds;
  }

  /// Checkpoint hooks. Stateful policies (smooth WRR current weights, the
  /// random policy's RNG stream, EWMA estimates) override both so a restored
  /// switch keeps routing bit-identically; stateless policies inherit the
  /// empty default. Implementations must write/read one "policy_state"
  /// section so the stream stays framed even across policy versions.
  virtual void save_state(snapshot::Writer& writer) const {
    writer.begin_section("policy_state");
    writer.end_section();
  }
  virtual void load_state(snapshot::Reader& reader) {
    reader.begin_section("policy_state");
    reader.end_section();
  }
};

/// Default policy: smooth weighted round-robin over capacities — a backend
/// with capacity 2 receives twice the requests of one with capacity 1, with
/// the interleaving spread evenly (nginx-style smooth WRR).
std::unique_ptr<SwitchPolicy> make_weighted_round_robin();

/// Capacity-blind round-robin (ablation baseline).
std::unique_ptr<SwitchPolicy> make_plain_round_robin();

/// Uniform random choice (ablation baseline).
std::unique_ptr<SwitchPolicy> make_random_policy(std::uint64_t seed);

/// Pick the healthy backend with the fewest active connections, capacity-
/// weighted (ties by order).
std::unique_ptr<SwitchPolicy> make_least_connections();

/// Adaptive policy: tracks an exponentially weighted moving average of each
/// backend's response time (smoothing factor `alpha`) and routes to the
/// backend with the lowest capacity-discounted estimate; backends with no
/// samples yet are explored first.
std::unique_ptr<SwitchPolicy> make_fastest_response(double alpha = 0.2);

/// Name-keyed policy registry shared by the scenario DSL's `switch-policy`
/// verb and the chaos fuzzer: "weighted-round-robin" | "round-robin" |
/// "random" | "least-connections" | "fastest-response". `seed` feeds the
/// random policy only. Errors name the unknown policy.
Result<std::unique_ptr<SwitchPolicy>> make_switch_policy_by_name(
    std::string_view name, std::uint64_t seed = 0x50DA);

/// Wraps an ASP-provided function as a policy (the "service-specific
/// policy" replacement hook). The function receives a materialized copy of
/// the routable backends, so existing ASP policies keep working unchanged;
/// the copy is refilled from a reused buffer, not reallocated per request.
std::unique_ptr<SwitchPolicy> make_custom_policy(
    std::string name,
    std::function<std::optional<std::size_t>(const std::vector<BackEndState>&)> fn);

/// The switch itself. Owns the configuration file and the policy.
class ServiceSwitch {
 public:
  /// `listen` is where clients connect (the address of the node the switch
  /// is colocated in).
  ServiceSwitch(std::string service_name, net::Ipv4Address listen, int port);

  /// Master-side maintenance of the configuration file. Backends are keyed
  /// by (address, port): proxied components of one partitioned service may
  /// share their host's public address on different ports. The port-aware
  /// overloads are canonical; the address-only ones act on the first
  /// matching backend and exist for callers that predate shared addresses.
  Status add_backend(const BackEndEntry& entry);
  Status remove_backend(net::Ipv4Address address);
  /// Removes (address, port). When requests are still in flight the backend
  /// drains instead: it stops receiving new requests immediately and is
  /// erased once its last active connection completes.
  Status remove_backend(net::Ipv4Address address, int port);
  Status set_backend_capacity(net::Ipv4Address address, int capacity);
  Status set_backend_capacity(net::Ipv4Address address, int port, int capacity);
  /// Replaces the whole file (resize bulk update).
  void load_config(const ServiceConfigFile& file);

  /// Marks a backend unhealthy/healthy (failure handling; crashed guests
  /// stop receiving requests). The address-only overload flips the first
  /// matching backend; the port-qualified one disambiguates shared
  /// addresses.
  Status set_backend_health(net::Ipv4Address address, bool healthy);
  Status set_backend_health(net::Ipv4Address address, int port, bool healthy);

  /// ASP hook: replaces the request-switching policy.
  void set_policy(std::unique_ptr<SwitchPolicy> policy);

  /// Failure recovery: the node the switch was colocated in died with its
  /// host; the Master re-homes the switch into another live node and clients
  /// reconnect there.
  void rehome(net::Ipv4Address listen, int port);

  /// Routes one request: returns the chosen backend entry, or an error when
  /// no healthy backend exists / the policy refuses. `component` restricts
  /// the choice to backends of that component; empty means untagged
  /// (replicated) backends. Allocation-free in steady state: the routable
  /// set is a cached snapshot rebuilt only after a control-plane mutation.
  Result<BackEndEntry> route(std::string_view component = "");

  /// Partitioned services: registers a target-prefix -> component rule
  /// (longest prefix wins; among equal-length prefixes the last registered
  /// rule wins).
  void set_component_route(std::string prefix, std::string component);

  /// Resolves the component for a request target via the registered
  /// prefixes, then routes within it. With no rules registered this is
  /// plain route().
  Result<BackEndEntry> route_target(std::string_view target);

  /// The component a target resolves to (empty if no rule matches). The
  /// returned view points into the registered rule and stays valid until
  /// the next set_component_route().
  [[nodiscard]] std::string_view component_for(std::string_view target) const;

  /// Connection lifecycle for least-connections-style policies. The
  /// port-aware overload is canonical. The address-only one resolves the
  /// full endpoint: the unique backend with that address, or — when several
  /// backends share the address on different ports — the unique one with an
  /// active connection (the only one that can be completing). A completion
  /// that stays ambiguous is dropped rather than credited to the wrong
  /// backend.
  void on_request_complete(net::Ipv4Address backend);
  void on_request_complete(net::Ipv4Address backend, int port);

  /// Feedback for response-time-aware policies: the request sent to
  /// `backend` completed in `seconds` (no-op for unknown backends). The
  /// address-only overload attributes the sample only when the address maps
  /// to a single backend; ambiguous samples are dropped so one component's
  /// latency can never poison a sibling's estimate.
  void report_response_time(net::Ipv4Address backend, double seconds);
  void report_response_time(net::Ipv4Address backend, int port, double seconds);

  /// Data-path failure feedback: the routed backend turned out dead before
  /// it could serve. Marks it unhealthy (the health monitor may later flip
  /// it back) and releases the routed connection. Unknown backends are a
  /// no-op.
  void report_backend_failure(net::Ipv4Address backend, int port);

  /// One-shot failover: reports `dead` as failed, then routes the request
  /// again among the remaining healthy backends of `component`. Counted in
  /// failovers().
  Result<BackEndEntry> route_failover(const BackEndEntry& dead,
                                      std::string_view component = "");

  [[nodiscard]] const std::string& service_name() const noexcept {
    return service_name_;
  }
  [[nodiscard]] net::Ipv4Address listen_address() const noexcept { return listen_; }
  [[nodiscard]] int listen_port() const noexcept { return port_; }
  [[nodiscard]] const std::vector<BackEndState>& backends() const noexcept {
    return backends_;
  }
  [[nodiscard]] const SwitchPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] std::uint64_t requests_routed() const noexcept { return routed_; }
  [[nodiscard]] std::uint64_t requests_refused() const noexcept { return refused_; }
  /// Requests re-routed after their first backend turned out dead.
  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }

  /// Bumped on every mutation that can change the routable set (membership,
  /// health, drain, capacity). route() rebuilds its snapshots only when
  /// this moved — exposed so tests and benches can assert the steady state
  /// really is steady.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Renders the current configuration file (Table 3 format).
  [[nodiscard]] std::string config_text() const;

  /// Requests routed to `backend` so far (0 if unknown). The address-only
  /// overload sums across every port sharing the address; the port-aware
  /// one counts a single backend.
  [[nodiscard]] std::uint64_t routed_to(net::Ipv4Address backend) const;
  [[nodiscard]] std::uint64_t routed_to(net::Ipv4Address backend,
                                        int port) const;

  /// Checkpoints backends, prefix routes, counters, the epoch, and the
  /// policy (by registry name + its per-slot state). Custom (ASP-function)
  /// policies cannot be re-created from a name and fail the load with a
  /// clear error. The routable snapshots are cache: restore marks them
  /// stale and the first route() rebuilds them deterministically.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  /// One component's cached routable set: dense slot indices into
  /// backends_, rebuilt lazily when the epoch moves.
  struct ComponentSnapshot {
    std::string component;
    std::vector<std::uint32_t> slots;
  };

  /// Marks the routable set dirty (cheap; rebuild happens on next route).
  void touch() noexcept { ++epoch_; }
  /// Membership/capacity change: dirty + deterministic policy re-seed.
  void on_membership_changed();
  void rebuild_snapshots();
  /// The snapshot for `component`, rebuilding all snapshots if stale;
  /// nullptr when the component has no routable backends.
  const ComponentSnapshot* routable_snapshot(std::string_view component);

  BackEndState* find(net::Ipv4Address address);
  BackEndState* find(net::Ipv4Address address, int port);
  /// Resolves an address-only completion to a full endpoint (see
  /// on_request_complete above); nullptr when ambiguous or unknown.
  BackEndState* resolve_completion(net::Ipv4Address address);
  /// Resolves an address-only sample: the single backend with `address`,
  /// nullptr when shared or unknown.
  BackEndState* resolve_unique(net::Ipv4Address address);

  std::string service_name_;
  net::Ipv4Address listen_;
  int port_;
  std::vector<BackEndState> backends_;
  struct PrefixRoute {
    std::string prefix;
    std::string component;
  };
  std::vector<PrefixRoute> routes_;  // registration order
  /// Indices into routes_, sorted by (prefix length desc, registration
  /// index desc): the first match during a scan is the winning rule.
  std::vector<std::uint32_t> route_order_;
  std::unique_ptr<SwitchPolicy> policy_;
  std::vector<ComponentSnapshot> snapshots_;
  std::uint64_t epoch_ = 1;
  std::uint64_t snapshot_epoch_ = 0;  // != epoch_ => snapshots are stale
  std::uint64_t routed_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace soda::core
