// The service switch (paper §3.4): created by the SODA Master for each
// service, colocated in one of its virtual service nodes, it accepts each
// client request and directs it to a backend according to a request-
// switching policy. The default is weighted round-robin with the capacities
// of the configuration file as weights; the ASP can replace it with a
// service-specific policy — and thanks to service isolation, an ill-behaved
// custom policy only hurts its own service.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config_file.hpp"
#include "net/address.hpp"
#include "sim/random.hpp"
#include "util/result.hpp"

namespace soda::core {

/// Per-backend runtime state visible to policies.
struct BackEndState {
  BackEndEntry entry;
  std::uint64_t requests_routed = 0;
  std::uint64_t active_connections = 0;
  bool healthy = true;
  /// Removal requested while connections were still in flight: the backend
  /// receives no new requests and is erased when the last one completes.
  bool draining = false;
};

/// A request-switching policy. pick() returns an index into `backends`
/// (only healthy entries are offered) or nullopt to refuse the request.
class SwitchPolicy {
 public:
  virtual ~SwitchPolicy() = default;
  virtual std::optional<std::size_t> pick(
      const std::vector<BackEndState>& backends) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Notification that the backend set changed (resize); stateful policies
  /// reset their cursors.
  virtual void on_backends_changed() {}
  /// Feedback: a request served by `backend` completed in `seconds`.
  /// Response-time-aware policies learn from this; others ignore it.
  virtual void on_response_time(const BackEndEntry& backend, double seconds) {
    (void)backend;
    (void)seconds;
  }
};

/// Default policy: smooth weighted round-robin over capacities — a backend
/// with capacity 2 receives twice the requests of one with capacity 1, with
/// the interleaving spread evenly (nginx-style smooth WRR).
std::unique_ptr<SwitchPolicy> make_weighted_round_robin();

/// Capacity-blind round-robin (ablation baseline).
std::unique_ptr<SwitchPolicy> make_plain_round_robin();

/// Uniform random choice (ablation baseline).
std::unique_ptr<SwitchPolicy> make_random_policy(std::uint64_t seed);

/// Pick the healthy backend with the fewest active connections, capacity-
/// weighted (ties by order).
std::unique_ptr<SwitchPolicy> make_least_connections();

/// Adaptive policy: tracks an exponentially weighted moving average of each
/// backend's response time (smoothing factor `alpha`) and routes to the
/// backend with the lowest capacity-discounted estimate; backends with no
/// samples yet are explored first.
std::unique_ptr<SwitchPolicy> make_fastest_response(double alpha = 0.2);

/// Wraps an ASP-provided function as a policy (the "service-specific
/// policy" replacement hook).
std::unique_ptr<SwitchPolicy> make_custom_policy(
    std::string name,
    std::function<std::optional<std::size_t>(const std::vector<BackEndState>&)> fn);

/// The switch itself. Owns the configuration file and the policy.
class ServiceSwitch {
 public:
  /// `listen` is where clients connect (the address of the node the switch
  /// is colocated in).
  ServiceSwitch(std::string service_name, net::Ipv4Address listen, int port);

  /// Master-side maintenance of the configuration file. Backends are keyed
  /// by (address, port): proxied components of one partitioned service may
  /// share their host's public address on different ports. The port-aware
  /// overloads are canonical; the address-only ones act on the first
  /// matching backend and exist for callers that predate shared addresses.
  Status add_backend(const BackEndEntry& entry);
  Status remove_backend(net::Ipv4Address address);
  /// Removes (address, port). When requests are still in flight the backend
  /// drains instead: it stops receiving new requests immediately and is
  /// erased once its last active connection completes.
  Status remove_backend(net::Ipv4Address address, int port);
  Status set_backend_capacity(net::Ipv4Address address, int capacity);
  Status set_backend_capacity(net::Ipv4Address address, int port, int capacity);
  /// Replaces the whole file (resize bulk update).
  void load_config(const ServiceConfigFile& file);

  /// Marks a backend unhealthy/healthy (failure handling; crashed guests
  /// stop receiving requests). The address-only overload flips the first
  /// matching backend; the port-qualified one disambiguates shared
  /// addresses.
  Status set_backend_health(net::Ipv4Address address, bool healthy);
  Status set_backend_health(net::Ipv4Address address, int port, bool healthy);

  /// ASP hook: replaces the request-switching policy.
  void set_policy(std::unique_ptr<SwitchPolicy> policy);

  /// Failure recovery: the node the switch was colocated in died with its
  /// host; the Master re-homes the switch into another live node and clients
  /// reconnect there.
  void rehome(net::Ipv4Address listen, int port);

  /// Routes one request: returns the chosen backend entry, or an error when
  /// no healthy backend exists / the policy refuses. `component` restricts
  /// the choice to backends of that component; empty means untagged
  /// (replicated) backends.
  Result<BackEndEntry> route(std::string_view component = "");

  /// Partitioned services: registers a target-prefix -> component rule
  /// (longest prefix wins).
  void set_component_route(std::string prefix, std::string component);

  /// Resolves the component for a request target via the registered
  /// prefixes, then routes within it. With no rules registered this is
  /// plain route().
  Result<BackEndEntry> route_target(std::string_view target);

  /// The component a target resolves to (empty if no rule matches).
  [[nodiscard]] std::string component_for(std::string_view target) const;

  /// Connection lifecycle for least-connections-style policies. The
  /// port-aware overload is canonical — with shared addresses the
  /// address-only one credits the first matching backend.
  void on_request_complete(net::Ipv4Address backend);
  void on_request_complete(net::Ipv4Address backend, int port);

  /// Feedback for response-time-aware policies: the request sent to
  /// `backend` completed in `seconds` (no-op for unknown backends).
  void report_response_time(net::Ipv4Address backend, double seconds);
  void report_response_time(net::Ipv4Address backend, int port, double seconds);

  /// Data-path failure feedback: the routed backend turned out dead before
  /// it could serve. Marks it unhealthy (the health monitor may later flip
  /// it back) and releases the routed connection. Unknown backends are a
  /// no-op.
  void report_backend_failure(net::Ipv4Address backend, int port);

  /// One-shot failover: reports `dead` as failed, then routes the request
  /// again among the remaining healthy backends of `component`. Counted in
  /// failovers().
  Result<BackEndEntry> route_failover(const BackEndEntry& dead,
                                      std::string_view component = "");

  [[nodiscard]] const std::string& service_name() const noexcept {
    return service_name_;
  }
  [[nodiscard]] net::Ipv4Address listen_address() const noexcept { return listen_; }
  [[nodiscard]] int listen_port() const noexcept { return port_; }
  [[nodiscard]] const std::vector<BackEndState>& backends() const noexcept {
    return backends_;
  }
  [[nodiscard]] const SwitchPolicy& policy() const noexcept { return *policy_; }
  [[nodiscard]] std::uint64_t requests_routed() const noexcept { return routed_; }
  [[nodiscard]] std::uint64_t requests_refused() const noexcept { return refused_; }
  /// Requests re-routed after their first backend turned out dead.
  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }

  /// Renders the current configuration file (Table 3 format).
  [[nodiscard]] std::string config_text() const;

  /// Requests routed to `backend` so far (0 if unknown).
  [[nodiscard]] std::uint64_t routed_to(net::Ipv4Address backend) const;

 private:
  std::vector<BackEndState> healthy_view(std::string_view component) const;
  BackEndState* find(net::Ipv4Address address);
  BackEndState* find(net::Ipv4Address address, int port);

  std::string service_name_;
  net::Ipv4Address listen_;
  int port_;
  std::vector<BackEndState> backends_;
  std::vector<std::pair<std::string, std::string>> routes_;  // prefix, component
  std::unique_ptr<SwitchPolicy> policy_;
  std::uint64_t routed_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t failovers_ = 0;
};

}  // namespace soda::core
