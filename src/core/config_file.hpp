// The service configuration file (paper §3.4, Table 3). The SODA Master
// creates and maintains one inside each service switch; each BackEnd row
// records a virtual service node's IP address, port, and relative capacity:
//
//   BackEnd 128.10.9.125 8080 2
//   BackEnd 128.10.9.126 8080 1
//
// Resizing rewrites rows in place; the switch re-reads weights from here.
#pragma once

#include <string>
#include <vector>

#include "net/address.hpp"
#include "util/result.hpp"

namespace soda::core {

/// One row of the configuration file. `component` is empty for a fully
/// replicated service; partitioned services (§3.5 extension) tag each row
/// with the component its node runs.
struct BackEndEntry {
  net::Ipv4Address address;
  int port = 0;
  int capacity = 1;
  std::string component;

  friend bool operator==(const BackEndEntry&, const BackEndEntry&) = default;
};

/// In-memory representation with the paper's on-disk text format.
class ServiceConfigFile {
 public:
  /// Adds a row; fails if the (address, port) pair is already present.
  Status add(const BackEndEntry& entry);

  /// Removes the row for `address`; fails if absent.
  Status remove(net::Ipv4Address address);

  /// Updates the capacity of an existing row; fails if absent.
  Status set_capacity(net::Ipv4Address address, int capacity);

  [[nodiscard]] const std::vector<BackEndEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] int total_capacity() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Renders the Table 3 text format (one "BackEnd <ip> <port> <capacity>"
  /// line per entry, with a trailing component tag for partitioned rows).
  [[nodiscard]] std::string serialize() const;

  /// Parses the text format; ignores blank lines and '#' comments.
  static Result<ServiceConfigFile> parse(std::string_view text);

 private:
  std::vector<BackEndEntry> entries_;
};

}  // namespace soda::core
