// The SODA Daemon (paper §3.3, §4.3): a host-OS process on every HUP host.
// It reports resource availability to the Master and performs service
// priming at the Master's command: reserve a slice, download the service
// image over HTTP/1.1, tailor the guest root filesystem to the services the
// application needs, boot the UML, assign an IP address from the host's
// pool, register the UML-IP mapping with the bridging module, install the
// outbound bandwidth share in the traffic shaper, and finally start the
// application inside the guest. Once the service runs, the daemon stays out
// of the data path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/ids.hpp"
#include "host/host.hpp"
#include "image/distributor.hpp"
#include "image/repository.hpp"
#include "net/flow_network.hpp"
#include "net/shaper.hpp"
#include "sim/engine.hpp"
#include "snapshot/format.hpp"
#include "core/trace.hpp"
#include "util/result.hpp"
#include "vm/vsnode.hpp"

namespace soda::core {

class ControlPlaneBus;

/// Timing breakdown of one node's priming, kept for the Table 2 bench and
/// the download-time series.
struct PrimingReport {
  sim::SimTime download_time;   // image transfer over the LAN
  sim::SimTime customize_time;  // rootfs tailoring on the host CPU
  vm::BootReport boot;          // mount + kernel + system services
  sim::SimTime app_start_time;  // application launch inside the guest
  std::int64_t image_bytes = 0;       // packaged bytes transferred
  std::int64_t rootfs_bytes = 0;      // final (customized) rootfs size

  [[nodiscard]] sim::SimTime bootstrap_time() const noexcept {
    return boot.total() + app_start_time;
  }
  [[nodiscard]] sim::SimTime total() const noexcept {
    return download_time + customize_time + bootstrap_time();
  }
};

/// How a new virtual service node is made reachable (paper §3.3 and its
/// footnote 3): bridging gives the node its own LAN-visible IP; proxying
/// keeps the node on a reserved (private) address and forwards a port on
/// the host's public address to it — for when IP addresses are scarce.
enum class AddressMode { kBridging, kProxying };

std::string_view address_mode_name(AddressMode mode) noexcept;

/// Master -> Daemon command to create one virtual service node.
struct PrimeCommand {
  std::string node_name;     // HUP-wide unique, e.g. "web-content/0"
  std::string service_name;
  const image::ImageRepository* repository = nullptr;
  image::ImageLocation location;
  host::MachineConfig unit;  // M
  int capacity_units = 1;    // this node provides capacity_units x M
  /// Resources to reserve (the Master has already applied slow-down
  /// inflation to CPU and bandwidth).
  host::ResourceVector reserve;
  /// Tailor the guest rootfs to the image's required services (on by
  /// default; the Table 2 ablation turns it off).
  bool customize_rootfs = true;
  /// Bridge (default) or proxy the node's connectivity.
  AddressMode address_mode = AddressMode::kBridging;
  /// Guest port the application listens on (proxy target port).
  int listen_port = 8080;
  /// Partitioned services: the component this node runs; overrides the
  /// image's entry command, system-service needs, and port.
  std::optional<image::ServiceComponent> component;
};

class SodaDaemon {
 public:
  SodaDaemon(sim::Engine& engine, net::FlowNetwork& network,
             host::HupHost& host, net::TrafficShaper& shaper);
  SodaDaemon(const SodaDaemon&) = delete;
  SodaDaemon& operator=(const SodaDaemon&) = delete;

  /// Resource availability as reported to the Master.
  [[nodiscard]] host::ResourceVector available() const { return host_.available(); }
  [[nodiscard]] const std::string& host_name() const noexcept {
    return host_.name();
  }
  [[nodiscard]] host::HupHost& host() noexcept { return host_; }
  [[nodiscard]] const host::HupHost& host() const noexcept { return host_; }

  /// Dense fleet-wide id, assigned by the Master at registration
  /// (DESIGN.md §11). Invalid until then.
  [[nodiscard]] HostId host_id() const noexcept { return host_id_; }
  void set_host_id(HostId id) noexcept { host_id_ = id; }

  /// This host's image-distribution front end (chunk cache, coalescing,
  /// P2P priming). The Master wires its registry/directory/config at
  /// daemon registration.
  [[nodiscard]] image::ImageDistributor& distributor() noexcept {
    return distributor_;
  }
  [[nodiscard]] const image::ImageDistributor& distributor() const noexcept {
    return distributor_;
  }

  using PrimeCallback =
      std::function<void(Result<vm::VirtualServiceNode*> node, sim::SimTime now)>;

  /// Runs the full priming pipeline; `done` fires when the node is serving
  /// (or with the first error, after rolling back partial work).
  void prime_node(PrimeCommand command, PrimeCallback done);

  /// Stops a node and releases everything it held (slice, IP, bridge entry,
  /// shaper entry). The guest's processes die with it.
  Status teardown_node(std::string_view node_name);

  /// Grows/shrinks a node in place: new slice reservation, capacity units,
  /// and shaper bandwidth. Fails if the host cannot fit the growth.
  Status resize_node(std::string_view node_name, int new_units,
                     const host::ResourceVector& new_reserve);

  [[nodiscard]] vm::VirtualServiceNode* find_node(std::string_view node_name);
  [[nodiscard]] const vm::VirtualServiceNode* find_node(
      std::string_view node_name) const;
  [[nodiscard]] std::size_t node_count() const noexcept {
    return node_names_.size();
  }

  /// True when this daemon runs at least one node of `service_name`
  /// ("web" matches "web/3" but not "web-2/0"). Allocation-free: a binary
  /// search over the sorted node-name vector against the virtual needle
  /// `service_name + "/"`.
  [[nodiscard]] bool serves_service(std::string_view service_name) const;

  /// Priming breakdown of a node created by this daemon.
  [[nodiscard]] const PrimingReport* priming_report(
      std::string_view node_name) const;

  // --- Host-level failure model -------------------------------------------

  /// False after crash_host() until recover(): the host OS (and with it the
  /// daemon) is down, heartbeats stop, and every virtual service node it
  /// carried is gone.
  [[nodiscard]] bool alive() const noexcept { return alive_; }

  /// Fail-stop host crash: kills every guest and releases all host state
  /// (slices, IPs, bridge/proxy entries, shaper shares) — a crashed machine
  /// reboots empty. The Master learns of the loss through the failure
  /// detector, not from this call.
  void crash_host();

  /// The host rebooted: the daemon is back, reporting a fully free host.
  /// Lost nodes are NOT resurrected — re-creation is the Master's recovery
  /// policy's job.
  void recover();

  /// Delivered on each heartbeat tick while the daemon is alive.
  using HeartbeatSink = std::function<void(SodaDaemon&, sim::SimTime)>;

  /// Shard-affinity key for this daemon's periodic events (heartbeat
  /// ticks): the host's dense registration index. An unregistered daemon's
  /// invalid id maps exactly onto Engine::kNoShard, so its events stay
  /// serial barriers. Tags are execution hints only — they change nothing
  /// unless the engine enables sharding, and every (re-)arm path re-applies
  /// them, so snapshots never carry them.
  [[nodiscard]] sim::Engine::ShardKey shard_key() const noexcept {
    return sim::Engine::shard_for_host(host_id_.value);
  }

  /// Starts the periodic heartbeat loop (idempotent). Ticks are swallowed
  /// while the host is down and resume on recover(). While the loop runs the
  /// engine always has a pending event — drive the simulation with
  /// Engine::run_until (or stop_heartbeat()) rather than Engine::run().
  void start_heartbeat(sim::SimTime interval, HeartbeatSink sink);
  /// Stops the loop after the current tick.
  void stop_heartbeat() noexcept { heartbeating_ = false; }

  // --- Checkpoint / restore ------------------------------------------------

  [[nodiscard]] bool heartbeating() const noexcept { return heartbeating_; }
  [[nodiscard]] sim::SimTime heartbeat_interval() const noexcept {
    return heartbeat_interval_;
  }
  /// Absolute time of the next heartbeat tick (valid while heartbeating).
  [[nodiscard]] sim::SimTime heartbeat_next() const noexcept {
    return heartbeat_next_;
  }
  /// Engine id of the pending heartbeat event (valid while heartbeating).
  [[nodiscard]] sim::EventId heartbeat_event() const noexcept {
    return heartbeat_event_;
  }
  /// Restore-time wiring: installs interval/sink/active WITHOUT scheduling.
  /// The owner re-arms the tick afterwards via rearm_heartbeat_at so pending
  /// events regain their saved relative order.
  void restore_heartbeat(sim::SimTime interval, HeartbeatSink sink, bool active);
  /// Schedules the next heartbeat tick at the absolute time saved in the
  /// checkpoint's timers section.
  void rearm_heartbeat_at(sim::SimTime when);

  /// Checkpoints node records (guests, priming reports, slice bookkeeping)
  /// and the distributor. Reconstruction makes no host/network API calls —
  /// slices, IPs, bridge/proxy entries, and shaper shares were restored
  /// wholesale with the host and network tables.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

  /// Attaches a trace log (emission is skipped when unset).
  void set_trace(TraceLog* trace) noexcept { trace_ = trace; }

  /// Attaches the Master's control-plane bus (done by register_daemon).
  /// When set, the daemon's events flow through the bus — which feeds the
  /// trace, metrics, and subscribers — instead of the bare trace log.
  void set_bus(ControlPlaneBus* bus) noexcept { bus_ = bus; }

 private:
  struct NodeRecord {
    std::unique_ptr<vm::VirtualServiceNode> node;
    PrimingReport report;
    host::MachineConfig unit;
    AddressMode address_mode = AddressMode::kBridging;
    int public_port = 0;  // proxying only
  };

  /// Index of `node_name` in the sorted name vector, or npos.
  [[nodiscard]] std::size_t node_index(std::string_view node_name) const;
  /// Inserts a record keeping node_names_ sorted; returns the stable record.
  NodeRecord& insert_node(std::string_view node_name,
                          std::unique_ptr<NodeRecord> record);
  void erase_node(std::size_t index);
  /// Releases all host-side state of the record at `index` (bridge/proxy,
  /// shaper, IP, slice); `crashed` kills the guest instead of shutting down.
  void release_node_state(NodeRecord& record, bool crashed);

  /// Stage 2 of priming, after the image arrived.
  void continue_priming(PrimeCommand command, image::ServiceImage image,
                        host::SliceId slice, sim::SimTime download_started,
                        sim::SimTime downloaded_at, PrimeCallback done);

  void heartbeat_tick();

  /// Emits one control-plane event: through the bus when wired, otherwise
  /// straight to the trace log (both skipped when unset).
  void emit(sim::SimTime at, TraceKind kind, const std::string& subject,
            std::string detail);

  sim::Engine& engine_;
  net::FlowNetwork& network_;
  host::HupHost& host_;
  net::TrafficShaper& shaper_;
  image::ImageDistributor distributor_;
  // Node store: names sorted, records parallel and pointer-stable (the boot
  // callback and priming_report() hold NodeRecord addresses across inserts).
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<NodeRecord>> node_records_;
  HostId host_id_;
  TraceLog* trace_ = nullptr;
  ControlPlaneBus* bus_ = nullptr;
  bool alive_ = true;
  bool heartbeating_ = false;
  sim::SimTime heartbeat_interval_ = sim::SimTime::zero();
  HeartbeatSink heartbeat_sink_;
  sim::SimTime heartbeat_next_ = sim::SimTime::zero();
  sim::EventId heartbeat_event_{};
};

}  // namespace soda::core
