// Versioned binary checkpoint format (DESIGN.md §14). A snapshot is a flat
// byte string: an 8-byte magic, a format-version word, a tree of named
// length-prefixed sections, and a trailing FNV-1a checksum. Writer emits it,
// Reader validates and consumes it. Every stateful subsystem externalizes
// its private state through `save_state(Writer&)` / `load_state(Reader&)`
// member functions built on these primitives; the section framing makes a
// truncated, reordered, or version-skewed checkpoint fail loudly instead of
// silently misreading.
//
// The byte string doubles as the world's end-state digest: two worlds are
// bit-identical exactly when their snapshots are, so `fnv1a(bytes)` is the
// save→load→continue gate value.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "util/result.hpp"

namespace soda::snapshot {

/// Bumped whenever the snapshot layout changes incompatibly. A Reader
/// refuses any other version with a clear error — old checkpoints are
/// regenerated, never guessed at.
inline constexpr std::uint32_t kFormatVersion = 1;

/// FNV-1a 64 over a byte string (the checksum and digest primitive).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept;

/// Serializer. All integers little-endian, doubles bit-cast to u64.
class Writer {
 public:
  Writer();

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(std::string_view v);
  void time(sim::SimTime t) { i64(t.ns()); }

  /// Opens a named, length-prefixed section; sections nest. The length is
  /// backpatched by end_section, so owners need not precompute sizes.
  void begin_section(std::string_view name);
  void end_section();

  /// Appends the checksum and returns the finished snapshot. The Writer is
  /// spent afterwards. All sections must be closed.
  std::string finish();

  [[nodiscard]] std::size_t bytes_written() const noexcept {
    return buffer_.size();
  }

 private:
  std::string buffer_;
  std::vector<std::size_t> open_sections_;  // offsets of length placeholders
};

/// Deserializer with sticky error state: the first failure (bad magic,
/// version skew, checksum mismatch, truncation, wrong section name) is
/// recorded and every later read returns a default, so call sites read
/// straight-line and check ok() once at the end.
class Reader {
 public:
  /// Validates magic, version, and checksum up front.
  explicit Reader(std::string_view bytes);

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean() { return u8() != 0; }
  std::string str();
  sim::SimTime time() { return sim::SimTime(i64()); }

  /// Enters the section that must come next; fails when the name differs.
  void begin_section(std::string_view name);
  /// Leaves the innermost section; fails unless exactly consumed.
  void end_section();

  /// True while no read has failed.
  [[nodiscard]] bool ok() const noexcept { return error_.empty(); }
  /// The first failure, empty while ok().
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  /// Result-typed view of the final state, for plumbing into Status returns.
  [[nodiscard]] Status status() const {
    if (ok()) return {};
    return Error{"snapshot: " + error_};
  }

  void fail(std::string message);

 private:
  [[nodiscard]] bool need(std::size_t n, const char* what);

  std::string_view bytes_;
  std::size_t cursor_ = 0;
  std::size_t payload_end_ = 0;  // checksum excluded
  std::vector<std::pair<std::string, std::size_t>> open_sections_;
  std::string error_;
};

/// Writes `bytes` to `path` atomically enough for checkpoint artifacts
/// (temp file + rename).
Status write_file(const std::string& path, std::string_view bytes);

/// Reads a whole checkpoint file.
Result<std::string> read_file(const std::string& path);

}  // namespace soda::snapshot
