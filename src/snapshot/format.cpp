#include "snapshot/format.hpp"

#include <bit>
#include <cstdio>

#include "util/contract.hpp"

namespace soda::snapshot {

namespace {

constexpr char kMagic[8] = {'S', 'O', 'D', 'A', 'S', 'N', 'A', 'P'};
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

}  // namespace

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

// --- Writer -----------------------------------------------------------------

Writer::Writer() {
  buffer_.append(kMagic, sizeof kMagic);
  u32(kFormatVersion);
}

void Writer::u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

void Writer::u16(std::uint16_t v) {
  for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (i * 8)));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (i * 8)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (i * 8)));
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buffer_.append(v.data(), v.size());
}

void Writer::begin_section(std::string_view name) {
  u16(static_cast<std::uint16_t>(name.size()));
  buffer_.append(name.data(), name.size());
  open_sections_.push_back(buffer_.size());
  u64(0);  // length placeholder, backpatched by end_section
}

void Writer::end_section() {
  SODA_EXPECTS(!open_sections_.empty());
  const std::size_t at = open_sections_.back();
  open_sections_.pop_back();
  const std::uint64_t length = buffer_.size() - (at + 8);
  for (int i = 0; i < 8; ++i) {
    buffer_[at + static_cast<std::size_t>(i)] =
        static_cast<char>((length >> (i * 8)) & 0xFF);
  }
}

std::string Writer::finish() {
  SODA_EXPECTS(open_sections_.empty());
  u64(fnv1a(buffer_));
  return std::move(buffer_);
}

// --- Reader -----------------------------------------------------------------

Reader::Reader(std::string_view bytes) : bytes_(bytes) {
  if (bytes_.size() < sizeof kMagic + 4 + 8) {
    fail("truncated: " + std::to_string(bytes_.size()) + " bytes");
    return;
  }
  if (bytes_.substr(0, sizeof kMagic) != std::string_view(kMagic, sizeof kMagic)) {
    fail("bad magic: not a SODA snapshot");
    return;
  }
  payload_end_ = bytes_.size() - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(bytes_[payload_end_ +
                                                    static_cast<std::size_t>(i)]))
              << (i * 8);
  }
  if (stored != fnv1a(bytes_.substr(0, payload_end_))) {
    fail("checksum mismatch: snapshot is corrupt");
    return;
  }
  cursor_ = sizeof kMagic;
  const std::uint32_t version = u32();
  if (ok() && version != kFormatVersion) {
    fail("format version " + std::to_string(version) + " unsupported (have " +
         std::to_string(kFormatVersion) + "); regenerate the checkpoint");
  }
}

void Reader::fail(std::string message) {
  if (error_.empty()) error_ = std::move(message);
}

bool Reader::need(std::size_t n, const char* what) {
  if (!ok()) return false;
  if (payload_end_ - cursor_ < n) {
    fail(std::string("truncated reading ") + what);
    return false;
  }
  if (!open_sections_.empty() && open_sections_.back().second < cursor_ + n) {
    fail("read past end of section '" + open_sections_.back().first + "'");
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!need(1, "u8")) return 0;
  return static_cast<std::uint8_t>(bytes_[cursor_++]);
}

std::uint16_t Reader::u16() {
  if (!need(2, "u16")) return 0;
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(static_cast<unsigned char>(bytes_[cursor_++]))
        << (i * 8));
  }
  return v;
}

std::uint32_t Reader::u32() {
  if (!need(4, "u32")) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes_[cursor_++]))
         << (i * 8);
  }
  return v;
}

std::uint64_t Reader::u64() {
  if (!need(8, "u64")) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes_[cursor_++]))
         << (i * 8);
  }
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (!need(n, "string")) return {};
  std::string v(bytes_.substr(cursor_, n));
  cursor_ += n;
  return v;
}

void Reader::begin_section(std::string_view name) {
  const std::uint16_t n = u16();
  if (!need(n, "section name")) return;
  const std::string_view found = bytes_.substr(cursor_, n);
  if (found != name) {
    fail("expected section '" + std::string(name) + "', found '" +
         std::string(found) + "'");
    return;
  }
  cursor_ += n;
  const std::uint64_t length = u64();
  if (!ok()) return;
  if (payload_end_ - cursor_ < length) {
    fail("section '" + std::string(name) + "' overruns the snapshot");
    return;
  }
  open_sections_.emplace_back(std::string(name), cursor_ + length);
}

void Reader::end_section() {
  if (!ok()) return;
  SODA_EXPECTS(!open_sections_.empty());
  const auto& [name, end] = open_sections_.back();
  if (cursor_ != end) {
    fail("section '" + name + "': " + std::to_string(end - cursor_) +
         " byte(s) left unconsumed");
    return;
  }
  open_sections_.pop_back();
}

// --- Files ------------------------------------------------------------------

Status write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Error{"cannot open " + tmp + " for writing"};
  const std::size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (wrote != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Error{"short write to " + tmp};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Error{"cannot rename " + tmp + " to " + path};
  }
  return {};
}

Result<std::string> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Error{"cannot open " + path};
  std::string bytes;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, got);
  std::fclose(f);
  return bytes;
}

}  // namespace soda::snapshot
