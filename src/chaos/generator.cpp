#include "chaos/generator.hpp"

#include <algorithm>

#include "sim/random.hpp"
#include "util/contract.hpp"

namespace soda::chaos {

namespace {

/// Quarter-second quantization keeps every time binary-exact and one %g
/// token in the DSL.
double quarters(sim::Rng& rng, int lo, int hi) {
  return static_cast<double>(rng.uniform_int(lo, hi)) / 4.0;
}

/// 1/20-step factors (0.05 .. 0.9): n/20.0 is correctly rounded, so the
/// value printed as "0.15" parses back to the identical double.
double uplink_factor(sim::Rng& rng) {
  return static_cast<double>(rng.uniform_int(1, 18)) / 20.0;
}

workload::TrafficTrace random_trace(sim::Rng& rng) {
  workload::TrafficTrace trace;
  const int phases = static_cast<int>(rng.uniform_int(1, 2));
  for (int i = 0; i < phases; ++i) {
    const double rate = static_cast<double>(rng.uniform_int(20, 120));
    const double seconds = quarters(rng, 2, 8);  // 0.5 .. 2 s
    switch (rng.uniform_int(0, 3)) {
      case 0: trace.constant(rate, seconds); break;
      case 1: trace.burst(rate, seconds); break;
      case 2:
        trace.ramp(rate, static_cast<double>(rng.uniform_int(20, 120)),
                   seconds);
        break;
      default:
        trace.diurnal(rate, static_cast<double>(rng.uniform_int(5, 15)),
                      seconds);
        break;
    }
  }
  return trace;
}

constexpr const char* kPolicies[] = {
    "weighted-round-robin", "round-robin", "random", "least-connections",
    "fastest-response",
};

/// The post-T0 half of a scenario: a per-host up/down fault walk (so
/// recoveries always follow crashes) plus crash-during-recovery follow-ups
/// and guest crashes, then the recovery-headroom horizon.
void generate_fault_schedule(ChaosSpec& spec, sim::Rng& fault_rng) {
  const int hosts = static_cast<int>(spec.hosts.size());
  const int services = static_cast<int>(spec.services.size());
  std::vector<bool> down(static_cast<std::size_t>(hosts), false);
  const int fault_count = static_cast<int>(fault_rng.uniform_int(1, 6));
  double t = 0;
  for (int i = 0; i < fault_count; ++i) {
    t += quarters(fault_rng, 1, 8);  // 0.25 .. 2 s between events
    if (!spec.services.empty() && fault_rng.bernoulli(0.2)) {
      const auto& victim = spec.services[static_cast<std::size_t>(
          fault_rng.uniform_int(0, services - 1))];
      ChaosFault fault;
      fault.at_s = t;
      fault.kind = core::FaultKind::kGuestCrash;
      fault.node = victim.name + "/" +
                   std::to_string(fault_rng.uniform_int(0, victim.units - 1));
      spec.faults.push_back(std::move(fault));
      continue;
    }
    const int h = static_cast<int>(fault_rng.uniform_int(0, hosts - 1));
    ChaosFault fault;
    fault.at_s = t;
    fault.host = h;
    if (down[static_cast<std::size_t>(h)]) {
      fault.kind = core::FaultKind::kHostRecover;
      down[static_cast<std::size_t>(h)] = false;
      spec.faults.push_back(fault);
      // Crash-during-recovery: kill the host again right after its
      // heartbeats resumed, while re-placement priming is still in flight.
      if (fault_rng.bernoulli(0.5)) {
        ChaosFault again;
        again.at_s = t + 0.25;
        again.kind = core::FaultKind::kHostCrash;
        again.host = h;
        down[static_cast<std::size_t>(h)] = true;
        spec.faults.push_back(again);
      }
      continue;
    }
    const double roll = fault_rng.uniform();
    if (roll < 0.5) {
      fault.kind = core::FaultKind::kHostCrash;
      down[static_cast<std::size_t>(h)] = true;
    } else if (roll < 0.75) {
      fault.kind = core::FaultKind::kSlowHost;
      fault.severity = uplink_factor(fault_rng);
    } else {
      fault.kind = core::FaultKind::kLossyLink;
      fault.severity = uplink_factor(fault_rng);
    }
    spec.faults.push_back(fault);
  }
  std::stable_sort(spec.faults.begin(), spec.faults.end(),
                   [](const ChaosFault& a, const ChaosFault& b) {
                     return a.at_s < b.at_s;
                   });

  const double last_fault = spec.faults.empty() ? 0 : spec.faults.back().at_s;
  spec.horizon_s = last_fault + quarters(fault_rng, 20, 24);  // +5 .. +6 s
}

}  // namespace

ChaosSpec generate_scenario(std::uint64_t seed) {
  sim::Rng root(seed);
  sim::Rng topo_rng = root.fork();
  sim::Rng service_rng = root.fork();
  sim::Rng fault_rng = root.fork();

  ChaosSpec spec;
  spec.seed = seed;

  switch (topo_rng.uniform_int(0, 3)) {
    case 0: spec.placement = core::PlacementPolicy::kFirstFit; break;
    case 1: spec.placement = core::PlacementPolicy::kBestFit; break;
    case 2: spec.placement = core::PlacementPolicy::kWorstFit; break;
    default: spec.placement = core::PlacementPolicy::kCacheAffinity; break;
  }
  const int hosts = static_cast<int>(topo_rng.uniform_int(2, 5));
  for (int i = 0; i < hosts; ++i) {
    spec.hosts.push_back(ChaosHost{topo_rng.bernoulli(0.6)});
  }
  spec.content_mb = static_cast<int>(topo_rng.uniform_int(1, 4));

  const int services = static_cast<int>(service_rng.uniform_int(1, 3));
  for (int k = 0; k < services; ++k) {
    ChaosService service;
    service.name = "svc" + std::to_string(k);
    service.units = static_cast<int>(service_rng.uniform_int(1, 3));
    service.policy = kPolicies[service_rng.uniform_int(0, 4)];
    service.policy_seed =
        service.policy == "random"
            ? static_cast<std::uint64_t>(service_rng.uniform_int(1, 1 << 20))
            : 0;
    service.trace = random_trace(service_rng).phases();
    service.traffic_seed =
        static_cast<std::uint64_t>(service_rng.uniform_int(1, 1 << 20));
    spec.services.push_back(std::move(service));
  }

  generate_fault_schedule(spec, fault_rng);

  SODA_ENSURES(validate_spec(spec).ok());
  return spec;
}

ChaosSpec generate_scenario_from_base(const ChaosSpec& base,
                                      std::uint64_t seed) {
  // Same fork discipline as generate_scenario so the traffic and fault
  // streams stay independent of each other.
  sim::Rng root(seed);
  (void)root.fork();  // topology stream: unused, the base fixes the fleet
  sim::Rng service_rng = root.fork();
  sim::Rng fault_rng = root.fork();

  ChaosSpec spec = base;
  spec.seed = seed;
  spec.faults.clear();
  for (ChaosService& service : spec.services) {
    service.trace = random_trace(service_rng).phases();
    service.traffic_seed =
        static_cast<std::uint64_t>(service_rng.uniform_int(1, 1 << 20));
  }
  generate_fault_schedule(spec, fault_rng);

  SODA_ENSURES(validate_spec(spec).ok());
  return spec;
}

}  // namespace soda::chaos
