// Shrinker: reduces a failing ChaosSpec to a minimal reproducer
// (DESIGN.md §13). Classic delta debugging specialized to the chaos
// domain: drop fault events (ddmin chunks, then singles), drop whole
// services and their guest faults, simplify and halve traffic traces,
// shrink unit counts, remove hosts, and tighten the horizon — accepting a
// candidate only when the oracle still reports the failure. Fully
// deterministic: the same failing spec and oracle always shrink to the
// same minimal spec, on any thread.
#pragma once

#include <cstddef>
#include <functional>

#include "chaos/spec.hpp"

namespace soda::chaos {

/// Returns true when the candidate scenario still exhibits the failure
/// under investigation (e.g. "run_scenario(spec, opts) reports at least
/// one violation"). Must be deterministic.
using ChaosOracle = std::function<bool(const ChaosSpec&)>;

struct ShrinkResult {
  ChaosSpec spec;                  // minimal still-failing scenario
  std::size_t candidates_tried = 0;  // oracle invocations
};

/// Precondition: oracle(failing) is true. Runs shrink passes to a fixed
/// point; every intermediate candidate passes validate_spec before the
/// oracle sees it.
ShrinkResult shrink_scenario(ChaosSpec failing, const ChaosOracle& oracle);

}  // namespace soda::chaos
