// Chaos scenario runner: materializes a ChaosSpec into a fresh Hup, drives
// its traffic open-loop while the fault plan fires, stabilizes recovery
// after the horizon, and folds the complete end state (trace, metrics,
// services, switches, hosts) into one FNV digest. The digest excludes the
// InvariantChecker's own state, so serial == ParallelRunner and
// checker-on == checker-off comparisons are both exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/invariants.hpp"
#include "chaos/spec.hpp"

namespace soda::chaos {

struct ChaosOptions {
  /// Attach the InvariantChecker (off when measuring its overhead).
  bool check_invariants = true;
  /// Forwarded to InvariantChecker::Options — the Shrinker test's seeded
  /// failure.
  std::string synthetic_violation_on_host_down;
  /// When non-empty, write a chaos checkpoint (chaos/checkpoint.hpp) of the
  /// built world at T0 — services running, switch policies set, failure
  /// detector armed, no fault fired yet — to this path, then keep running.
  std::string save_checkpoint;
  /// When non-empty, warm-start: restore the T0 world from this checkpoint
  /// instead of building hosts and creating services. The checkpoint's
  /// embedded base spec must be compatible with `spec` (same fleet,
  /// placement, content, services); faults, traffic, and horizon may
  /// differ. Falls back to spec.snapshot (the `# snapshot:` reproducer
  /// header) when empty.
  std::string from_checkpoint;
  /// Worker lanes for the scenario engine's sharded execution
  /// (Engine::enable_sharding); 1 = plain serial loop. Any value must yield
  /// a bit-identical digest — the sharded-determinism test sweeps this.
  std::size_t shard_workers = 1;
};

/// Everything one scenario run produces.
struct ChaosReport {
  /// FNV-1a over the end state; bit-identical across replicas and checker
  /// settings.
  std::uint64_t digest = 0;
  /// Non-empty when the spec could not even be materialized (unknown
  /// policy, rejected fault plan) — distinct from invariant violations.
  std::string setup_error;
  std::vector<Violation> violations;
  std::uint64_t requests = 0;  // open-loop arrivals driven (incl. failovers)
  std::uint64_t routed = 0;
  std::uint64_t refused = 0;
  std::uint64_t faults_injected = 0;
  std::size_t services_running = 0;   // creations that reached kRunning
  std::size_t creations_rejected = 0;
  /// The world was restored from a checkpoint rather than built. A warm
  /// continuation's digest is bit-identical to the cold run's — the
  /// fig_snapshot gate.
  bool warm_started = false;
};

/// Builds the spec's HUP, runs it to `horizon_s` past fault-arming, then
/// quiesces and runs the checker's final sweep. Deterministic: equal specs
/// yield equal reports (modulo `violations` emptiness when the checker is
/// off).
ChaosReport run_scenario(const ChaosSpec& spec, const ChaosOptions& options = {});

}  // namespace soda::chaos
