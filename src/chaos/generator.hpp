// ScenarioGenerator: one uint64 seed -> one complete ChaosSpec, through
// independent forked sim::Rng streams (topology / services / faults), so the
// same seed always composes the same scenario on every platform and under
// sim::ParallelRunner. Every sampled number is drawn quantized — integer
// rates, quarter-second times, 1/20-step uplink factors — which keeps the
// scenario-DSL rendering (chaos/dsl) an exact round trip.
#pragma once

#include <cstdint>

#include "chaos/spec.hpp"

namespace soda::chaos {

/// Composes a random fleet (2-5 hosts of the paper's two classes), 1-3
/// replicated services each with a random switch policy and open-loop
/// traffic trace, a random placement policy, and a 1-6 event fault schedule
/// (crashes, recoveries, slow hosts, lossy links, guest crashes) with
/// overlapping windows and crash-during-recovery sequences. The result
/// always passes validate_spec().
ChaosSpec generate_scenario(std::uint64_t seed);

/// Warm-start variant: keeps `base`'s fleet, placement policy, content size,
/// and service set (the parts baked into a chaos checkpoint's T0 world) and
/// redraws only the post-T0 inputs — per-service traffic traces/seeds and
/// the fault schedule — from `seed`. `soda_chaos fuzz --from <ckpt>` runs
/// thousands of these against one restored world.
ChaosSpec generate_scenario_from_base(const ChaosSpec& base,
                                      std::uint64_t seed);

}  // namespace soda::chaos
