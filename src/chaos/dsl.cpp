#include "chaos/dsl.hpp"

#include <cstdio>
#include <cstdlib>

#include "core/scenario.hpp"
#include "util/strings.hpp"

namespace soda::chaos {

namespace {

/// Shortest exact decimal for the quantized values the generator draws
/// (quarters and twentieths round-trip through %g / strtod bit-exactly).
std::string num(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  return buf;
}

std::string render_phase(const workload::TrafficPhase& phase) {
  using Shape = workload::TrafficPhase::Shape;
  const std::string seconds = num(phase.seconds);
  switch (phase.shape) {
    case Shape::kConstant:
      return "const:" + num(phase.rate) + "x" + seconds;
    case Shape::kBurst:
      return "burst:" + num(phase.rate) + "x" + seconds;
    case Shape::kRamp:
      return "ramp:" + num(phase.rate) + ".." + num(phase.rate_to) + "x" +
             seconds;
    case Shape::kDiurnal: {
      std::string spec = "diurnal:" + num(phase.rate) + "~" +
                         num(phase.amplitude) + "x" + seconds;
      if (phase.period_s != phase.seconds) spec += "/" + num(phase.period_s);
      return spec;
    }
  }
  return "";
}

Result<std::uint64_t> option_u64(const std::string& arg,
                                 std::string_view prefix) {
  if (!util::starts_with(arg, prefix)) {
    return Error{"expected option " + std::string(prefix) + "N, got '" + arg +
                 "'"};
  }
  const auto value = util::parse_double(arg.substr(prefix.size()));
  if (!value || *value < 0) return Error{"bad option '" + arg + "'"};
  return static_cast<std::uint64_t>(*value);
}

}  // namespace

workload::TrafficTrace trace_from_phases(
    const std::vector<workload::TrafficPhase>& phases) {
  using Shape = workload::TrafficPhase::Shape;
  workload::TrafficTrace trace;
  for (const workload::TrafficPhase& phase : phases) {
    switch (phase.shape) {
      case Shape::kConstant: trace.constant(phase.rate, phase.seconds); break;
      case Shape::kBurst: trace.burst(phase.rate, phase.seconds); break;
      case Shape::kRamp:
        trace.ramp(phase.rate, phase.rate_to, phase.seconds);
        break;
      case Shape::kDiurnal:
        trace.diurnal(phase.rate, phase.amplitude, phase.seconds,
                      phase.period_s);
        break;
    }
  }
  return trace;
}

std::string render_trace_spec(
    const std::vector<workload::TrafficPhase>& phases) {
  std::string spec;
  for (const workload::TrafficPhase& phase : phases) {
    if (!spec.empty()) spec += ",";
    spec += render_phase(phase);
  }
  return spec;
}

std::string render_dsl(const ChaosSpec& spec) {
  std::string out = "# chaos seed " + std::to_string(spec.seed) + "\n";
  if (!spec.snapshot.empty()) {
    // Warm-start header: replay restores the pre-fault world from this
    // chaos checkpoint instead of rebuilding it (paths with a leading '#'
    // or embedded newlines cannot be expressed and are not produced).
    out += "# snapshot: " + spec.snapshot + "\n";
  }
  out += "placement " +
         std::string(core::placement_policy_name(spec.placement)) + "\n";
  for (int i = 0; i < static_cast<int>(spec.hosts.size()); ++i) {
    out += std::string("host ") +
           (spec.hosts[static_cast<std::size_t>(i)].big ? "seattle"
                                                        : "tacoma") +
           " 10.0." + std::to_string(i + 1) + ".0 16\n";
  }
  if (!spec.services.empty()) {
    out += "repo asp-repo\n";
    out += "asp chaos key\n";
    out += "publish web content-mb=" + std::to_string(spec.content_mb) + "\n";
    for (const ChaosService& service : spec.services) {
      out += "create " + service.name + " web n=" +
             std::to_string(service.units) + "\n";
      if (service.policy != "weighted-round-robin" || service.policy_seed) {
        out += "switch-policy " + service.name + " " + service.policy;
        if (service.policy_seed) {
          out += " seed=" + std::to_string(service.policy_seed);
        }
        out += "\n";
      }
      if (!service.trace.empty()) {
        out += "traffic " + service.name + " " +
               render_trace_spec(service.trace) +
               " seed=" + std::to_string(service.traffic_seed) + "\n";
      }
    }
  }
  double t = 0;
  for (const ChaosFault& fault : spec.faults) {
    if (fault.at_s > t) {
      out += "advance " + num(fault.at_s - t) + "\n";
      t = fault.at_s;
    }
    switch (fault.kind) {
      case core::FaultKind::kHostCrash:
        out += "crash-host " + chaos_host_name(spec, fault.host) + "\n";
        break;
      case core::FaultKind::kHostRecover:
        out += "recover-host " + chaos_host_name(spec, fault.host) + "\n";
        break;
      case core::FaultKind::kSlowHost:
        if (fault.severity == 1.0) {
          out += "restore-host " + chaos_host_name(spec, fault.host) + "\n";
        } else {
          out += "slow-host " + chaos_host_name(spec, fault.host) + " " +
                 num(fault.severity) + "\n";
        }
        break;
      case core::FaultKind::kLossyLink:
        out += "lossy-link " + chaos_host_name(spec, fault.host) + " " +
               num(fault.severity) + "\n";
        break;
      case core::FaultKind::kGuestCrash: {
        const std::size_t slash = fault.node.find('/');
        out += "crash " + fault.node.substr(0, slash) + " " +
               fault.node.substr(slash + 1) + "\n";
        break;
      }
    }
  }
  if (spec.horizon_s > t) out += "advance " + num(spec.horizon_s - t) + "\n";
  out += "detect\n";
  return out;
}

Result<ChaosSpec> parse_dsl(std::string_view text) {
  auto scenario = core::Scenario::parse(text);
  if (!scenario.ok()) return scenario.error();

  ChaosSpec spec;
  // The seed and warm-start checkpoint travel in header comments — no verb
  // carries them.
  for (const auto& line : util::split(text, '\n')) {
    const std::string_view trimmed = util::trim(line);
    constexpr std::string_view kSeedHeader = "# chaos seed ";
    constexpr std::string_view kSnapshotHeader = "# snapshot: ";
    if (util::starts_with(trimmed, kSeedHeader)) {
      spec.seed = std::strtoull(
          std::string(trimmed.substr(kSeedHeader.size())).c_str(), nullptr,
          10);
    } else if (util::starts_with(trimmed, kSnapshotHeader)) {
      spec.snapshot = std::string(trimmed.substr(kSnapshotHeader.size()));
    }
  }

  double t = 0;
  const auto host_index = [&](const std::string& name) -> int {
    for (int i = 0; i < static_cast<int>(spec.hosts.size()); ++i) {
      if (chaos_host_name(spec, i) == name) return i;
    }
    return -1;
  };
  const auto service_of = [&](const std::string& name) -> ChaosService* {
    for (ChaosService& service : spec.services) {
      if (service.name == name) return &service;
    }
    return nullptr;
  };
  const auto fault_at = [&](const core::FaultKind kind,
                            const std::string& host) -> Result<ChaosFault> {
    const int index = host_index(host);
    if (index < 0) return Error{"unknown chaos host '" + host + "'"};
    ChaosFault fault;
    fault.at_s = t;
    fault.kind = kind;
    fault.host = index;
    return fault;
  };

  for (const core::ScenarioCommand& cmd : scenario.value().commands()) {
    const auto fail = [&](const std::string& what) {
      return Error{"line " + std::to_string(cmd.line) + ": " + what};
    };
    if (cmd.verb == "placement") {
      if (cmd.args[0] == "first-fit") {
        spec.placement = core::PlacementPolicy::kFirstFit;
      } else if (cmd.args[0] == "best-fit") {
        spec.placement = core::PlacementPolicy::kBestFit;
      } else if (cmd.args[0] == "worst-fit") {
        spec.placement = core::PlacementPolicy::kWorstFit;
      } else if (cmd.args[0] == "cache-affinity") {
        spec.placement = core::PlacementPolicy::kCacheAffinity;
      } else {
        return fail("unknown placement '" + cmd.args[0] + "'");
      }
    } else if (cmd.verb == "host") {
      if (cmd.args[0] != "seattle" && cmd.args[0] != "tacoma") {
        return fail("unknown host spec '" + cmd.args[0] + "'");
      }
      spec.hosts.push_back(ChaosHost{cmd.args[0] == "seattle"});
    } else if (cmd.verb == "repo" || cmd.verb == "asp" ||
               cmd.verb == "detect") {
      // Fixed scaffolding in rendered reproducers; nothing spec-bearing.
    } else if (cmd.verb == "publish") {
      if (cmd.args.size() == 2) {
        auto mb = option_u64(cmd.args[1], "content-mb=");
        if (!mb.ok()) return fail(mb.error().message);
        spec.content_mb = static_cast<int>(mb.value());
      }
    } else if (cmd.verb == "create") {
      ChaosService service;
      service.name = cmd.args[0];
      auto n = option_u64(cmd.args[2], "n=");
      if (!n.ok()) return fail(n.error().message);
      service.units = static_cast<int>(n.value());
      spec.services.push_back(std::move(service));
    } else if (cmd.verb == "switch-policy") {
      ChaosService* service = service_of(cmd.args[0]);
      if (!service) return fail("unknown service '" + cmd.args[0] + "'");
      service->policy = cmd.args[1];
      if (cmd.args.size() == 3) {
        auto seed = option_u64(cmd.args[2], "seed=");
        if (!seed.ok()) return fail(seed.error().message);
        service->policy_seed = seed.value();
      }
    } else if (cmd.verb == "traffic") {
      ChaosService* service = service_of(cmd.args[0]);
      if (!service) return fail("unknown service '" + cmd.args[0] + "'");
      auto trace = workload::TrafficTrace::parse(cmd.args[1]);
      if (!trace.ok()) return fail(trace.error().message);
      service->trace = trace.value().phases();
      for (std::size_t i = 2; i < cmd.args.size(); ++i) {
        auto seed = option_u64(cmd.args[i], "seed=");
        if (!seed.ok()) return fail(seed.error().message);
        service->traffic_seed = seed.value();
      }
    } else if (cmd.verb == "advance") {
      const auto seconds = util::parse_double(cmd.args[0]);
      if (!seconds || *seconds < 0) return fail("bad advance");
      t += *seconds;
    } else if (cmd.verb == "crash-host" || cmd.verb == "recover-host" ||
               cmd.verb == "restore-host") {
      auto fault = fault_at(cmd.verb == "recover-host"
                                ? core::FaultKind::kHostRecover
                                : cmd.verb == "crash-host"
                                      ? core::FaultKind::kHostCrash
                                      : core::FaultKind::kSlowHost,
                            cmd.args[0]);
      if (!fault.ok()) return fail(fault.error().message);
      spec.faults.push_back(std::move(fault).value());
    } else if (cmd.verb == "slow-host" || cmd.verb == "lossy-link") {
      auto fault = fault_at(cmd.verb == "slow-host"
                                ? core::FaultKind::kSlowHost
                                : core::FaultKind::kLossyLink,
                            cmd.args[0]);
      if (!fault.ok()) return fail(fault.error().message);
      const auto factor = util::parse_double(cmd.args[1]);
      if (!factor || !(*factor > 0)) return fail("bad factor");
      fault.value().severity = *factor;
      spec.faults.push_back(std::move(fault).value());
    } else if (cmd.verb == "crash") {
      ChaosFault fault;
      fault.at_s = t;
      fault.kind = core::FaultKind::kGuestCrash;
      fault.node = cmd.args[0] + "/" + cmd.args[1];
      spec.faults.push_back(std::move(fault));
    } else {
      return fail("verb '" + cmd.verb + "' has no chaos-spec meaning");
    }
  }
  spec.horizon_s = t;

  if (auto valid = validate_spec(spec); !valid.ok()) return valid.error();
  return spec;
}

}  // namespace soda::chaos
