#include "chaos/shrink.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"
#include "util/strings.hpp"

namespace soda::chaos {

namespace {

/// Oracle wrapper that refuses structurally invalid candidates and counts
/// every real attempt.
struct Tester {
  const ChaosOracle& oracle;
  std::size_t tried = 0;

  bool fails(const ChaosSpec& candidate) {
    if (!validate_spec(candidate).ok()) return false;
    ++tried;
    return oracle(candidate);
  }
};

/// ddmin over the fault list: try dropping chunks of half the list, then
/// quarters, down to single events. Returns true when anything was removed.
bool shrink_faults(ChaosSpec& spec, Tester& tester) {
  bool improved = false;
  std::size_t chunk = (spec.faults.size() + 1) / 2;
  while (chunk >= 1 && !spec.faults.empty()) {
    bool removed_any = false;
    for (std::size_t start = 0; start < spec.faults.size();) {
      ChaosSpec candidate = spec;
      const std::size_t end =
          std::min(start + chunk, candidate.faults.size());
      candidate.faults.erase(candidate.faults.begin() +
                                 static_cast<std::ptrdiff_t>(start),
                             candidate.faults.begin() +
                                 static_cast<std::ptrdiff_t>(end));
      if (tester.fails(candidate)) {
        spec = std::move(candidate);
        improved = removed_any = true;
        // keep `start`: the next chunk slid into this position
      } else {
        start += chunk;
      }
    }
    if (!removed_any) {
      if (chunk == 1) break;
      chunk = (chunk + 1) / 2;
    }
  }
  return improved;
}

/// Drop services (from the back, so names stay dense) together with their
/// guest-crash faults.
bool shrink_services(ChaosSpec& spec, Tester& tester) {
  bool improved = false;
  for (std::size_t k = spec.services.size(); k-- > 0;) {
    ChaosSpec candidate = spec;
    const std::string prefix =
        candidate.services[k].name + "/";
    candidate.services.erase(candidate.services.begin() +
                             static_cast<std::ptrdiff_t>(k));
    std::erase_if(candidate.faults, [&](const ChaosFault& fault) {
      return fault.kind == core::FaultKind::kGuestCrash &&
             util::starts_with(fault.node, prefix);
    });
    if (tester.fails(candidate)) {
      spec = std::move(candidate);
      improved = true;
    }
  }
  return improved;
}

bool shrink_traffic(ChaosSpec& spec, Tester& tester) {
  bool improved = false;
  for (std::size_t k = 0; k < spec.services.size(); ++k) {
    if (spec.services[k].trace.empty()) continue;
    {
      ChaosSpec candidate = spec;
      candidate.services[k].trace.clear();
      candidate.services[k].traffic_seed = 1;  // back to the default
      if (tester.fails(candidate)) {
        spec = std::move(candidate);
        improved = true;
        continue;
      }
    }
    if (spec.services[k].trace.size() > 1) {
      ChaosSpec candidate = spec;
      auto& trace = candidate.services[k].trace;
      trace.resize((trace.size() + 1) / 2);
      if (tester.fails(candidate)) {
        spec = std::move(candidate);
        improved = true;
      }
    }
    {
      ChaosSpec candidate = spec;
      bool changed = false;
      for (workload::TrafficPhase& phase : candidate.services[k].trace) {
        // Halve on the quarter-second grid so the DSL stays exact.
        const double halved =
            std::max(0.25, std::floor(phase.seconds * 2.0) / 4.0);
        if (halved < phase.seconds) {
          phase.seconds = halved;
          if (phase.period_s > halved) phase.period_s = halved;
          changed = true;
        }
      }
      if (changed && tester.fails(candidate)) {
        spec = std::move(candidate);
        improved = true;
      }
    }
  }
  return improved;
}

bool shrink_units(ChaosSpec& spec, Tester& tester) {
  bool improved = false;
  for (std::size_t k = 0; k < spec.services.size(); ++k) {
    if (spec.services[k].units <= 1) continue;
    ChaosSpec candidate = spec;
    candidate.services[k].units = 1;
    // Guest faults aimed at now-nonexistent ordinals would be silently
    // skipped by the runner; drop them so the reproducer stays honest.
    std::erase_if(candidate.faults, [&](const ChaosFault& fault) {
      return fault.kind == core::FaultKind::kGuestCrash &&
             util::starts_with(fault.node,
                               candidate.services[k].name + "/") &&
             fault.node != candidate.services[k].name + "/0";
    });
    if (tester.fails(candidate)) {
      spec = std::move(candidate);
      improved = true;
    }
  }
  return improved;
}

bool shrink_hosts(ChaosSpec& spec, Tester& tester) {
  bool improved = false;
  while (spec.hosts.size() > 1) {
    ChaosSpec candidate = spec;
    const int last = static_cast<int>(candidate.hosts.size()) - 1;
    candidate.hosts.pop_back();
    std::erase_if(candidate.faults, [&](const ChaosFault& fault) {
      return fault.kind != core::FaultKind::kGuestCrash &&
             fault.host == last;
    });
    if (!tester.fails(candidate)) break;
    spec = std::move(candidate);
    improved = true;
  }
  return improved;
}

bool shrink_scalars(ChaosSpec& spec, Tester& tester) {
  bool improved = false;
  if (spec.content_mb > 1) {
    ChaosSpec candidate = spec;
    candidate.content_mb = 1;
    if (tester.fails(candidate)) {
      spec = std::move(candidate);
      improved = true;
    }
  }
  const double tight = spec.faults.empty()
                           ? 1.0
                           : spec.faults.back().at_s + 3.0;
  if (tight < spec.horizon_s) {
    ChaosSpec candidate = spec;
    candidate.horizon_s = tight;
    if (tester.fails(candidate)) {
      spec = std::move(candidate);
      improved = true;
    }
  }
  for (std::size_t k = 0; k < spec.services.size(); ++k) {
    if (spec.services[k].policy == "weighted-round-robin" &&
        spec.services[k].policy_seed == 0) {
      continue;
    }
    ChaosSpec candidate = spec;
    candidate.services[k].policy = "weighted-round-robin";
    candidate.services[k].policy_seed = 0;
    if (tester.fails(candidate)) {
      spec = std::move(candidate);
      improved = true;
    }
  }
  return improved;
}

}  // namespace

ShrinkResult shrink_scenario(ChaosSpec failing, const ChaosOracle& oracle) {
  SODA_EXPECTS(validate_spec(failing).ok());
  Tester tester{oracle};
  bool improved = true;
  while (improved) {
    improved = false;
    improved |= shrink_faults(failing, tester);
    improved |= shrink_services(failing, tester);
    improved |= shrink_traffic(failing, tester);
    improved |= shrink_units(failing, tester);
    improved |= shrink_hosts(failing, tester);
    improved |= shrink_scalars(failing, tester);
  }
  return ShrinkResult{std::move(failing), tester.tried};
}

}  // namespace soda::chaos
