#include "chaos/spec.hpp"

#include <set>

namespace soda::chaos {

std::string chaos_host_name(const ChaosSpec& spec, int index) {
  const char* kind = spec.hosts[static_cast<std::size_t>(index)].big
                         ? "seattle"
                         : "tacoma";
  if (index == 0) return kind;
  return std::string(kind) + "-" + std::to_string(index);
}

Status validate_spec(const ChaosSpec& spec) {
  if (spec.hosts.empty()) return Error{"chaos spec has no hosts"};
  if (!(spec.horizon_s > 0)) return Error{"chaos spec horizon must be > 0"};
  std::set<std::string> names;
  for (const ChaosService& service : spec.services) {
    if (service.name.empty()) return Error{"chaos service with empty name"};
    if (!names.insert(service.name).second) {
      return Error{"duplicate chaos service name '" + service.name + "'"};
    }
    if (service.units < 1) {
      return Error{"chaos service '" + service.name + "' has units < 1"};
    }
  }
  double last_at = 0;
  for (const ChaosFault& fault : spec.faults) {
    if (fault.at_s < last_at) return Error{"chaos faults are not sorted"};
    last_at = fault.at_s;
    if (fault.at_s > spec.horizon_s) {
      // A fault past the horizon would fire during the drain-the-queue
      // quiesce after the measured window, racing the detector teardown.
      return Error{"chaos fault at t=" + std::to_string(fault.at_s) +
                   "s lies past the horizon"};
    }
    const bool guest = fault.kind == core::FaultKind::kGuestCrash;
    if (guest) {
      if (fault.node.find('/') == std::string::npos) {
        return Error{"guest-crash fault needs a service/ordinal node name"};
      }
    } else if (fault.host < 0 ||
               fault.host >= static_cast<int>(spec.hosts.size())) {
      return Error{"chaos fault references host index " +
                   std::to_string(fault.host) + " out of range"};
    }
    if ((fault.kind == core::FaultKind::kSlowHost ||
         fault.kind == core::FaultKind::kLossyLink) &&
        !(fault.severity > 0)) {
      return Error{"chaos fault has non-positive factor"};
    }
  }
  return {};
}

}  // namespace soda::chaos
