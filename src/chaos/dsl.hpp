// Scenario-DSL bridge: renders a ChaosSpec as a core/scenario script (the
// replayable reproducer the Shrinker emits) and parses such a script back
// into the identical spec. Because the generator only draws quantized
// numbers (integer rates, quarter-second times, twentieth-step factors),
// `parse_dsl(render_dsl(spec)) == spec` holds bit-exactly — a shrunk
// reproducer on disk is the scenario, not an approximation of it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "chaos/spec.hpp"

namespace soda::chaos {

/// Rebuilds a TrafficTrace from stored phases (the builders are the only
/// way to construct one, so specs store the phase list).
workload::TrafficTrace trace_from_phases(
    const std::vector<workload::TrafficPhase>& phases);

/// The compact trace spec ("const:80x1.5,burst:40x0.5") for `phases`, in
/// the grammar TrafficTrace::parse accepts.
std::string render_trace_spec(const std::vector<workload::TrafficPhase>& phases);

/// Renders the spec as a core::Scenario script: hosts, asp registration,
/// service creations with switch-policy and traffic lines, then the fault
/// timeline as advance/crash/recover/slow/lossy verbs, ending in `detect`.
std::string render_dsl(const ChaosSpec& spec);

/// Parses a script produced by render_dsl back into the spec (validating it
/// through core::Scenario::parse first). Exact inverse of render_dsl.
Result<ChaosSpec> parse_dsl(std::string_view text);

}  // namespace soda::chaos
