// Chaos checkpoint container: one file carrying both a pre-fault world
// snapshot (core::Hup::save_snapshot bytes, taken at T0 — services created,
// switch policies set, failure detector armed, no faults fired) and the
// scenario-DSL rendering of the spec that built it. The embedded base spec
// lets a warm start verify it is resuming the world it thinks it is, and
// lets `soda_chaos fuzz --from` derive fresh fault schedules for a fixed,
// already-built fleet — the expensive build phase is paid once and restored
// thousands of times.
#pragma once

#include <string>

#include "chaos/spec.hpp"

namespace soda::chaos {

/// A read checkpoint: the originating spec plus the T0 world bytes.
struct ChaosCheckpoint {
  ChaosSpec base;
  std::string world;  // core::Hup::save_snapshot bytes
};

/// Writes `spec` (rendered as scenario DSL) and `world_bytes` to `path` in
/// the versioned snapshot container (magic, version word, checksum).
Status write_chaos_checkpoint(const std::string& path, const ChaosSpec& spec,
                              std::string world_bytes);

/// Reads a checkpoint written by write_chaos_checkpoint; clear errors on
/// version skew, truncation, or an unparsable embedded spec.
Result<ChaosCheckpoint> read_chaos_checkpoint(const std::string& path);

/// True when `spec` can warm-start from a world built by `base`: the fleet,
/// placement policy, published content size, and the created services (name,
/// size, switch policy) must match — faults, traffic, horizon, and seed are
/// free to differ, since they only act after T0. On mismatch returns an
/// error naming the first difference.
Status base_compatible(const ChaosSpec& base, const ChaosSpec& spec);

}  // namespace soda::chaos
