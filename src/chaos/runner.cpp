#include "chaos/runner.hpp"

#include <algorithm>
#include <bit>
#include <memory>
#include <optional>

#include "chaos/checkpoint.hpp"
#include "chaos/dsl.hpp"
#include "core/daemon.hpp"
#include "core/faults.hpp"
#include "core/hup.hpp"
#include "core/master.hpp"
#include "image/image.hpp"
#include "vm/vsnode.hpp"

namespace soda::chaos {

namespace {

// --- end-state digest (FNV-1a 64) ----------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
}

void mix(std::uint64_t& h, double value) {
  mix(h, std::bit_cast<std::uint64_t>(value));
}

void mix(std::uint64_t& h, const std::string& value) {
  for (const char c : value) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  h *= kFnvPrime;  // delimiter so "ab"+"c" != "a"+"bc"
}

// --- open-loop load driver -------------------------------------------------

/// One service's open-loop arrival process. A slimmed-down TrafficEngine
/// stream that routes through the chaos failover path: the trace keeps
/// offering load at its own rate while hosts crash underneath, and every
/// arrival that lands on a dead backend exercises route_failover exactly
/// like the SiegeClient would.
class LoadDriver {
 public:
  LoadDriver(core::Hup& hup, core::ServiceSwitch& sw,
             const core::ServiceRecord& record,
             workload::TrafficTrace trace, std::uint64_t seed,
             double horizon_s, InvariantChecker* checker)
      : hup_(hup),
        sw_(sw),
        record_(record),
        trace_(std::move(trace)),
        rng_(seed),
        horizon_s_(horizon_s),
        checker_(checker) {}

  void start() {
    t0_ = hup_.engine().now();
    schedule_next();
  }

  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }
  [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::uint64_t failovers() const noexcept { return failovers_; }
  [[nodiscard]] const core::ServiceSwitch& service_switch() const noexcept {
    return sw_;
  }

 private:
  void schedule_next() {
    sim::Engine& engine = hup_.engine();
    const double offset = (engine.now() - t0_).to_seconds();
    if (offset >= trace_.duration_s() || offset >= horizon_s_) return;
    const double rate = std::max(trace_.rate_at(offset), 1e-3);
    engine.schedule_after(sim::SimTime::seconds(rng_.exponential(1.0 / rate)),
                          [this] {
                            const double at =
                                (hup_.engine().now() - t0_).to_seconds();
                            if (at < trace_.duration_s() && at < horizon_s_) {
                              arrive();
                            }
                            schedule_next();
                          });
  }

  void arrive() {
    ++attempts_;
    auto routed = sw_.route();
    if (!routed.ok()) return;
    core::BackEndEntry entry = routed.value();
    if (checker_) checker_->check_routed(sw_, entry);
    // A backend whose host crashed an instant ago is still routable until
    // the detector or monitor notices — that is the failover path, not an
    // invariant violation. Each report_backend_failure marks the backend
    // unhealthy, so the loop strictly shrinks the routable set.
    while (!backend_alive(entry)) {
      auto re = sw_.route_failover(entry);
      ++attempts_;
      ++failovers_;
      if (!re.ok()) return;
      entry = re.value();
      if (checker_) checker_->check_routed(sw_, entry);
    }
    const double service_s = 0.0005 + rng_.uniform() * 0.002;
    const core::BackEndEntry held = entry;
    hup_.engine().schedule_after(
        sim::SimTime::seconds(service_s), [this, held, service_s] {
          sw_.on_request_complete(held.address, held.port);
          sw_.report_response_time(held.address, held.port, service_s);
          ++completed_;
        });
  }

  [[nodiscard]] bool backend_alive(const core::BackEndEntry& entry) {
    for (const core::NodeDescriptor& node : record_.nodes) {
      if (!(node.address == entry.address && node.port == entry.port)) {
        continue;
      }
      core::SodaDaemon* daemon = hup_.find_daemon(node.host_name);
      if (!daemon || !daemon->alive()) return false;
      const vm::VirtualServiceNode* vsn = daemon->find_node(node.node_name);
      return vsn && vsn->running();
    }
    return false;  // no longer a node of this service
  }

  core::Hup& hup_;
  core::ServiceSwitch& sw_;
  const core::ServiceRecord& record_;  // deque slot: address is stable
  workload::TrafficTrace trace_;
  sim::Rng rng_;
  sim::SimTime t0_;
  double horizon_s_ = 0;
  InvariantChecker* checker_ = nullptr;
  std::uint64_t attempts_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failovers_ = 0;
};

std::uint64_t end_state_digest(core::Hup& hup, const ChaosReport& report,
                               const std::vector<std::unique_ptr<LoadDriver>>&
                                   drivers) {
  std::uint64_t h = kFnvOffset;
  for (const core::TraceEvent& event : hup.trace().events()) {
    mix(h, event.at.to_seconds());
    mix(h, static_cast<std::uint64_t>(event.kind));
    mix(h, event.actor);
    mix(h, event.subject);
    mix(h, event.detail);
  }
  const core::MetricsRegistry& metrics = hup.master().metrics();
  for (const std::string& name : metrics.names()) {
    mix(h, name);
    mix(h, metrics.value(name));
  }
  hup.master().services().for_each([&](const std::string& name,
                                       const core::ServiceRecord& record) {
    mix(h, name);
    mix(h, std::string(core::service_state_name(record.lifecycle.state())));
    for (const core::NodeDescriptor& node : record.nodes) {
      mix(h, node.node_name);
      mix(h, node.host_name);
      mix(h, node.address.to_string());
      mix(h, static_cast<std::uint64_t>(node.port));
      mix(h, static_cast<std::uint64_t>(node.capacity_units));
    }
    for (const core::Placement& placement : record.placements) {
      mix(h, placement.node_name);
      mix(h, static_cast<std::uint64_t>(placement.units));
    }
    if (record.service_switch) {
      mix(h, record.service_switch->requests_routed());
      mix(h, record.service_switch->requests_refused());
      mix(h, record.service_switch->failovers());
      mix(h, static_cast<std::uint64_t>(
                 record.service_switch->backends().size()));
    }
  });
  for (const core::SodaDaemon* daemon : hup.master().daemons()) {
    const host::HupHost& host = daemon->host();
    mix(h, static_cast<std::uint64_t>(daemon->alive() ? 1 : 0));
    mix(h, host.reserved().cpu_mhz);
    mix(h, static_cast<std::uint64_t>(host.reserved().memory_mb));
    mix(h, static_cast<std::uint64_t>(host.reserved().disk_mb));
    mix(h, host.reserved().bandwidth_mbps);
    mix(h, static_cast<std::uint64_t>(host.slices().size()));
  }
  mix(h, report.faults_injected);
  for (const auto& driver : drivers) {
    mix(h, driver->attempts());
    mix(h, driver->completed());
  }
  return h;
}

}  // namespace

ChaosReport run_scenario(const ChaosSpec& spec, const ChaosOptions& options) {
  ChaosReport report;
  if (auto valid = validate_spec(spec); !valid.ok()) {
    report.setup_error = valid.error().message;
    return report;
  }

  const std::string from = !options.from_checkpoint.empty()
                               ? options.from_checkpoint
                               : spec.snapshot;

  core::MasterConfig config;
  config.placement = spec.placement;
  core::Hup hup(config);
  // Sharded execution covers the whole scenario — build, faults, recovery —
  // not just the steady state; every phase must digest identically.
  hup.engine().enable_sharding(options.shard_workers);
  std::optional<InvariantChecker> checker;
  InvariantChecker::Options checker_options;
  checker_options.synthetic_violation_on_host_down =
      options.synthetic_violation_on_host_down;

  std::size_t attempts = 0;
  if (!from.empty()) {
    // Warm start: the expensive build phase (hosts, priming, switch
    // configuration, detector arming) is restored wholesale from the
    // checkpointed T0 world; only the fault plan and traffic are new.
    auto checkpoint = read_chaos_checkpoint(from);
    if (!checkpoint.ok()) {
      report.setup_error = checkpoint.error().message;
      return report;
    }
    if (auto compat = base_compatible(checkpoint.value().base, spec);
        !compat.ok()) {
      report.setup_error = compat.error().message;
      return report;
    }
    if (auto loaded = hup.load_snapshot(checkpoint.value().world);
        !loaded.ok()) {
      report.setup_error = loaded.error().message;
      return report;
    }
    report.warm_started = true;
    attempts = spec.services.size();
    for (const ChaosService& service : spec.services) {
      if (hup.master().find_service(service.name) != nullptr) {
        ++report.services_running;
      } else {
        ++report.creations_rejected;
      }
    }
    // The checker can only subscribe now — the build-phase bus events it
    // would have observed are already folded into the restored state.
    if (options.check_invariants) {
      checker.emplace(hup, std::move(checker_options));
    }
  } else {
    for (int i = 0; i < static_cast<int>(spec.hosts.size()); ++i) {
      host::HostSpec host_spec = spec.hosts[static_cast<std::size_t>(i)].big
                                     ? host::HostSpec::seattle()
                                     : host::HostSpec::tacoma();
      host_spec.name = chaos_host_name(spec, i);
      hup.add_host(
          host_spec,
          net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i + 1), 0), 16);
    }

    // Observe creations too: the checker subscribes before the first event.
    if (options.check_invariants) {
      checker.emplace(hup, std::move(checker_options));
    }

    if (!spec.services.empty()) {
      image::ImageRepository& repo = hup.add_repository("asp-repo");
      hup.agent().register_asp("chaos", "key");
      auto location = repo.publish(image::web_content_image(
          static_cast<std::int64_t>(spec.content_mb) * 1024 * 1024));
      if (!location.ok()) {
        report.setup_error = location.error().message;
        return report;
      }
      for (const ChaosService& service : spec.services) {
        core::ServiceCreationRequest request;
        request.credentials = {"chaos", "key"};
        request.service_name = service.name;
        request.image_location = location.value();
        // The scenario DSL's `create` unit (Table 1's example machine), so a
        // rendered reproducer means exactly what this runner executed.
        request.requirement = {service.units, host::MachineConfig{}};
        bool rejected = false;
        hup.agent().service_creation(
            request, [&rejected](core::ApiResult<core::ServiceCreationReply>
                                     reply,
                                 sim::SimTime) {
              if (!reply.ok()) rejected = true;
            });
        hup.engine().run();
        ++attempts;
        if (rejected) {
          ++report.creations_rejected;
          continue;
        }
        ++report.services_running;
        core::ServiceSwitch* sw = hup.master().find_switch(service.name);
        auto policy = core::make_switch_policy_by_name(
            service.policy,
            service.policy_seed ? service.policy_seed : 0x50DA);
        if (!policy.ok()) {
          report.setup_error = policy.error().message;
          return report;
        }
        if (sw) sw->set_policy(std::move(policy).value());
      }
    }

    hup.enable_failure_detection();
  }
  const sim::SimTime t0 = hup.engine().now();

  if (!options.save_checkpoint.empty()) {
    // T0 is the one quiesce point every scenario passes through: the only
    // pending events are the re-armable heartbeat/detector timers.
    auto bytes = hup.save_snapshot();
    if (!bytes.ok()) {
      report.setup_error = bytes.error().message;
      return report;
    }
    if (auto written = write_chaos_checkpoint(
            options.save_checkpoint, spec, std::move(bytes).value());
        !written.ok()) {
      report.setup_error = written.error().message;
      return report;
    }
  }

  core::FaultPlan plan;
  for (const ChaosFault& fault : spec.faults) {
    core::FaultEvent event;
    event.at = t0 + sim::SimTime::seconds(fault.at_s);
    event.kind = fault.kind;
    event.severity = fault.severity;
    if (fault.kind == core::FaultKind::kGuestCrash) {
      // The target service may have been rejected at admission — the
      // generator cannot know, so nonexistent nodes are skipped, not
      // errors.
      bool exists = false;
      for (core::SodaDaemon* daemon : hup.master().daemons()) {
        if (daemon->find_node(fault.node)) exists = true;
      }
      if (!exists) continue;
      event.target = fault.node;
    } else {
      event.target = chaos_host_name(spec, fault.host);
    }
    plan.add(std::move(event));
  }
  core::FaultInjector injector(hup);
  if (auto armed = injector.arm(plan); !armed.ok()) {
    report.setup_error = armed.error().message;
    return report;
  }

  std::vector<std::unique_ptr<LoadDriver>> drivers;
  for (const ChaosService& service : spec.services) {
    if (service.trace.empty()) continue;
    core::ServiceSwitch* sw = hup.master().find_switch(service.name);
    const core::ServiceRecord* record =
        hup.master().find_service(service.name);
    if (!sw || !record) continue;  // rejected at admission
    drivers.push_back(std::make_unique<LoadDriver>(
        hup, *sw, *record, trace_from_phases(service.trace),
        service.traffic_seed, spec.horizon_s,
        checker ? &*checker : nullptr));
    drivers.back()->start();
  }

  hup.engine().run_until(t0 + sim::SimTime::seconds(spec.horizon_s));
  report.faults_injected = injector.injected();

  // Quiesce the periodic loops, then give recovery a bounded number of
  // stabilization rounds. Fixed count, not run-to-convergence: a service
  // degraded for lack of capacity legitimately stays degraded forever.
  hup.master().stop_failure_detector();
  for (core::SodaDaemon* daemon : hup.master().daemons()) {
    daemon->stop_heartbeat();
  }
  hup.engine().run();
  for (int round = 0; round < 3; ++round) {
    hup.master().poll_liveness_once();
    hup.master().retry_recoveries();
    hup.engine().run();
  }

  for (const auto& driver : drivers) {
    report.requests += driver->attempts();
  }
  hup.master().services().for_each(
      [&](const std::string&, const core::ServiceRecord& record) {
        if (!record.service_switch) return;
        report.routed += record.service_switch->requests_routed();
        report.refused += record.service_switch->requests_refused();
      });

  if (checker) {
    checker->sweep();
    for (const auto& driver : drivers) {
      const core::ServiceSwitch& sw = driver->service_switch();
      checker->expect(
          driver->attempts() ==
              sw.requests_routed() + sw.requests_refused(),
          "request-conservation",
          sw.service_name() + " saw " + std::to_string(driver->attempts()) +
              " arrivals but routed+refused = " +
              std::to_string(sw.requests_routed() + sw.requests_refused()));
    }
    const double admitted = hup.master().metrics().value("admissions");
    const double rejected = hup.master().metrics().value("rejections");
    checker->expect(admitted + rejected == static_cast<double>(attempts),
                    "admission-accounting",
                    "admissions+rejections != creation attempts");
    checker->final_checks();
    report.violations = checker->violations();
  }

  report.digest = end_state_digest(hup, report, drivers);
  return report;
}

}  // namespace soda::chaos
