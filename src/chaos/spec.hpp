// The chaos fuzzer's scenario value type (DESIGN.md §13): one ChaosSpec is a
// complete, self-contained experiment — fleet topology, services with their
// switch policies and traffic traces, a placement policy, and a timed fault
// schedule — derived deterministically from a single uint64 seed. Specs are
// plain comparable data so the Shrinker can bisect them and tests can assert
// that shrinking is deterministic; every numeric field is quantized (integer
// rates, quarter-second times, twentieth-step factors) so the scenario-DSL
// rendering in chaos/dsl round-trips bit-exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/faults.hpp"
#include "core/placement.hpp"
#include "workload/traffic.hpp"

namespace soda::chaos {

/// One HUP host: the paper's two machine classes.
struct ChaosHost {
  bool big = true;  // seattle-class (2.6 GHz / 2 GB) vs tacoma-class

  friend bool operator==(const ChaosHost&, const ChaosHost&) = default;
};

/// One service: <units, fig2-small-unit> with a switch policy and an
/// open-loop traffic trace driven while faults fire.
struct ChaosService {
  std::string name;
  int units = 1;
  /// A make_switch_policy_by_name() name; `policy_seed` feeds "random" only
  /// (0 for the deterministic policies, so specs compare cleanly).
  std::string policy = "weighted-round-robin";
  std::uint64_t policy_seed = 0;
  /// Open-loop arrival trace (empty = no load on this service).
  std::vector<workload::TrafficPhase> trace;
  std::uint64_t traffic_seed = 1;

  friend bool operator==(const ChaosService&, const ChaosService&) = default;
};

/// One scheduled fault, at `at_s` seconds after every service is running.
struct ChaosFault {
  double at_s = 0;
  core::FaultKind kind = core::FaultKind::kHostCrash;
  /// Host index into ChaosSpec::hosts (host-kind faults; 0 for guest
  /// crashes).
  int host = 0;
  /// Node name for kGuestCrash ("svc0/1"); empty for host-kind faults.
  std::string node;
  /// Slow-host / lossy-link uplink factor; 1.0 elsewhere.
  double severity = 1.0;

  friend bool operator==(const ChaosFault&, const ChaosFault&) = default;
};

/// A complete generated scenario. Faults are kept sorted by at_s.
struct ChaosSpec {
  std::uint64_t seed = 0;
  core::PlacementPolicy placement = core::PlacementPolicy::kWorstFit;
  int content_mb = 1;
  /// Run length after T0 (service creation done, detector armed); recovery
  /// headroom past the last fault.
  double horizon_s = 5;
  /// Optional path to a chaos checkpoint (chaos/checkpoint.hpp) to
  /// warm-start from instead of building the world: travels as a
  /// `# snapshot:` header in rendered reproducers, so a shrunk reproducer
  /// can replay against the exact pre-fault world it was found in.
  std::string snapshot;
  std::vector<ChaosHost> hosts;
  std::vector<ChaosService> services;
  std::vector<ChaosFault> faults;

  friend bool operator==(const ChaosSpec&, const ChaosSpec&) = default;
};

/// The scripted-host naming rule of core/scenario's `host` verb, mirrored so
/// rendered reproducers name the same hosts the runner builds: host 0 is
/// named after its class ("seattle"/"tacoma"), later hosts append their
/// global index ("tacoma-2").
std::string chaos_host_name(const ChaosSpec& spec, int index);

/// Structural validity: >= 1 host, unique service names, fault host indices
/// in range, positive slow/lossy factors, sorted fault times, quantized
/// horizon. The generator always produces valid specs; the Shrinker uses
/// this to refuse degenerate candidates.
Status validate_spec(const ChaosSpec& spec);

}  // namespace soda::chaos
