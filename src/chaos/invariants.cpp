#include "chaos/invariants.hpp"

#include <cmath>
#include <cstdlib>

#include "core/daemon.hpp"
#include "core/master.hpp"
#include "vm/vsnode.hpp"

namespace soda::chaos {

namespace {

/// Incrementally-maintained double aggregates (cpu/bandwidth) tolerate a
/// relative epsilon; the integer fields (memory/disk) must match exactly.
bool close(double a, double b) {
  return std::abs(a - b) <= 1e-6 * (1.0 + std::abs(a) + std::abs(b));
}

}  // namespace

std::vector<std::string> billing_conservation_violations(
    const std::vector<core::BillingEntry>& entries,
    const std::vector<BillingExpectation>& live, sim::SimTime now) {
  std::vector<std::string> problems;
  const auto live_of = [&](const std::string& service)
      -> const BillingExpectation* {
    for (const BillingExpectation& expectation : live) {
      if (expectation.service == service) return &expectation;
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < entries.size(); ++i) {
    const core::BillingEntry& entry = entries[i];
    if (entry.started_at > now) {
      problems.push_back(entry.service_name + " accrues from the future (" +
                         std::to_string(entry.started_at.to_seconds()) +
                         "s > now)");
    }
    if (!entry.open() && entry.ended_at < entry.started_at) {
      problems.push_back(entry.service_name + " window runs backwards");
    }
    if (entry.machine_instances <= 0) {
      problems.push_back(entry.service_name + " charges " +
                         std::to_string(entry.machine_instances) +
                         " machine instances");
    }
    // Same-service windows must be disjoint: an overlap charges the same
    // placement interval twice.
    for (std::size_t j = i + 1; j < entries.size(); ++j) {
      const core::BillingEntry& other = entries[j];
      if (other.service_name != entry.service_name) continue;
      const sim::SimTime a_end = entry.open() ? now : entry.ended_at;
      const sim::SimTime b_end = other.open() ? now : other.ended_at;
      if (entry.started_at < b_end && other.started_at < a_end) {
        problems.push_back(entry.service_name +
                           " is double-billed: overlapping accrual windows");
      }
    }
  }

  // Live services carry exactly one open window, with the right owner and
  // size; nothing else may still accrue.
  for (const BillingExpectation& expectation : live) {
    std::size_t open = 0;
    for (const core::BillingEntry& entry : entries) {
      if (entry.service_name != expectation.service || !entry.open()) continue;
      ++open;
      if (entry.asp_id != expectation.asp_id) {
        problems.push_back(expectation.service + " accrues to " +
                           entry.asp_id + " but is owned by " +
                           expectation.asp_id);
      }
      if (entry.machine_instances != expectation.instances) {
        problems.push_back(expectation.service + " charges " +
                           std::to_string(entry.machine_instances) +
                           " instances but runs " +
                           std::to_string(expectation.instances));
      }
    }
    if (open == 0) {
      problems.push_back(expectation.service +
                         " is live but its accrual was dropped");
    } else if (open > 1) {
      problems.push_back(expectation.service + " is double-billed: " +
                         std::to_string(open) + " open accrual windows");
    }
  }
  for (const core::BillingEntry& entry : entries) {
    if (entry.open() && live_of(entry.service_name) == nullptr) {
      problems.push_back(entry.service_name +
                         " still accrues but is not a live service");
    }
  }
  return problems;
}

InvariantChecker::InvariantChecker(core::Hup& hup, Options options)
    : hup_(hup), options_(std::move(options)) {
  subscription_ = hup_.master().bus().subscribe(
      [this](const core::ControlPlaneEvent& event) { on_event(event); });
}

InvariantChecker::~InvariantChecker() {
  hup_.master().bus().unsubscribe(subscription_);
}

void InvariantChecker::expect(bool ok, std::string invariant,
                              std::string detail) {
  if (ok) return;
  violations_.push_back(Violation{hup_.engine().now().to_seconds(),
                                  std::move(invariant), std::move(detail)});
}

void InvariantChecker::check_routed(const core::ServiceSwitch& sw,
                                    const core::BackEndEntry& entry) {
  for (const core::BackEndState& backend : sw.backends()) {
    if (!(backend.entry == entry)) continue;
    expect(backend.healthy && !backend.draining, "routed-to-unroutable",
           "switch routed to " + entry.address.to_string() + ":" +
               std::to_string(entry.port) +
               (backend.draining ? " (draining)" : " (unhealthy)"));
    return;
  }
  expect(false, "routed-to-stranger",
         "switch routed to " + entry.address.to_string() + ":" +
             std::to_string(entry.port) + " which is not a backend");
}

void InvariantChecker::on_event(const core::ControlPlaneEvent& event) {
  ++events_;
  if (event.kind == core::TraceKind::kHostDown &&
      !options_.synthetic_violation_on_host_down.empty() &&
      event.subject == options_.synthetic_violation_on_host_down) {
    expect(false, "seeded-violation",
           "synthetic failure armed on host " + event.subject);
  }
  // Recovery cascades publish mid-mutation (down_hosts is set before the
  // kHostDown event, placements are pruned after), so a sweep inside the
  // callback would see legitimate transient states. Defer to a zero-delay
  // event instead: FIFO ordering at equal timestamps runs it after the
  // cascade completes, and the pending flag coalesces event storms into
  // one sweep per simulation instant.
  if (sweep_pending_) return;
  sweep_pending_ = true;
  hup_.engine().schedule_after(sim::SimTime::zero(), [this] {
    sweep_pending_ = false;
    sweep();
  });
}

void InvariantChecker::sweep() {
  ++sweeps_;
  const core::SodaMaster& master = hup_.master();

  for (const core::SodaDaemon* daemon : master.daemons()) {
    const host::HupHost& host = daemon->host();
    const host::ResourceVector& cap = host.capacity();
    const host::ResourceVector& res = host.reserved();
    expect(res.cpu_mhz <= cap.cpu_mhz * (1 + 1e-9) &&
               res.memory_mb <= cap.memory_mb && res.disk_mb <= cap.disk_mb &&
               res.bandwidth_mbps <= cap.bandwidth_mbps * (1 + 1e-9),
           "host-over-capacity",
           host.name() + " reserved " + res.to_string() + " of " +
               cap.to_string());
    host::ResourceVector sum;
    for (const host::Slice& slice : host.slices()) {
      sum.cpu_mhz += slice.resources.cpu_mhz;
      sum.memory_mb += slice.resources.memory_mb;
      sum.disk_mb += slice.resources.disk_mb;
      sum.bandwidth_mbps += slice.resources.bandwidth_mbps;
    }
    expect(close(sum.cpu_mhz, res.cpu_mhz) && sum.memory_mb == res.memory_mb &&
               sum.disk_mb == res.disk_mb &&
               close(sum.bandwidth_mbps, res.bandwidth_mbps),
           "host-accounting-drift",
           host.name() + " slices sum to " + sum.to_string() +
               " but reserved is " + res.to_string());
  }

  master.services().for_each([&](const std::string& name,
                                 const core::ServiceRecord& record) {
    for (const core::NodeDescriptor& node : record.nodes) {
      // "Down" means detector-declared: a crashed-but-undetected host still
      // legitimately backs placements until the next missed heartbeat.
      expect(!master.host_down(node.host_name), "placement-on-down-host",
             name + " node " + node.node_name + " on declared-down host " +
                 node.host_name);
      expect(hup_.find_daemon(node.host_name) != nullptr,
             "placement-on-unknown-host",
             name + " node " + node.node_name + " on unregistered host " +
                 node.host_name);
      bool placed = false;
      for (const core::Placement& placement : record.placements) {
        if (placement.node_name == node.node_name) placed = true;
      }
      expect(placed, "node-without-placement",
             name + " node " + node.node_name + " holds no placement");
    }
    if (record.service_switch) {
      for (const core::BackEndState& backend :
           record.service_switch->backends()) {
        if (backend.draining) continue;
        bool known = false;
        for (const core::NodeDescriptor& node : record.nodes) {
          if (node.address == backend.entry.address &&
              node.port == backend.entry.port) {
            known = true;
          }
        }
        expect(known, "backend-without-node",
               name + " switch backend " + backend.entry.address.to_string() +
                   ":" + std::to_string(backend.entry.port) +
                   " maps to no node");
      }
    }
    if (record.lifecycle.state() == core::ServiceState::kRunning &&
        record.components.empty()) {
      int units = 0;
      for (const core::Placement& placement : record.placements) {
        units += placement.units;
      }
      expect(units >= record.requirement.n, "running-below-capacity",
             name + " is kRunning with " + std::to_string(units) + "/" +
                 std::to_string(record.requirement.n) + " units placed");
    }
  });
}

void InvariantChecker::final_checks() {
  const core::SodaMaster& master = hup_.master();
  master.services().for_each([&](const std::string& name,
                                 const core::ServiceRecord& record) {
    const core::ServiceState state = record.lifecycle.state();
    expect(state != core::ServiceState::kRequested &&
               state != core::ServiceState::kAdmitted &&
               state != core::ServiceState::kPriming &&
               state != core::ServiceState::kResizing,
           "stuck-mid-lifecycle",
           name + " ended in " +
               std::string(core::service_state_name(state)));
    if (state != core::ServiceState::kDegraded) return;
    if (record.nodes.size() >=
        static_cast<std::size_t>(master.config().max_nodes_per_service)) {
      return;  // capped, degradation is structural
    }
    // Degraded is only legal when no survivor could host another unit:
    // every live host either already carries this service or has no room
    // for one inflated unit. Anything else means recovery failed to
    // converge to full re-admission.
    const host::ResourceVector unit =
        master.inflated_unit(record.requirement.m);
    for (const core::SodaDaemon* daemon : master.daemons()) {
      if (!daemon->alive() || master.host_down(daemon->host_name())) continue;
      bool used = false;
      for (const core::Placement& placement : record.placements) {
        if (placement.daemon == daemon) used = true;
      }
      if (used) continue;
      expect(core::units_that_fit(daemon->available(), unit) == 0,
             "recovery-not-converged",
             name + " is degraded but " + daemon->host_name() +
                 " has room for another unit");
    }
  });

  check_billing();

  const core::MetricsRegistry& metrics = master.metrics();
  const auto check_counter = [&](const char* counter, std::uint64_t truth) {
    expect(metrics.value(counter) == static_cast<double>(truth),
           "metrics-drift",
           std::string(counter) + " counter is " +
               std::to_string(metrics.value(counter)) + ", master saw " +
               std::to_string(truth));
  };
  check_counter("failures", master.host_failures_detected());
  check_counter("placements_lost", master.placements_lost());
  check_counter("recoveries", master.recoveries_completed());
}

void InvariantChecker::check_billing() {
  // Billing accrues from creation success: a service is "live" for the
  // ledger while it is running (possibly degraded or resizing) and has an
  // enrolled owner; kFailed / kGone services never (or no longer) accrue.
  std::vector<BillingExpectation> live;
  hup_.master().services().for_each(
      [&](const std::string& name, const core::ServiceRecord& record) {
        const core::ServiceState state = record.lifecycle.state();
        if (state != core::ServiceState::kRunning &&
            state != core::ServiceState::kDegraded &&
            state != core::ServiceState::kResizing) {
          return;
        }
        const std::string* owner = hup_.agent().owner_of(name);
        if (!owner) return;
        live.push_back(BillingExpectation{name, *owner, record.requirement.n});
      });
  for (std::string& problem : billing_conservation_violations(
           hup_.agent().billing().entries(), live, hup_.engine().now())) {
    expect(false, "billing-conservation", std::move(problem));
  }
}

}  // namespace soda::chaos
