// InvariantChecker: the chaos fuzzer's oracle (DESIGN.md §13). It subscribes
// to the ControlPlaneBus and, after every control-plane event, sweeps the
// whole HUP for structural invariants — placements never reference a
// detector-declared-down host, switch backends map onto live service nodes,
// host resource accounting stays within capacity, recovery converges, and
// the metrics registry's counters conserve what actually happened. The
// checker is strictly read-only and never draws randomness, so a run with
// the checker attached produces the same digest as one without it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/hup.hpp"
#include "core/switch.hpp"

namespace soda::chaos {

/// One invariant failure, timestamped with the simulation clock.
struct Violation {
  double at_s = 0;
  std::string invariant;  // short stable name, e.g. "placement-on-down-host"
  std::string detail;
};

/// One expected open accrual window for the billing-conservation check: a
/// live (created, not torn down / failed) service owned by `asp_id`,
/// currently sized at `instances` machine instances.
struct BillingExpectation {
  std::string service;
  std::string asp_id;
  int instances = 0;
};

/// Billing/accounting conservation over the ledger: every live service has
/// exactly one open accrual window (matching owner and instance count), no
/// window runs backwards or starts in the future, windows of the same
/// service never overlap (double billing), and no open window references a
/// service that is not live (billing a torn-down placement). Pure function
/// over the entry list so tests can seed corrupt ledgers directly; returns
/// one human-readable description per violation.
std::vector<std::string> billing_conservation_violations(
    const std::vector<core::BillingEntry>& entries,
    const std::vector<BillingExpectation>& live, sim::SimTime now);

class InvariantChecker {
 public:
  struct Options {
    /// Test-only hook: when the failure detector declares this host down,
    /// the checker records a synthetic "seeded-violation". This is how the
    /// Shrinker's end-to-end test plants a known-bad scenario without
    /// breaking a real invariant.
    std::string synthetic_violation_on_host_down;
  };

  /// Subscribes to `hup.master().bus()`. The checker must be destroyed
  /// before the Hup (it unsubscribes in its destructor).
  explicit InvariantChecker(core::Hup& hup, Options options = {});
  ~InvariantChecker();
  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Records a violation unless `ok` holds. For driver-side checks
  /// (request conservation, routed-backend liveness) that the checker
  /// cannot see from the bus alone.
  void expect(bool ok, std::string invariant, std::string detail);

  /// Asserts that a backend the switch just routed to is a live, healthy,
  /// non-draining member of that switch's backend set.
  void check_routed(const core::ServiceSwitch& sw,
                    const core::BackEndEntry& entry);

  /// Full structural sweep now: host accounting, placement/backing-host
  /// liveness, switch-backend <-> node mapping, running-capacity floors.
  /// Scheduled automatically (coalesced, at the same sim-time) after every
  /// bus event; callable directly at quiesce points.
  void sweep();

  /// End-of-run convergence checks: no service stuck mid-lifecycle, every
  /// degraded service justified by genuine lack of capacity, the metrics
  /// registry's failure/recovery counters equal to the Master's, and the
  /// billing ledger conserving accrual (check_billing).
  void final_checks();

  /// Billing-conservation sweep against the Agent's ledger: charged windows
  /// match the services that are actually live. Part of final_checks;
  /// callable directly at quiesce points.
  void check_billing();

  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::size_t events_observed() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t sweeps_run() const noexcept { return sweeps_; }

 private:
  void on_event(const core::ControlPlaneEvent& event);

  core::Hup& hup_;
  Options options_;
  std::size_t subscription_ = 0;
  bool sweep_pending_ = false;
  std::size_t events_ = 0;
  std::size_t sweeps_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace soda::chaos
