#include "chaos/checkpoint.hpp"

#include "chaos/dsl.hpp"
#include "snapshot/format.hpp"

namespace soda::chaos {

Status write_chaos_checkpoint(const std::string& path, const ChaosSpec& spec,
                              std::string world_bytes) {
  snapshot::Writer writer;
  writer.begin_section("chaos-checkpoint");
  writer.str(render_dsl(spec));
  writer.str(world_bytes);
  writer.end_section();
  return snapshot::write_file(path, writer.finish());
}

Result<ChaosCheckpoint> read_chaos_checkpoint(const std::string& path) {
  auto bytes = snapshot::read_file(path);
  if (!bytes.ok()) return bytes.error();
  snapshot::Reader reader(bytes.value());
  reader.begin_section("chaos-checkpoint");
  const std::string dsl = reader.str();
  std::string world = reader.str();
  reader.end_section();
  if (!reader.ok()) return Error{"chaos checkpoint: " + reader.error()};
  auto base = parse_dsl(dsl);
  if (!base.ok()) {
    return Error{"chaos checkpoint: embedded spec: " + base.error().message};
  }
  ChaosCheckpoint checkpoint;
  checkpoint.base = std::move(base).value();
  checkpoint.world = std::move(world);
  return checkpoint;
}

Status base_compatible(const ChaosSpec& base, const ChaosSpec& spec) {
  if (spec.placement != base.placement) {
    return Error{"checkpoint base mismatch: placement policy differs"};
  }
  if (spec.content_mb != base.content_mb) {
    return Error{"checkpoint base mismatch: published content size differs"};
  }
  if (spec.hosts.size() != base.hosts.size()) {
    return Error{"checkpoint base mismatch: fleet has " +
                 std::to_string(base.hosts.size()) + " hosts, spec wants " +
                 std::to_string(spec.hosts.size())};
  }
  for (std::size_t i = 0; i < spec.hosts.size(); ++i) {
    if (!(spec.hosts[i] == base.hosts[i])) {
      return Error{"checkpoint base mismatch: host " + std::to_string(i) +
                   " class differs"};
    }
  }
  if (spec.services.size() != base.services.size()) {
    return Error{"checkpoint base mismatch: service count differs"};
  }
  for (std::size_t i = 0; i < spec.services.size(); ++i) {
    const ChaosService& a = base.services[i];
    const ChaosService& b = spec.services[i];
    // Traffic traces and seeds are post-T0 inputs and may differ freely;
    // everything baked into the built world must match.
    if (a.name != b.name || a.units != b.units || a.policy != b.policy ||
        a.policy_seed != b.policy_seed) {
      return Error{"checkpoint base mismatch: service '" + b.name +
                   "' differs from the checkpointed world"};
    }
  }
  return {};
}

}  // namespace soda::chaos
