// Resource vectors and the paper's resource-requirement vocabulary: a
// machine configuration M is a tuple of CPU / memory / disk / bandwidth
// (Table 1), and an ASP requests a service as <n, M> — "n machines of
// configuration M" (§3).
#pragma once

#include <cstdint>
#include <string>

#include "util/result.hpp"

namespace soda::host {

/// Amounts of the four resource types SODA allocates. Arithmetic is
/// component-wise; `fits` is the admission test.
struct ResourceVector {
  double cpu_mhz = 0;
  std::int64_t memory_mb = 0;
  std::int64_t disk_mb = 0;
  double bandwidth_mbps = 0;

  friend ResourceVector operator+(const ResourceVector& a, const ResourceVector& b);
  friend ResourceVector operator-(const ResourceVector& a, const ResourceVector& b);
  ResourceVector& operator+=(const ResourceVector& other);
  ResourceVector& operator-=(const ResourceVector& other);
  friend bool operator==(const ResourceVector&, const ResourceVector&) = default;

  /// Component-wise scaling (used for slow-down inflation and n× slices).
  [[nodiscard]] ResourceVector scaled(double factor) const;

  /// True when every component of `need` is <= the corresponding component
  /// of *this (with a small tolerance on the continuous components).
  [[nodiscard]] bool fits(const ResourceVector& need) const noexcept;

  /// True when all components are >= 0.
  [[nodiscard]] bool non_negative() const noexcept;

  /// "cpu=512MHz mem=256MB disk=1024MB bw=10Mbps"
  [[nodiscard]] std::string to_string() const;
};

/// The paper's machine configuration M. Semantically identical to a
/// ResourceVector but kept as a distinct type: M is the *unit* of
/// allocation, and a virtual service node's capacity is always an integer
/// multiple of M (§3.2).
struct MachineConfig {
  double cpu_mhz = 512;
  std::int64_t memory_mb = 256;
  std::int64_t disk_mb = 1024;
  double bandwidth_mbps = 10;

  friend bool operator==(const MachineConfig&, const MachineConfig&) = default;

  [[nodiscard]] ResourceVector to_vector() const;
  /// k machine instances worth of resources (k >= 1).
  [[nodiscard]] ResourceVector times(int k) const;

  /// The example configuration from the paper's Table 1.
  static MachineConfig table1_example() { return MachineConfig{}; }
};

/// The ASP's resource requirement <n, M>: n machines of configuration M.
struct ResourceRequirement {
  int n = 1;
  MachineConfig m;

  friend bool operator==(const ResourceRequirement&,
                         const ResourceRequirement&) = default;

  [[nodiscard]] ResourceVector total() const { return m.times(n); }
  /// "<3, cpu=512MHz mem=256MB disk=1024MB bw=10Mbps>"
  [[nodiscard]] std::string to_string() const;
};

}  // namespace soda::host
