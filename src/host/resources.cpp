#include "host/resources.hpp"

#include <cstdio>

#include "util/contract.hpp"

namespace soda::host {

namespace {
// Tolerance for continuous components (MHz / Mbps) so repeated
// reserve/release cycles do not accumulate rejection-causing dust.
constexpr double kSlack = 1e-6;
}  // namespace

ResourceVector operator+(const ResourceVector& a, const ResourceVector& b) {
  return ResourceVector{a.cpu_mhz + b.cpu_mhz, a.memory_mb + b.memory_mb,
                        a.disk_mb + b.disk_mb, a.bandwidth_mbps + b.bandwidth_mbps};
}

ResourceVector operator-(const ResourceVector& a, const ResourceVector& b) {
  return ResourceVector{a.cpu_mhz - b.cpu_mhz, a.memory_mb - b.memory_mb,
                        a.disk_mb - b.disk_mb, a.bandwidth_mbps - b.bandwidth_mbps};
}

ResourceVector& ResourceVector::operator+=(const ResourceVector& other) {
  *this = *this + other;
  return *this;
}

ResourceVector& ResourceVector::operator-=(const ResourceVector& other) {
  *this = *this - other;
  return *this;
}

ResourceVector ResourceVector::scaled(double factor) const {
  SODA_EXPECTS(factor >= 0);
  return ResourceVector{cpu_mhz * factor,
                        static_cast<std::int64_t>(static_cast<double>(memory_mb) * factor),
                        static_cast<std::int64_t>(static_cast<double>(disk_mb) * factor),
                        bandwidth_mbps * factor};
}

bool ResourceVector::fits(const ResourceVector& need) const noexcept {
  return need.cpu_mhz <= cpu_mhz + kSlack && need.memory_mb <= memory_mb &&
         need.disk_mb <= disk_mb && need.bandwidth_mbps <= bandwidth_mbps + kSlack;
}

bool ResourceVector::non_negative() const noexcept {
  return cpu_mhz >= -kSlack && memory_mb >= 0 && disk_mb >= 0 &&
         bandwidth_mbps >= -kSlack;
}

std::string ResourceVector::to_string() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "cpu=%.0fMHz mem=%lldMB disk=%lldMB bw=%.1fMbps",
                cpu_mhz, static_cast<long long>(memory_mb),
                static_cast<long long>(disk_mb), bandwidth_mbps);
  return buf;
}

ResourceVector MachineConfig::to_vector() const {
  return ResourceVector{cpu_mhz, memory_mb, disk_mb, bandwidth_mbps};
}

ResourceVector MachineConfig::times(int k) const {
  SODA_EXPECTS(k >= 1);
  return to_vector().scaled(static_cast<double>(k));
}

std::string ResourceRequirement::to_string() const {
  return "<" + std::to_string(n) + ", " + m.to_vector().to_string() + ">";
}

}  // namespace soda::host
