#include "host/host.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace soda::host {

ResourceVector HostSpec::capacity() const {
  return ResourceVector{cpu_ghz * 1000.0, ram_mb, disk_gb * 1024, nic_mbps};
}

HostSpec HostSpec::seattle() {
  HostSpec spec;
  spec.name = "seattle";
  spec.cpu_ghz = 2.6;   // Intel Xeon
  spec.ram_mb = 2048;
  spec.disk_gb = 73;    // server-class SCSI
  spec.nic_mbps = 100;
  spec.disk_mb_s = 55;
  spec.ramdisk_mb_s = 200;
  return spec;
}

HostSpec HostSpec::tacoma() {
  HostSpec spec;
  spec.name = "tacoma";
  spec.cpu_ghz = 1.8;   // Intel Pentium 4
  spec.ram_mb = 768;
  spec.disk_gb = 40;    // desktop IDE
  spec.nic_mbps = 100;
  spec.disk_mb_s = 25;
  spec.ramdisk_mb_s = 120;
  return spec;
}

HupHost::HupHost(HostSpec spec, net::NodeId lan_node, net::IpPool ip_pool)
    : spec_(std::move(spec)), lan_node_(lan_node), ip_pool_(std::move(ip_pool)) {}

ResourceVector HupHost::reserved() const {
  ResourceVector total;
  for (const auto& slice : slices_) total += slice.resources;
  return total;
}

ResourceVector HupHost::available() const { return capacity() - reserved(); }

Result<SliceId> HupHost::reserve(const std::string& service_name,
                                 const ResourceVector& resources) {
  SODA_EXPECTS(resources.non_negative());
  if (!available().fits(resources)) {
    return Error{"host " + name() + " cannot fit " + resources.to_string() +
                 " (available: " + available().to_string() + ")"};
  }
  const SliceId id{next_slice_++};
  slices_.push_back(Slice{id, service_name, resources});
  return id;
}

Status HupHost::release(SliceId id) {
  auto it = std::find_if(slices_.begin(), slices_.end(),
                         [&](const Slice& s) { return s.id == id; });
  if (it == slices_.end()) {
    return Error{"host " + name() + ": no such slice " + std::to_string(id.value)};
  }
  slices_.erase(it);
  return {};
}

Status HupHost::resize(SliceId id, const ResourceVector& resources) {
  SODA_EXPECTS(resources.non_negative());
  auto it = std::find_if(slices_.begin(), slices_.end(),
                         [&](const Slice& s) { return s.id == id; });
  if (it == slices_.end()) {
    return Error{"host " + name() + ": no such slice " + std::to_string(id.value)};
  }
  // What would be available if this slice were released.
  const ResourceVector headroom = available() + it->resources;
  if (!headroom.fits(resources)) {
    return Error{"host " + name() + " cannot resize slice to " +
                 resources.to_string() + " (headroom: " + headroom.to_string() + ")"};
  }
  it->resources = resources;
  return {};
}

std::optional<Slice> HupHost::find_slice(SliceId id) const {
  auto it = std::find_if(slices_.begin(), slices_.end(),
                         [&](const Slice& s) { return s.id == id; });
  if (it == slices_.end()) return std::nullopt;
  return *it;
}

net::Bridge& HupHost::bridge() {
  if (!bridge_) bridge_ = std::make_unique<net::Bridge>(name(), lan_node_);
  return *bridge_;
}

void HupHost::set_public_address(net::Ipv4Address address) {
  SODA_EXPECTS(proxy_ == nullptr);  // must precede first proxy() use
  public_address_ = address;
}

net::Ipv4Address HupHost::public_address() const {
  return public_address_ ? *public_address_ : ip_pool_.first().offset(100);
}

net::ProxyTable& HupHost::proxy() {
  if (!proxy_) {
    proxy_ = std::make_unique<net::ProxyTable>(name(), public_address());
  }
  return *proxy_;
}

}  // namespace soda::host
