#include "host/host.hpp"

#include "util/contract.hpp"

namespace soda::host {
namespace {

// SliceId layout: high 32 bits hold slot+1 (so value 0 stays the invalid
// sentinel and legacy small literals like SliceId{999} decode to no slot),
// low 32 bits hold the slot's generation at reservation time.
constexpr std::uint64_t pack_slice(std::size_t slot, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(slot) + 1) << 32 | gen;
}

constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

}  // namespace

ResourceVector HostSpec::capacity() const {
  return ResourceVector{cpu_ghz * 1000.0, ram_mb, disk_gb * 1024, nic_mbps};
}

HostSpec HostSpec::seattle() {
  HostSpec spec;
  spec.name = "seattle";
  spec.cpu_ghz = 2.6;   // Intel Xeon
  spec.ram_mb = 2048;
  spec.disk_gb = 73;    // server-class SCSI
  spec.nic_mbps = 100;
  spec.disk_mb_s = 55;
  spec.ramdisk_mb_s = 200;
  return spec;
}

HostSpec HostSpec::tacoma() {
  HostSpec spec;
  spec.name = "tacoma";
  spec.cpu_ghz = 1.8;   // Intel Pentium 4
  spec.ram_mb = 768;
  spec.disk_gb = 40;    // desktop IDE
  spec.nic_mbps = 100;
  spec.disk_mb_s = 25;
  spec.ramdisk_mb_s = 120;
  return spec;
}

HupHost::HupHost(HostSpec spec, net::NodeId lan_node, net::IpPool ip_pool)
    : spec_(std::move(spec)),
      lan_node_(lan_node),
      ip_pool_(std::move(ip_pool)),
      capacity_(spec_.capacity()) {}

std::size_t HupHost::slot_of(SliceId id) const noexcept {
  const std::uint64_t raw_slot = id.value >> 32;
  if (raw_slot == 0) return kNoSlot;
  const std::size_t slot = static_cast<std::size_t>(raw_slot - 1);
  const auto gen = static_cast<std::uint32_t>(id.value & 0xffffffffULL);
  if (slot >= slice_live_.size() || slice_live_[slot] == 0 ||
      slice_generations_[slot] != gen) {
    return kNoSlot;
  }
  return slot;
}

Result<SliceId> HupHost::reserve(const std::string& service_name,
                                 const ResourceVector& resources) {
  SODA_EXPECTS(resources.non_negative());
  if (!available().fits(resources)) {
    return Error{"host " + name() + " cannot fit " + resources.to_string() +
                 " (available: " + available().to_string() + ")"};
  }
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slice_resources_[slot] = resources;
    slice_services_[slot] = service_name;
    slice_live_[slot] = 1;
  } else {
    slot = slice_live_.size();
    slice_resources_.push_back(resources);
    slice_services_.push_back(service_name);
    slice_generations_.push_back(1);
    slice_live_.push_back(1);
  }
  reserved_ += resources;
  ++live_count_;
  return SliceId{pack_slice(slot, slice_generations_[slot])};
}

Status HupHost::release(SliceId id) {
  const std::size_t slot = slot_of(id);
  if (slot == kNoSlot) {
    return Error{"host " + name() + ": no such slice " +
                 std::to_string(id.value)};
  }
  reserved_ -= slice_resources_[slot];
  --live_count_;
  slice_live_[slot] = 0;
  ++slice_generations_[slot];  // invalidate outstanding handles to this slot
  slice_services_[slot].clear();
  slice_resources_[slot] = ResourceVector{};
  free_slots_.push_back(static_cast<std::uint32_t>(slot));
  return {};
}

Status HupHost::resize(SliceId id, const ResourceVector& resources) {
  SODA_EXPECTS(resources.non_negative());
  const std::size_t slot = slot_of(id);
  if (slot == kNoSlot) {
    return Error{"host " + name() + ": no such slice " +
                 std::to_string(id.value)};
  }
  // What would be available if this slice were released.
  const ResourceVector headroom = available() + slice_resources_[slot];
  if (!headroom.fits(resources)) {
    return Error{"host " + name() + " cannot resize slice to " +
                 resources.to_string() + " (headroom: " + headroom.to_string() +
                 ")"};
  }
  reserved_ += resources - slice_resources_[slot];
  slice_resources_[slot] = resources;
  return {};
}

std::optional<Slice> HupHost::find_slice(SliceId id) const {
  const std::size_t slot = slot_of(id);
  if (slot == kNoSlot) return std::nullopt;
  return Slice{id, slice_services_[slot], slice_resources_[slot]};
}

std::vector<Slice> HupHost::slices() const {
  std::vector<Slice> out;
  out.reserve(live_count_);
  for (std::size_t slot = 0; slot < slice_live_.size(); ++slot) {
    if (slice_live_[slot] == 0) continue;
    out.push_back(Slice{SliceId{pack_slice(slot, slice_generations_[slot])},
                        slice_services_[slot], slice_resources_[slot]});
  }
  return out;
}

net::Bridge& HupHost::bridge() {
  if (!bridge_) bridge_ = std::make_unique<net::Bridge>(name(), lan_node_);
  return *bridge_;
}

void HupHost::set_public_address(net::Ipv4Address address) {
  SODA_EXPECTS(proxy_ == nullptr);  // must precede first proxy() use
  public_address_ = address;
}

net::Ipv4Address HupHost::public_address() const {
  return public_address_ ? *public_address_ : ip_pool_.first().offset(100);
}

net::ProxyTable& HupHost::proxy() {
  if (!proxy_) {
    proxy_ = std::make_unique<net::ProxyTable>(name(), public_address());
  }
  return *proxy_;
}

namespace {

void write_resources(snapshot::Writer& writer, const ResourceVector& r) {
  writer.f64(r.cpu_mhz);
  writer.i64(r.memory_mb);
  writer.i64(r.disk_mb);
  writer.f64(r.bandwidth_mbps);
}

ResourceVector read_resources(snapshot::Reader& reader) {
  ResourceVector r;
  r.cpu_mhz = reader.f64();
  r.memory_mb = reader.i64();
  r.disk_mb = reader.i64();
  r.bandwidth_mbps = reader.f64();
  return r;
}

}  // namespace

void HupHost::save_state(snapshot::Writer& writer) const {
  writer.begin_section("host");
  write_resources(writer, reserved_);
  writer.u64(slice_live_.size());
  for (std::size_t slot = 0; slot < slice_live_.size(); ++slot) {
    write_resources(writer, slice_resources_[slot]);
    writer.str(slice_services_[slot]);
    writer.u32(slice_generations_[slot]);
    writer.u8(slice_live_[slot]);
  }
  writer.u64(free_slots_.size());
  for (const std::uint32_t slot : free_slots_) writer.u32(slot);
  writer.u64(live_count_);
  ip_pool_.save_state(writer);
  writer.boolean(bridge_ != nullptr);
  if (bridge_) bridge_->save_state(writer);
  writer.boolean(public_address_.has_value());
  if (public_address_) writer.u32(public_address_->value());
  writer.boolean(proxy_ != nullptr);
  if (proxy_) proxy_->save_state(writer);
  writer.end_section();
}

void HupHost::load_state(snapshot::Reader& reader) {
  reader.begin_section("host");
  reserved_ = read_resources(reader);
  const std::uint64_t slots = reader.u64();
  slice_resources_.clear();
  slice_services_.clear();
  slice_generations_.clear();
  slice_live_.clear();
  for (std::uint64_t i = 0; reader.ok() && i < slots; ++i) {
    slice_resources_.push_back(read_resources(reader));
    slice_services_.push_back(reader.str());
    slice_generations_.push_back(reader.u32());
    slice_live_.push_back(reader.u8());
  }
  free_slots_.clear();
  const std::uint64_t frees = reader.u64();
  for (std::uint64_t i = 0; reader.ok() && i < frees; ++i) {
    free_slots_.push_back(reader.u32());
  }
  live_count_ = static_cast<std::size_t>(reader.u64());
  ip_pool_.load_state(reader);
  if (reader.boolean()) {
    bridge_ = std::make_unique<net::Bridge>(name(), lan_node_);
    bridge_->load_state(reader);
  } else {
    bridge_.reset();
  }
  if (reader.boolean()) {
    public_address_ = net::Ipv4Address{reader.u32()};
  } else {
    public_address_.reset();
  }
  if (reader.boolean()) {
    proxy_ = std::make_unique<net::ProxyTable>(name(), public_address());
    proxy_->load_state(reader);
  } else {
    proxy_.reset();
  }
  reader.end_section();
}

}  // namespace soda::host
