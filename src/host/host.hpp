// A HUP host: one physical server of the hosting utility platform. It owns
// the machine's resource inventory and hands out 'slices' — the reservations
// that back virtual service nodes (paper §2.1). The host also carries the
// performance characteristics the boot and syscall models need (clock rate,
// RAM, disk and RAM-disk streaming rates) and its LAN attachment point.
//
// Fleet-scale data layout (DESIGN.md §11): slices live in slot-based
// parallel arrays with a free list, and a SliceId encodes (slot,
// generation) so release/resize/find are O(1) with stale handles rejected
// by generation mismatch — never aliased to a reused slot. The reserved
// aggregate is maintained incrementally, making available() O(1); placement
// scans over 10k hosts read one cached vector per host instead of walking
// every slice.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "host/resources.hpp"
#include "net/address.hpp"
#include "net/bridge.hpp"
#include "net/flow_network.hpp"
#include "net/proxy.hpp"
#include "snapshot/format.hpp"
#include "util/result.hpp"

namespace soda::host {

/// Static description of a HUP host's hardware.
struct HostSpec {
  std::string name;
  double cpu_ghz = 1.0;
  std::int64_t ram_mb = 512;
  std::int64_t disk_gb = 40;
  double nic_mbps = 100;
  /// Sequential read rate of the local disk (MB/s) — rootfs mount cost.
  double disk_mb_s = 30;
  /// RAM-disk streaming rate (MB/s).
  double ramdisk_mb_s = 180;

  /// Full machine resources as a vector (one core assumed, as in the paper's
  /// testbed).
  [[nodiscard]] ResourceVector capacity() const;

  /// The paper's testbed machines (§4): a Dell PowerEdge server and a Dell
  /// desktop PC.
  static HostSpec seattle();  // 2.6 GHz Xeon, 2 GB RAM
  static HostSpec tacoma();   // 1.8 GHz P4, 768 MB RAM
};

/// Handle to a reservation made on a HupHost. Encodes (slot, generation):
/// a handle to a released slice stays invalid even after its slot is
/// reused, so teardown races cannot free someone else's reservation.
struct SliceId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend constexpr auto operator<=>(SliceId, SliceId) noexcept = default;
};

/// A reserved slice of a host (the facade view; storage is slot-based
/// parallel arrays inside HupHost).
struct Slice {
  SliceId id;
  std::string service_name;
  ResourceVector resources;
};

/// One server of the HUP. Thread-unsafe by design: all access happens on the
/// simulation thread.
class HupHost {
 public:
  /// `lan_node` is the host's attachment in the flow network; `ip_pool` is
  /// the disjoint address range this host's daemon assigns to its nodes.
  HupHost(HostSpec spec, net::NodeId lan_node, net::IpPool ip_pool);

  [[nodiscard]] const HostSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] net::NodeId lan_node() const noexcept { return lan_node_; }

  /// All three are O(1): capacity is cached at construction and reserved is
  /// maintained incrementally across reserve/release/resize.
  [[nodiscard]] const ResourceVector& capacity() const noexcept {
    return capacity_;
  }
  [[nodiscard]] const ResourceVector& reserved() const noexcept {
    return reserved_;
  }
  [[nodiscard]] ResourceVector available() const {
    return capacity_ - reserved_;
  }

  /// Reserves a slice for `service_name`; fails when `resources` exceed what
  /// is available.
  Result<SliceId> reserve(const std::string& service_name,
                          const ResourceVector& resources);

  /// Releases a previously reserved slice. O(1): the slot returns to the
  /// free list and its generation advances, invalidating stale handles.
  Status release(SliceId id);

  /// Grows/shrinks an existing slice to `resources` in place; fails when the
  /// growth does not fit.
  Status resize(SliceId id, const ResourceVector& resources);

  [[nodiscard]] std::optional<Slice> find_slice(SliceId id) const;
  /// Live slices in slot order (materialized facade view).
  [[nodiscard]] std::vector<Slice> slices() const;
  [[nodiscard]] std::size_t slice_count() const noexcept { return live_count_; }

  /// Address pool for this host's virtual service nodes.
  [[nodiscard]] net::IpPool& ip_pool() noexcept { return ip_pool_; }
  [[nodiscard]] const net::IpPool& ip_pool() const noexcept { return ip_pool_; }

  /// The host-OS bridging module (created on first use).
  [[nodiscard]] net::Bridge& bridge();

  /// The host's publicly reachable address (proxy mode): defaults to the
  /// pool base + 100 by convention; override before first proxy() use.
  void set_public_address(net::Ipv4Address address);
  [[nodiscard]] net::Ipv4Address public_address() const;

  /// The host-OS port-forwarding table for proxied virtual service nodes
  /// (created on first use; paper §3.3 footnote 3).
  [[nodiscard]] net::ProxyTable& proxy();

  /// Checkpoints the slice store (slots, generations, free list — handle
  /// values must survive restore bit-for-bit), the reserved aggregate (saved
  /// rather than recomputed: it accumulates += / -= rounding history), the
  /// IP pool, and the lazily created bridge / proxy / public address. The
  /// host must be constructed with the same spec and lan_node first.
  void save_state(snapshot::Writer& writer) const;
  void load_state(snapshot::Reader& reader);

 private:
  /// Slot behind a valid handle, or npos when the handle is stale/unknown.
  [[nodiscard]] std::size_t slot_of(SliceId id) const noexcept;

  HostSpec spec_;
  net::NodeId lan_node_;
  net::IpPool ip_pool_;
  ResourceVector capacity_;
  ResourceVector reserved_;

  // Slot-based slice store: parallel arrays indexed by slot; released slots
  // recycle through free_slots_ with their generation bumped.
  std::vector<ResourceVector> slice_resources_;
  std::vector<std::string> slice_services_;
  std::vector<std::uint32_t> slice_generations_;
  std::vector<std::uint8_t> slice_live_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;

  std::unique_ptr<net::Bridge> bridge_;
  std::optional<net::Ipv4Address> public_address_;
  std::unique_ptr<net::ProxyTable> proxy_;
};

}  // namespace soda::host
