// A HUP host: one physical server of the hosting utility platform. It owns
// the machine's resource inventory and hands out 'slices' — the reservations
// that back virtual service nodes (paper §2.1). The host also carries the
// performance characteristics the boot and syscall models need (clock rate,
// RAM, disk and RAM-disk streaming rates) and its LAN attachment point.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "host/resources.hpp"
#include "net/address.hpp"
#include "net/bridge.hpp"
#include "net/flow_network.hpp"
#include "net/proxy.hpp"
#include "util/result.hpp"

namespace soda::host {

/// Static description of a HUP host's hardware.
struct HostSpec {
  std::string name;
  double cpu_ghz = 1.0;
  std::int64_t ram_mb = 512;
  std::int64_t disk_gb = 40;
  double nic_mbps = 100;
  /// Sequential read rate of the local disk (MB/s) — rootfs mount cost.
  double disk_mb_s = 30;
  /// RAM-disk streaming rate (MB/s).
  double ramdisk_mb_s = 180;

  /// Full machine resources as a vector (one core assumed, as in the paper's
  /// testbed).
  [[nodiscard]] ResourceVector capacity() const;

  /// The paper's testbed machines (§4): a Dell PowerEdge server and a Dell
  /// desktop PC.
  static HostSpec seattle();  // 2.6 GHz Xeon, 2 GB RAM
  static HostSpec tacoma();   // 1.8 GHz P4, 768 MB RAM
};

/// Handle to a reservation made on a HupHost.
struct SliceId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend constexpr auto operator<=>(SliceId, SliceId) noexcept = default;
};

/// A reserved slice of a host.
struct Slice {
  SliceId id;
  std::string service_name;
  ResourceVector resources;
};

/// One server of the HUP. Thread-unsafe by design: all access happens on the
/// simulation thread.
class HupHost {
 public:
  /// `lan_node` is the host's attachment in the flow network; `ip_pool` is
  /// the disjoint address range this host's daemon assigns to its nodes.
  HupHost(HostSpec spec, net::NodeId lan_node, net::IpPool ip_pool);

  [[nodiscard]] const HostSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& name() const noexcept { return spec_.name; }
  [[nodiscard]] net::NodeId lan_node() const noexcept { return lan_node_; }

  [[nodiscard]] ResourceVector capacity() const { return spec_.capacity(); }
  [[nodiscard]] ResourceVector reserved() const;
  [[nodiscard]] ResourceVector available() const;

  /// Reserves a slice for `service_name`; fails when `resources` exceed what
  /// is available.
  Result<SliceId> reserve(const std::string& service_name,
                          const ResourceVector& resources);

  /// Releases a previously reserved slice.
  Status release(SliceId id);

  /// Grows/shrinks an existing slice to `resources` in place; fails when the
  /// growth does not fit.
  Status resize(SliceId id, const ResourceVector& resources);

  [[nodiscard]] std::optional<Slice> find_slice(SliceId id) const;
  [[nodiscard]] const std::vector<Slice>& slices() const noexcept { return slices_; }

  /// Address pool for this host's virtual service nodes.
  [[nodiscard]] net::IpPool& ip_pool() noexcept { return ip_pool_; }
  [[nodiscard]] const net::IpPool& ip_pool() const noexcept { return ip_pool_; }

  /// The host-OS bridging module (created on first use).
  [[nodiscard]] net::Bridge& bridge();

  /// The host's publicly reachable address (proxy mode): defaults to the
  /// pool base + 100 by convention; override before first proxy() use.
  void set_public_address(net::Ipv4Address address);
  [[nodiscard]] net::Ipv4Address public_address() const;

  /// The host-OS port-forwarding table for proxied virtual service nodes
  /// (created on first use; paper §3.3 footnote 3).
  [[nodiscard]] net::ProxyTable& proxy();

 private:
  HostSpec spec_;
  net::NodeId lan_node_;
  net::IpPool ip_pool_;
  std::vector<Slice> slices_;
  std::uint64_t next_slice_ = 1;
  std::unique_ptr<net::Bridge> bridge_;
  std::optional<net::Ipv4Address> public_address_;
  std::unique_ptr<net::ProxyTable> proxy_;
};

}  // namespace soda::host
