#include "util/table.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace soda::util {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), alignment_(headers_.size(), Align::kLeft) {
  SODA_EXPECTS(!headers_.empty());
}

void AsciiTable::set_alignment(std::vector<Align> alignment) {
  SODA_EXPECTS(alignment.size() == headers_.size());
  alignment_ = std::move(alignment);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  SODA_EXPECTS(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string AsciiTable::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_cell = [&](std::string& out, const std::string& cell, size_t c,
                       Align align) {
    const size_t pad = widths[c] - cell.size();
    out += ' ';
    if (align == Align::kRight) out.append(pad, ' ');
    out += cell;
    if (align == Align::kLeft) out.append(pad, ' ');
    out += ' ';
  };

  std::string out;
  out += '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    emit_cell(out, headers_[c], c, Align::kLeft);
    out += '|';
  }
  out += '\n';
  out += '|';
  for (size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c] + 2, '-');
    out += '|';
  }
  out += '\n';
  for (const auto& row : rows_) {
    out += '|';
    for (size_t c = 0; c < row.size(); ++c) {
      emit_cell(out, row[c], c, alignment_[c]);
      out += '|';
    }
    out += '\n';
  }
  return out;
}

}  // namespace soda::util
