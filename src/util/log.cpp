#include "util/log.hpp"

#include <cstdio>

namespace soda::util {

std::string_view log_level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

Logger::Logger() : level_(LogLevel::kWarn) { sinks_.push_back(stderr_sink()); }

void Logger::set_level(LogLevel level) {
  std::lock_guard lock(mutex_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::lock_guard lock(mutex_);
  return level_;
}

bool Logger::enabled(LogLevel level) const {
  std::lock_guard lock(mutex_);
  return level >= level_ && level_ != LogLevel::kOff;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  sinks_.clear();
  if (sink) sinks_.push_back(std::move(sink));
}

void Logger::add_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  if (sink) sinks_.push_back(std::move(sink));
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  std::lock_guard lock(mutex_);
  if (level < level_ || level_ == LogLevel::kOff) return;
  LogRecord record{level, std::string(component), std::string(message)};
  for (const auto& sink : sinks_) sink(record);
}

Logger& global_logger() {
  static Logger logger;
  return logger;
}

Logger::Sink capture_sink(std::vector<LogRecord>& out) {
  return [&out](const LogRecord& record) { out.push_back(record); };
}

Logger::Sink stderr_sink() {
  return [](const LogRecord& record) {
    std::fprintf(stderr, "[%.*s] %s: %s\n",
                 static_cast<int>(log_level_name(record.level).size()),
                 log_level_name(record.level).data(), record.component.c_str(),
                 record.message.c_str());
  };
}

}  // namespace soda::util
