// Small string helpers shared across parsers (config files, HTTP messages,
// RPM manifests). All functions are pure and allocation is explicit.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace soda::util {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Splits `text` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> split_whitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Joins `parts` with `sep` between elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// ASCII lower-casing (sufficient for HTTP header names).
std::string to_lower(std::string_view text);

/// Parses a non-negative decimal integer; rejects trailing garbage.
std::optional<long long> parse_int(std::string_view text) noexcept;

/// Parses a non-negative decimal number with optional fraction.
std::optional<double> parse_double(std::string_view text) noexcept;

/// Formats a byte count with binary units ("29.3 MB", "1.0 GB").
std::string format_bytes(long long bytes);

/// Formats seconds with one decimal ("3.0 sec").
std::string format_seconds(double seconds);

}  // namespace soda::util
