#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace soda::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) noexcept {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::optional<long long> parse_int(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  long long value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value < 0) {
    return std::nullopt;
  }
  return value;
}

std::optional<double> parse_double(std::string_view text) noexcept {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value < 0) {
    return std::nullopt;
  }
  return value;
}

std::string format_bytes(long long bytes) {
  char buf[64];
  const double mb = 1024.0 * 1024.0;
  if (bytes >= 1024 * 1024 * 1024LL) {
    std::snprintf(buf, sizeof buf, "%.1f GB", static_cast<double>(bytes) / (mb * 1024.0));
  } else if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof buf, "%.1f MB", static_cast<double>(bytes) / mb);
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof buf, "%.1f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof buf, "%lld B", bytes);
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f sec", seconds);
  return buf;
}

}  // namespace soda::util
