// CSV emission for bench output so figure series can be re-plotted directly.
#pragma once

#include <string>
#include <vector>

namespace soda::util {

/// Accumulates rows and renders RFC-4180-ish CSV (quoting fields that contain
/// commas, quotes, or newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  /// Appends a row; size must match the header count.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::string render() const;

  [[nodiscard]] size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Quotes a single CSV field if needed.
std::string csv_escape(const std::string& field);

}  // namespace soda::util
