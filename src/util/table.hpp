// ASCII table rendering used by the bench harness to print paper tables and
// figure series in a readable, diff-friendly form.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace soda::util {

/// Column alignment inside an AsciiTable.
enum class Align { kLeft, kRight };

/// Builds and renders a fixed-column ASCII table:
///
///   | App. service | Image size | Time (seattle) |
///   |--------------|------------|----------------|
///   | S_I          |    29.3 MB |        3.0 sec |
class AsciiTable {
 public:
  /// Creates a table with the given column headers; all columns default to
  /// left alignment.
  explicit AsciiTable(std::vector<std::string> headers);

  /// Sets per-column alignment; size must match the header count.
  void set_alignment(std::vector<Align> alignment);

  /// Appends a data row; size must match the header count.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table including a header separator line.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace soda::util
