#include "util/csv.hpp"

#include "util/contract.hpp"

namespace soda::util {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SODA_EXPECTS(!headers_.empty());
}

void CsvWriter::add_row(std::vector<std::string> row) {
  SODA_EXPECTS(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string csv_escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += csv_escape(row[i]);
    }
    out += '\n';
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

}  // namespace soda::util
