// A minimal Result<T, E> ("expected") type used across the SODA control plane
// for recoverable errors (admission failures, bad requests, parse errors).
// Programming errors use SODA_EXPECTS instead; exceptions are reserved for
// out-of-memory and the like.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/contract.hpp"

namespace soda {

/// Error payload carried by Result on the failure path. Wraps a code-less
/// human-readable message; domains that need typed codes define their own E.
struct Error {
  std::string message;

  friend bool operator==(const Error&, const Error&) = default;
};

/// Result<T, E> holds either a value of T or an error of E.
/// Accessors are checked: calling value() on an error (or error() on a value)
/// is a contract violation.
template <typename T, typename E = Error>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a success value.
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  /// Implicit construction from an error value.
  Result(E error) : data_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool ok() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const T& value() const& {
    SODA_EXPECTS(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T& value() & {
    SODA_EXPECTS(ok());
    return std::get<0>(data_);
  }
  [[nodiscard]] T&& value() && {
    SODA_EXPECTS(ok());
    return std::get<0>(std::move(data_));
  }

  [[nodiscard]] const E& error() const& {
    SODA_EXPECTS(!ok());
    return std::get<1>(data_);
  }

  /// Returns the value, or `fallback` when this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<0>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, E> data_;
};

/// Result specialization for operations with no success payload.
template <typename E>
class [[nodiscard]] Result<void, E> {
 public:
  Result() : error_(), has_error_(false) {}
  Result(E error) : error_(std::move(error)), has_error_(true) {}

  [[nodiscard]] bool ok() const noexcept { return !has_error_; }
  explicit operator bool() const noexcept { return ok(); }

  [[nodiscard]] const E& error() const& {
    SODA_EXPECTS(!ok());
    return error_;
  }

 private:
  E error_;
  bool has_error_;
};

using Status = Result<void, Error>;

namespace detail {
template <typename E>
void report_must_failure(const E& error, const char* file, int line) {
  if constexpr (requires { error.message; }) {
    std::fprintf(stderr, "soda: must() failed at %s:%d: %s\n", file, line,
                 error.message.c_str());
  } else {
    std::fprintf(stderr, "soda: must() failed at %s:%d\n", file, line);
  }
}
}  // namespace detail

/// Unwraps a Result that the caller knows must succeed (construction-time
/// wiring, test fixtures). Failure is a contract violation reported with the
/// caller's location and the error message.
template <typename T, typename E>
T must(Result<T, E> result, const char* file = __builtin_FILE(),
       int line = __builtin_LINE()) {
  if (!result.ok()) {
    detail::report_must_failure(result.error(), file, line);
  }
  SODA_EXPECTS(result.ok());
  return std::move(result).value();
}

template <typename E>
void must(Result<void, E> result, const char* file = __builtin_FILE(),
          int line = __builtin_LINE()) {
  if (!result.ok()) {
    detail::report_must_failure(result.error(), file, line);
  }
  SODA_EXPECTS(result.ok());
}

}  // namespace soda
