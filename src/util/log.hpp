// Leveled logger for the SODA control plane. Components log through a shared
// Logger so tests can capture and assert on control-plane activity, and so
// benches can silence priming chatter.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace soda::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the fixed-width upper-case name of a level ("DEBUG", "INFO ", ...).
std::string_view log_level_name(LogLevel level) noexcept;

/// A single emitted log record.
struct LogRecord {
  LogLevel level;
  std::string component;  ///< e.g. "master", "daemon@seattle"
  std::string message;
};

/// Thread-safe leveled logger. Records below the threshold are dropped.
/// By default records go to stderr; sinks can be replaced (e.g. captured in
/// tests) or disabled entirely.
class Logger {
 public:
  using Sink = std::function<void(const LogRecord&)>;

  Logger();

  /// Sets the minimum level that will be emitted.
  void set_level(LogLevel level);
  [[nodiscard]] LogLevel level() const;

  /// True when a record at `level` would be emitted. Hot paths check this
  /// before concatenating a message so a silenced logger costs no
  /// allocations.
  [[nodiscard]] bool enabled(LogLevel level) const;

  /// Replaces all sinks with `sink`. Passing nullptr silences the logger.
  void set_sink(Sink sink);
  /// Adds an additional sink (e.g. a test capture alongside stderr).
  void add_sink(Sink sink);

  void log(LogLevel level, std::string_view component, std::string_view message);

  void debug(std::string_view component, std::string_view message) {
    log(LogLevel::kDebug, component, message);
  }
  void info(std::string_view component, std::string_view message) {
    log(LogLevel::kInfo, component, message);
  }
  void warn(std::string_view component, std::string_view message) {
    log(LogLevel::kWarn, component, message);
  }
  void error(std::string_view component, std::string_view message) {
    log(LogLevel::kError, component, message);
  }

 private:
  mutable std::mutex mutex_;
  LogLevel level_;
  std::vector<Sink> sinks_;
};

/// Process-wide logger shared by all SODA entities.
Logger& global_logger();

/// Creates a sink that appends records to `out` (used by tests).
Logger::Sink capture_sink(std::vector<LogRecord>& out);

/// Creates the default stderr sink.
Logger::Sink stderr_sink();

}  // namespace soda::util
