// Lightweight contract checks in the spirit of the C++ Core Guidelines'
// Expects/Ensures. Violations are programming errors, so they terminate
// rather than throw; the message names the violated condition and location.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace soda::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line) {
  std::fprintf(stderr, "soda: %s violated: %s (%s:%d)\n", kind, cond, file, line);
  std::abort();
}

}  // namespace soda::detail

// Precondition check: argument/state requirements of a function.
#define SODA_EXPECTS(cond)                                                   \
  ((cond) ? static_cast<void>(0)                                             \
          : ::soda::detail::contract_failure("precondition", #cond, __FILE__, \
                                             __LINE__))

// Postcondition / internal invariant check.
#define SODA_ENSURES(cond)                                                    \
  ((cond) ? static_cast<void>(0)                                              \
          : ::soda::detail::contract_failure("postcondition", #cond, __FILE__, \
                                             __LINE__))
