// System-call cost model. UML redirects every guest system call through a
// host tracing thread (ptrace): the guest thread stops, the tracer wakes,
// rewrites the call, and the host kernel executes it — roughly four context
// switches of fixed overhead on top of the native cost. Table 4 of the paper
// measures exactly this gap (≈26 k cycles traced vs ≈1.2 k native), and
// Figure 6 shows why it barely shows at application level: user-mode cycles
// dominate request processing. Both experiments consume this model.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace soda::vm {

/// The system calls the model prices. The first six rows are the paper's
/// Table 4; the rest back the application-level request cost model.
enum class Syscall {
  kDup2,
  kGetpid,
  kGeteuid,
  kMmap,
  kMmapMunmap,
  kGettimeofday,
  kOpen,
  kClose,
  kStat,
  kRead,
  kWrite,
  kSocketSend,
  kSocketRecv,
  kFork,
  kExecve,
  kWaitpid,
  kPipe,
};

/// Where a call executes: natively on the host OS, or inside a UML guest via
/// the tracing thread.
enum class ExecMode { kHostNative, kUmlTraced };

/// Paper-facing name ("dup2", "mmap_munmap", ...).
std::string_view syscall_name(Syscall call) noexcept;

/// Cycle-count cost model calibrated to Table 4.
class SyscallCostModel {
 public:
  /// Cycles to complete one `call` in `mode`.
  [[nodiscard]] std::uint64_t cycles(Syscall call, ExecMode mode) const noexcept;

  /// Wall time of one `call` on a CPU of `cpu_ghz`.
  [[nodiscard]] sim::SimTime cost(Syscall call, ExecMode mode,
                                  double cpu_ghz) const noexcept;

  /// UML/native cycle ratio for `call` (Table 4's headline ~20-27x).
  [[nodiscard]] double slowdown(Syscall call) const noexcept;

  /// Fixed tracing overhead added to every traced call (4 context switches
  /// through the tracer).
  [[nodiscard]] std::uint64_t trace_overhead_cycles() const noexcept {
    return kTraceOverheadCycles;
  }

 private:
  // Four ptrace stop/continue transitions plus register save/restore.
  static constexpr std::uint64_t kTraceOverheadCycles = 25'800;
  // Traced execution re-enters the host kernel with cold caches.
  static constexpr double kReentryFactor = 1.2;
};

/// CPU demand of one application-level request, split into the parts that
/// inflate under UML (system calls) and the parts that do not (user-mode
/// computation).
struct RequestCost {
  std::uint64_t user_cycles = 0;
  std::uint64_t syscall_count = 0;
  std::uint64_t syscall_cycles_native = 0;
  std::uint64_t syscall_cycles_traced = 0;

  [[nodiscard]] std::uint64_t total_cycles(ExecMode mode) const noexcept {
    return user_cycles + (mode == ExecMode::kHostNative ? syscall_cycles_native
                                                        : syscall_cycles_traced);
  }
  [[nodiscard]] sim::SimTime total_time(ExecMode mode, double cpu_ghz) const noexcept {
    return sim::SimTime::seconds(
        static_cast<double>(total_cycles(mode)) / (cpu_ghz * 1e9));
  }
  /// Application-level slow-down factor (Figure 6's quantity).
  [[nodiscard]] double slowdown() const noexcept {
    const auto native = total_cycles(ExecMode::kHostNative);
    return native == 0 ? 1.0
                       : static_cast<double>(total_cycles(ExecMode::kUmlTraced)) /
                             static_cast<double>(native);
  }
};

/// Effective throughput of a UML's virtual NIC given the host NIC's line
/// rate. Every frame crosses the tracing thread and an extra user/kernel
/// copy, which costs roughly half the wire rate (2003-era UML over TAP
/// measured 40-60% of a 100 Mbps LAN) — the paper's "slow-down in network
/// transmission".
constexpr double uml_effective_nic_mbps(double host_nic_mbps) noexcept {
  return host_nic_mbps * 0.5;
}

/// Cost of serving one static-content HTTP request of `response_bytes`:
/// accept/recv, open/stat, chunked read+send loop, close — plus user-mode
/// header formatting and buffer handling.
RequestCost static_request_cost(const SyscallCostModel& model,
                                std::int64_t response_bytes);

/// Cost of serving one dynamic (CGI-style) request: fork + execve of the
/// script interpreter, pipe shuttling of the generated page, waitpid — plus
/// `script_user_cycles` of interpretation. Process-management syscalls are
/// the most tracing-hostile path UML has, so dynamic content shows a larger
/// application-level slow-down than Figure 6's static service (the
/// "more extensive experiments" the paper calls for).
RequestCost dynamic_request_cost(const SyscallCostModel& model,
                                 std::int64_t response_bytes,
                                 std::uint64_t script_user_cycles = 500'000);

}  // namespace soda::vm
