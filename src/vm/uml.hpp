// User-Mode Linux guest model. A UML runs in the unmodified user space of
// the host OS (paper §4.2): it has its own root filesystem, its own process
// table and root user, a memory cap fixed at start, and a tracing thread
// that intercepts every guest system call. Faults and compromises stay
// inside the guest — crashing a UML empties *its* process table only.
#pragma once

#include <cstdint>
#include <string>

#include "host/host.hpp"
#include "os/process.hpp"
#include "os/rootfs.hpp"
#include "sim/time.hpp"
#include "snapshot/format.hpp"
#include "util/result.hpp"
#include "vm/syscall.hpp"

namespace soda::vm {

enum class VmState { kStopped, kBooting, kRunning, kCrashed };

std::string_view vm_state_name(VmState state) noexcept;

/// Breakdown of a UML boot, produced by plan_boot.
struct BootReport {
  sim::SimTime mount_time;     // rootfs mount (RAM disk or local disk)
  sim::SimTime kernel_time;    // guest kernel initialization
  sim::SimTime services_time;  // init scripts of the enabled system services
  bool used_ram_disk = false;
  std::size_t services_started = 0;

  [[nodiscard]] sim::SimTime total() const noexcept {
    return mount_time + kernel_time + services_time;
  }
};

/// One UML instance. Owns the guest root filesystem and process table.
class UserModeLinux {
 public:
  /// `memory_mb` is the UML memory-usage limit passed at start (the only
  /// resource cap the original UML supports natively).
  UserModeLinux(os::RootFs rootfs, std::int64_t memory_mb);

  /// Computes the boot-time breakdown on `host` hardware without changing
  /// state (used by the daemon to schedule the boot completion event).
  [[nodiscard]] BootReport plan_boot(const host::HostSpec& host) const;

  /// Transitions kStopped -> kBooting.
  Status begin_boot(sim::SimTime now);

  /// Transitions kBooting -> kRunning: spawns kernel threads, init, a getty,
  /// and one daemon process per enabled system service.
  Status finish_boot(sim::SimTime now);

  /// Kills every guest process and marks the VM crashed (fault/attack
  /// outcome — confined to this guest).
  void crash();

  /// Stops the VM cleanly (tear-down).
  void shutdown();

  /// Spawns a guest process; fails unless running. All processes of a
  /// virtual service node bear the service uid.
  Result<std::int32_t> spawn_process(std::string command, std::string uid,
                                     sim::SimTime now);

  /// Guest memory allocation against the UML cap.
  Status allocate_memory(std::int64_t mb);
  void free_memory(std::int64_t mb);

  /// Wall time of one guest system call on `cpu_ghz` hardware — always the
  /// traced path; that is what makes it a UML.
  [[nodiscard]] sim::SimTime syscall_time(Syscall call, double cpu_ghz) const;

  [[nodiscard]] VmState state() const noexcept { return state_; }
  [[nodiscard]] const os::RootFs& rootfs() const noexcept { return rootfs_; }
  [[nodiscard]] os::ProcessTable& processes() noexcept { return processes_; }
  [[nodiscard]] const os::ProcessTable& processes() const noexcept {
    return processes_;
  }
  [[nodiscard]] std::int64_t memory_cap_mb() const noexcept { return memory_cap_mb_; }
  [[nodiscard]] std::int64_t memory_used_mb() const noexcept { return memory_used_mb_; }
  [[nodiscard]] const SyscallCostModel& syscall_model() const noexcept {
    return syscall_model_;
  }

  /// Guest kernel initialization cost (GHz-seconds), shared with tests.
  static constexpr double kKernelBootGhzS = 1.0;
  /// Baseline guest memory used by the kernel itself.
  static constexpr std::int64_t kKernelMemoryMb = 16;

  /// Checkpoints VM state, memory accounting, and the guest process table.
  /// The rootfs is NOT covered here: the owner serializes it separately
  /// (os::save_rootfs) and constructs the restored UML from it, because the
  /// rootfs is a constructor argument, not mutable post-construction state.
  void save_state(snapshot::Writer& writer) const {
    writer.begin_section("uml");
    writer.i64(memory_cap_mb_);
    writer.i64(memory_used_mb_);
    writer.u8(static_cast<std::uint8_t>(state_));
    processes_.save_state(writer);
    writer.end_section();
  }
  void load_state(snapshot::Reader& reader) {
    reader.begin_section("uml");
    const std::int64_t cap = reader.i64();
    if (reader.ok() && cap != memory_cap_mb_) {
      reader.fail("uml memory cap mismatch");
      return;
    }
    memory_used_mb_ = reader.i64();
    state_ = static_cast<VmState>(reader.u8());
    processes_.load_state(reader);
    reader.end_section();
  }

 private:
  os::RootFs rootfs_;
  std::int64_t memory_cap_mb_;
  std::int64_t memory_used_mb_ = 0;
  VmState state_ = VmState::kStopped;
  os::ProcessTable processes_;
  SyscallCostModel syscall_model_;
};

}  // namespace soda::vm
