#include "vm/uml.hpp"

#include "util/contract.hpp"

namespace soda::vm {

std::string_view vm_state_name(VmState state) noexcept {
  switch (state) {
    case VmState::kStopped:  return "stopped";
    case VmState::kBooting:  return "booting";
    case VmState::kRunning:  return "running";
    case VmState::kCrashed:  return "crashed";
  }
  return "unknown";
}

UserModeLinux::UserModeLinux(os::RootFs rootfs, std::int64_t memory_mb)
    : rootfs_(std::move(rootfs)), memory_cap_mb_(memory_mb) {
  SODA_EXPECTS(memory_mb > kKernelMemoryMb);
}

BootReport UserModeLinux::plan_boot(const host::HostSpec& host) const {
  BootReport report;
  const std::int64_t image_bytes = rootfs_.image_bytes();
  report.used_ram_disk =
      os::fits_ram_disk(image_bytes, host.ram_mb, memory_cap_mb_);
  const double rate_mb_s =
      report.used_ram_disk ? host.ramdisk_mb_s : host.disk_mb_s;
  report.mount_time = sim::SimTime::seconds(
      static_cast<double>(image_bytes) / (rate_mb_s * 1024 * 1024));
  report.kernel_time = sim::SimTime::seconds(kKernelBootGhzS / host.cpu_ghz);
  const double services_ghz_s = must(
      os::standard_service_catalog().start_cost(rootfs_.enabled_services));
  report.services_time = sim::SimTime::seconds(services_ghz_s / host.cpu_ghz);
  report.services_started =
      must(os::standard_service_catalog().start_order(rootfs_.enabled_services))
          .size();
  return report;
}

Status UserModeLinux::begin_boot(sim::SimTime) {
  if (state_ != VmState::kStopped) {
    return Error{std::string("cannot boot a ") + std::string(vm_state_name(state_)) +
                 " VM"};
  }
  state_ = VmState::kBooting;
  return {};
}

Status UserModeLinux::finish_boot(sim::SimTime now) {
  if (state_ != VmState::kBooting) {
    return Error{std::string("finish_boot on a ") +
                 std::string(vm_state_name(state_)) + " VM"};
  }
  memory_used_mb_ = kKernelMemoryMb;
  os::spawn_boot_processes(processes_, now);
  const auto order = must(
      os::standard_service_catalog().start_order(rootfs_.enabled_services));
  for (const auto& svc : order) {
    processes_.spawn(svc, "root", now, os::ProcessState::kSleeping);
  }
  processes_.spawn("/sbin/getty 38400 tty0", "root", now,
                   os::ProcessState::kSleeping);
  state_ = VmState::kRunning;
  return {};
}

void UserModeLinux::crash() {
  processes_.kill_all();
  memory_used_mb_ = 0;
  state_ = VmState::kCrashed;
}

void UserModeLinux::shutdown() {
  processes_.kill_all();
  memory_used_mb_ = 0;
  state_ = VmState::kStopped;
}

Result<std::int32_t> UserModeLinux::spawn_process(std::string command,
                                                  std::string uid,
                                                  sim::SimTime now) {
  if (state_ != VmState::kRunning) {
    return Error{std::string("cannot spawn in a ") +
                 std::string(vm_state_name(state_)) + " VM"};
  }
  return processes_.spawn(std::move(command), std::move(uid), now);
}

Status UserModeLinux::allocate_memory(std::int64_t mb) {
  SODA_EXPECTS(mb >= 0);
  if (state_ != VmState::kRunning) {
    return Error{"VM not running"};
  }
  if (memory_used_mb_ + mb > memory_cap_mb_) {
    // The UML memory limit is a hard cap set at start (paper §4.2).
    return Error{"guest memory limit exceeded: " +
                 std::to_string(memory_used_mb_ + mb) + " > " +
                 std::to_string(memory_cap_mb_) + " MB"};
  }
  memory_used_mb_ += mb;
  return {};
}

void UserModeLinux::free_memory(std::int64_t mb) {
  SODA_EXPECTS(mb >= 0 && mb <= memory_used_mb_);
  memory_used_mb_ -= mb;
}

sim::SimTime UserModeLinux::syscall_time(Syscall call, double cpu_ghz) const {
  return syscall_model_.cost(call, ExecMode::kUmlTraced, cpu_ghz);
}

}  // namespace soda::vm
