#include "vm/vsnode.hpp"

#include "util/contract.hpp"

namespace soda::vm {

VirtualServiceNode::VirtualServiceNode(NodeName name, std::string service_name,
                                       std::string host_name,
                                       host::SliceId slice,
                                       net::Ipv4Address address,
                                       net::NodeId net_node, int capacity_units,
                                       std::unique_ptr<UserModeLinux> uml)
    : name_(std::move(name)),
      service_name_(std::move(service_name)),
      host_name_(std::move(host_name)),
      slice_(slice),
      address_(address),
      net_node_(net_node),
      capacity_units_(capacity_units),
      uml_(std::move(uml)) {
  SODA_EXPECTS(capacity_units_ >= 1);
  SODA_EXPECTS(uml_ != nullptr);
}

void VirtualServiceNode::set_capacity_units(int units) {
  SODA_EXPECTS(units >= 1);
  capacity_units_ = units;
}

}  // namespace soda::vm
