#include "vm/syscall.hpp"

namespace soda::vm {

namespace {

/// Native host-OS cycle counts. The six Table 4 rows use the paper's
/// measured values; the rest are period-plausible Linux 2.4 numbers.
std::uint64_t native_cycles(Syscall call) noexcept {
  switch (call) {
    case Syscall::kDup2:         return 1'208;
    case Syscall::kGetpid:       return 1'064;
    case Syscall::kGeteuid:      return 1'084;
    case Syscall::kMmap:         return 1'208;
    case Syscall::kMmapMunmap:   return 1'200;
    case Syscall::kGettimeofday: return 1'368;
    case Syscall::kOpen:         return 2'400;
    case Syscall::kClose:        return 1'100;
    case Syscall::kStat:         return 1'600;
    case Syscall::kRead:         return 1'800;
    case Syscall::kWrite:        return 1'900;
    case Syscall::kSocketSend:   return 5'200;
    case Syscall::kSocketRecv:   return 5'600;
    case Syscall::kFork:         return 52'000;
    case Syscall::kExecve:       return 120'000;
    case Syscall::kWaitpid:      return 2'200;
    case Syscall::kPipe:         return 2'600;
  }
  return 1'500;
}

/// Extra traced-mode cycles beyond the generic overhead. gettimeofday pays
/// for time virtualization (the guest's clock is offset from the host's);
/// fork/execve rebuild the tracing machinery for the child (UML must attach
/// a tracer to every new guest process and rewrite its address space).
std::uint64_t traced_extra_cycles(Syscall call) noexcept {
  switch (call) {
    case Syscall::kGettimeofday:
      return 9'800;
    // Guest process creation was UML's weakest point in 2003 ("tt mode"):
    // the tracer must attach to the child, rewrite its whole address space,
    // and replay its mappings — milliseconds, not microseconds.
    case Syscall::kFork:
      return 5'000'000;
    case Syscall::kExecve:
      return 8'000'000;
    default:
      return 0;
  }
}

}  // namespace

std::string_view syscall_name(Syscall call) noexcept {
  switch (call) {
    case Syscall::kDup2:         return "dup2";
    case Syscall::kGetpid:       return "getpid";
    case Syscall::kGeteuid:      return "geteuid";
    case Syscall::kMmap:         return "mmap";
    case Syscall::kMmapMunmap:   return "mmap_munmap";
    case Syscall::kGettimeofday: return "gettimeofday";
    case Syscall::kOpen:         return "open";
    case Syscall::kClose:        return "close";
    case Syscall::kStat:         return "stat";
    case Syscall::kRead:         return "read";
    case Syscall::kWrite:        return "write";
    case Syscall::kSocketSend:   return "socket_send";
    case Syscall::kSocketRecv:   return "socket_recv";
    case Syscall::kFork:         return "fork";
    case Syscall::kExecve:       return "execve";
    case Syscall::kWaitpid:      return "waitpid";
    case Syscall::kPipe:         return "pipe";
  }
  return "unknown";
}

std::uint64_t SyscallCostModel::cycles(Syscall call, ExecMode mode) const noexcept {
  const std::uint64_t native = native_cycles(call);
  if (mode == ExecMode::kHostNative) return native;
  return static_cast<std::uint64_t>(static_cast<double>(native) * kReentryFactor) +
         kTraceOverheadCycles + traced_extra_cycles(call);
}

sim::SimTime SyscallCostModel::cost(Syscall call, ExecMode mode,
                                    double cpu_ghz) const noexcept {
  return sim::SimTime::seconds(static_cast<double>(cycles(call, mode)) /
                               (cpu_ghz * 1e9));
}

double SyscallCostModel::slowdown(Syscall call) const noexcept {
  return static_cast<double>(cycles(call, ExecMode::kUmlTraced)) /
         static_cast<double>(cycles(call, ExecMode::kHostNative));
}

RequestCost static_request_cost(const SyscallCostModel& model,
                                std::int64_t response_bytes) {
  RequestCost cost;
  // I/O loop: 64 KiB chunks, one read + one send each.
  const std::int64_t kChunk = 64 * 1024;
  const std::uint64_t chunks =
      response_bytes <= 0
          ? 0
          : static_cast<std::uint64_t>((response_bytes + kChunk - 1) / kChunk);

  auto add = [&](Syscall call, std::uint64_t count) {
    cost.syscall_count += count;
    cost.syscall_cycles_native += count * model.cycles(call, ExecMode::kHostNative);
    cost.syscall_cycles_traced += count * model.cycles(call, ExecMode::kUmlTraced);
  };
  add(Syscall::kSocketRecv, 1);      // read the request
  add(Syscall::kStat, 1);           // locate the file
  add(Syscall::kOpen, 1);
  add(Syscall::kGettimeofday, 2);   // access-log timestamps
  add(Syscall::kRead, chunks);
  add(Syscall::kSocketSend, chunks == 0 ? 1 : chunks);
  add(Syscall::kClose, 1);
  add(Syscall::kWrite, 1);          // access-log line

  // User-mode work: request parsing and header formatting (fixed) plus
  // per-byte buffer handling (checksum/copy at ~0.8 cycles per byte).
  cost.user_cycles = 160'000 + static_cast<std::uint64_t>(
                                   0.8 * static_cast<double>(response_bytes));
  return cost;
}

RequestCost dynamic_request_cost(const SyscallCostModel& model,
                                 std::int64_t response_bytes,
                                 std::uint64_t script_user_cycles) {
  RequestCost cost;
  const std::int64_t kChunk = 4 * 1024;  // pipe-sized chunks
  const std::uint64_t chunks =
      response_bytes <= 0
          ? 1
          : static_cast<std::uint64_t>((response_bytes + kChunk - 1) / kChunk);

  auto add = [&](Syscall call, std::uint64_t count) {
    cost.syscall_count += count;
    cost.syscall_cycles_native += count * model.cycles(call, ExecMode::kHostNative);
    cost.syscall_cycles_traced += count * model.cycles(call, ExecMode::kUmlTraced);
  };
  add(Syscall::kSocketRecv, 1);   // the request
  add(Syscall::kPipe, 2);         // stdin/stdout pipes
  add(Syscall::kFork, 1);         // CGI child
  add(Syscall::kExecve, 1);       // interpreter
  add(Syscall::kOpen, 3);         // script + includes
  add(Syscall::kRead, chunks);    // page from the pipe
  add(Syscall::kWrite, chunks);   // child writes the page
  add(Syscall::kSocketSend, chunks);
  add(Syscall::kWaitpid, 1);
  add(Syscall::kClose, 5);
  add(Syscall::kGettimeofday, 2);

  cost.user_cycles = script_user_cycles +
                     static_cast<std::uint64_t>(
                         1.2 * static_cast<double>(response_bytes));
  return cost;
}

}  // namespace soda::vm
