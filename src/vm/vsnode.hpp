// A virtual service node: the unit SODA allocates to a service — a UML
// virtual machine backed by a slice of a HUP host, with its own IP address
// and a relative capacity expressed in machine instances M (paper §2.1,
// §3.2). Created by the SODA Daemon during service priming.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "host/host.hpp"
#include "net/address.hpp"
#include "net/flow_network.hpp"
#include "vm/uml.hpp"

namespace soda::vm {

/// Identifies a virtual service node HUP-wide.
struct NodeName {
  std::string value;
  friend bool operator==(const NodeName&, const NodeName&) = default;
};

/// How clients reach a proxied node: a port on the carrying host's public
/// address (paper §3.3 footnote 3). Bridged nodes have none — their own IP
/// is directly reachable.
struct PublicEndpoint {
  net::Ipv4Address address;
  int port = 0;

  friend bool operator==(const PublicEndpoint&, const PublicEndpoint&) = default;
};

/// A bootable, addressable slice of a HUP host running one service replica.
class VirtualServiceNode {
 public:
  VirtualServiceNode(NodeName name, std::string service_name,
                     std::string host_name, host::SliceId slice,
                     net::Ipv4Address address, net::NodeId net_node,
                     int capacity_units, std::unique_ptr<UserModeLinux> uml);

  [[nodiscard]] const NodeName& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& service_name() const noexcept {
    return service_name_;
  }
  [[nodiscard]] const std::string& host_name() const noexcept { return host_name_; }
  [[nodiscard]] host::SliceId slice() const noexcept { return slice_; }
  [[nodiscard]] net::Ipv4Address address() const noexcept { return address_; }
  [[nodiscard]] net::NodeId net_node() const noexcept { return net_node_; }

  /// Relative capacity: how many machine instances M this node provides.
  /// The switch's weighted round-robin uses this as the weight (Table 3).
  [[nodiscard]] int capacity_units() const noexcept { return capacity_units_; }
  void set_capacity_units(int units);

  /// The guest port the application listens on (set during priming).
  void set_service_port(int port) { service_port_ = port; }
  [[nodiscard]] int service_port() const noexcept { return service_port_; }

  /// The component this node runs (partitioned services; empty otherwise).
  void set_component(std::string component) { component_ = std::move(component); }
  [[nodiscard]] const std::string& component() const noexcept { return component_; }

  /// Set when the node is proxied rather than bridged.
  void set_public_endpoint(PublicEndpoint endpoint) { public_ = endpoint; }
  [[nodiscard]] const std::optional<PublicEndpoint>& public_endpoint()
      const noexcept {
    return public_;
  }
  [[nodiscard]] bool proxied() const noexcept { return public_.has_value(); }

  [[nodiscard]] UserModeLinux& uml() noexcept { return *uml_; }
  [[nodiscard]] const UserModeLinux& uml() const noexcept { return *uml_; }

  /// Shorthand: is the guest up and serving?
  [[nodiscard]] bool running() const noexcept {
    return uml_->state() == VmState::kRunning;
  }

 private:
  NodeName name_;
  std::string service_name_;
  std::string host_name_;
  host::SliceId slice_;
  net::Ipv4Address address_;
  net::NodeId net_node_;
  int capacity_units_;
  int service_port_ = 0;
  std::string component_;
  std::optional<PublicEndpoint> public_;
  std::unique_ptr<UserModeLinux> uml_;
};

}  // namespace soda::vm
