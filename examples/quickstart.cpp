// Quickstart: stand up the paper's two-host HUP, publish a service image,
// call SODA_service_creation as an ASP, watch the service come up, send it
// some requests through the service switch, then tear it down.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/hup.hpp"
#include "image/image.hpp"
#include "util/log.hpp"
#include "workload/siege.hpp"
#include "workload/webservice.hpp"

using namespace soda;

int main() {
  util::global_logger().set_level(util::LogLevel::kInfo);

  // 1. The hosting utility platform: seattle + tacoma on a 100 Mbps LAN,
  //    one ASP image repository, one client machine.
  auto testbed = core::Hup::paper_testbed();
  core::Hup& hup = *testbed.hup;

  // 2. The ASP enrolls with the SODA Agent and publishes its image.
  hup.agent().register_asp("bioinfo-institute", "key-123");
  auto location = must(testbed.repo->publish(
      image::web_content_image(/*dataset_bytes=*/48 * 1024 * 1024)));
  std::printf("published image at %s\n", location.url().c_str());

  // 3. SODA_service_creation: 3 machine instances of the Table 1 config.
  core::ServiceCreationRequest request;
  request.credentials = {"bioinfo-institute", "key-123"};
  request.service_name = "web-content";
  request.image_location = location;
  request.requirement = host::ResourceRequirement{3, host::MachineConfig::table1_example()};

  core::ServiceCreationReply reply;
  bool created = false;
  hup.agent().service_creation(
      request, [&](core::ApiResult<core::ServiceCreationReply> result,
                   sim::SimTime now) {
        if (!result.ok()) {
          std::printf("creation failed: %s\n", result.error().to_string().c_str());
          return;
        }
        reply = result.value();
        created = true;
        std::printf("service up at t=%.2fs: switch %s:%d, %zu node(s)\n",
                    now.to_seconds(), reply.switch_address.to_string().c_str(),
                    reply.switch_port, reply.nodes.size());
      });
  hup.engine().run();
  if (!created) return 1;

  for (const auto& node : reply.nodes) {
    std::printf("  node %-14s on %-8s ip %-14s capacity %dM\n",
                node.node_name.c_str(), node.host_name.c_str(),
                node.address.to_string().c_str(), node.capacity_units);
  }
  core::ServiceSwitch* sw = hup.master().find_switch("web-content");
  std::printf("service configuration file:\n%s", sw->config_text().c_str());

  // 4. Send 200 requests through the switch and report response times.
  workload::SiegeConfig cfg;
  cfg.concurrency = 4;
  cfg.max_requests = 200;
  cfg.response_bytes = 16 * 1024;

  // Each backend gets a server instance bound to its node (in-VM pricing).
  std::vector<std::unique_ptr<workload::WebContentServer>> servers;
  const core::ServiceRecord* record = hup.master().find_service("web-content");
  net::NodeId switch_node;
  for (const auto& node : record->nodes) {
    core::SodaDaemon* daemon = hup.find_daemon(node.host_name);
    vm::VirtualServiceNode* vsn = daemon->find_node(node.node_name);
    auto shaper_link = hup.find_shaper(node.host_name)->link_for(vsn->address());
    std::vector<net::LinkId> extra;
    if (shaper_link) extra.push_back(*shaper_link);
    servers.push_back(std::make_unique<workload::WebContentServer>(
        hup.engine(), hup.network(), vsn->net_node(), vm::ExecMode::kUmlTraced,
        daemon->host().spec().cpu_ghz, 2 * vsn->capacity_units(), extra));
    if (node.address == reply.switch_address) switch_node = vsn->net_node();
  }
  workload::SiegeClient siege2(hup.engine(), hup.network(), testbed.client, sw,
                               switch_node, cfg);
  for (std::size_t i = 0; i < record->nodes.size(); ++i) {
    siege2.register_backend(record->nodes[i].address, servers[i].get(),
                            servers[i]->node());
  }
  siege2.start();
  hup.engine().run();

  std::printf("served %llu requests, mean %.2f ms, p95 %.2f ms\n",
              static_cast<unsigned long long>(siege2.completed()),
              siege2.response_times().mean() * 1e3,
              siege2.response_times().p95() * 1e3);
  for (const auto& node : record->nodes) {
    std::printf("  %-14s handled %llu\n", node.node_name.c_str(),
                static_cast<unsigned long long>(siege2.completed_by(node.address)));
  }

  // 5. Billing so far, then SODA_service_teardown.
  std::printf("instance-hours accrued: %.4f\n",
              hup.agent().billing().instance_hours("bioinfo-institute",
                                                   hup.engine().now()));
  auto torn = hup.agent().service_teardown(
      core::ServiceTeardownRequest{{"bioinfo-institute", "key-123"}, "web-content"});
  std::printf("teardown: %s\n", torn.ok() ? "ok" : torn.error().to_string().c_str());
  return torn.ok() ? 0 : 1;
}
