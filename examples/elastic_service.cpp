// Elastic hosting: a bioinformatics institute outsources its genome
// matching service to the HUP (the paper's §1 motivating example), then
// grows it with SODA_service_resizing when demand rises, shrinks it back at
// night, and finally tears it down — with the bill tracking every step.
//
//   ./build/examples/elastic_service
#include <cstdio>

#include "core/hup.hpp"
#include "image/image.hpp"
#include "util/log.hpp"

using namespace soda;

namespace {

void show(core::Hup& hup, const char* when) {
  const auto* record = hup.master().find_service("genome-matching");
  std::printf("\n[%s] <n=%d, M>:\n", when, record->requirement.n);
  for (const auto& node : record->nodes) {
    std::printf("  %-20s on %-8s ip %-14s capacity %dM\n",
                node.node_name.c_str(), node.host_name.c_str(),
                node.address.to_string().c_str(), node.capacity_units);
  }
  std::printf("  switch config:\n%s",
              hup.master().find_switch("genome-matching")->config_text().c_str());
  const auto avail = hup.master().hup_available();
  std::printf("  HUP spare: %s\n", avail.to_string().c_str());
}

void resize_to(core::Hup& hup, int n) {
  hup.agent().service_resizing(
      core::ServiceResizingRequest{{"bioinfo", "key"}, "genome-matching", n},
      [n](core::ApiResult<core::ServiceResizingReply> reply, sim::SimTime t) {
        if (reply.ok()) {
          std::printf("[t=%6.2fs] resized to <%d, M>\n", t.to_seconds(), n);
        } else {
          std::printf("[t=%6.2fs] resize to %d failed: %s\n", t.to_seconds(), n,
                      reply.error().to_string().c_str());
        }
      });
  hup.engine().run();
}

}  // namespace

int main() {
  util::global_logger().set_level(util::LogLevel::kWarn);
  auto tb = core::Hup::paper_testbed();
  core::Hup& hup = *tb.hup;
  hup.agent().register_asp("bioinfo", "key");
  const auto loc = must(tb.repo->publish(image::genome_matching_image()));
  std::printf("image published at %s (%.1f MB packaged)\n", loc.url().c_str(),
              static_cast<double>(image::genome_matching_image().packaged_bytes()) /
                  (1024 * 1024));

  // Day 1: start small.
  core::ServiceCreationRequest request;
  request.credentials = {"bioinfo", "key"};
  request.service_name = "genome-matching";
  request.image_location = loc;
  request.requirement = {1, host::MachineConfig::table1_example()};
  hup.agent().service_creation(
      request, [](core::ApiResult<core::ServiceCreationReply> reply,
                  sim::SimTime t) {
        must(std::move(reply));
        std::printf("[t=%6.2fs] genome-matching created\n", t.to_seconds());
      });
  hup.engine().run();
  show(hup, "after creation, <1, M>");

  // A conference deadline approaches: grow to 4 machine instances.
  resize_to(hup, 4);
  show(hup, "after growth to <4, M>");

  // Ask for more than the HUP can give — rejected, service untouched.
  resize_to(hup, 50);

  // Night: shrink back to 2.
  resize_to(hup, 2);
  show(hup, "after shrink to <2, M>");

  // Retire the service.
  must(hup.agent().service_teardown(
      core::ServiceTeardownRequest{{"bioinfo", "key"}, "genome-matching"}));
  std::printf("\n[t=%6.2fs] torn down. final invoice (at 0.25 per "
              "machine-instance-hour):\n\n%s",
              hup.engine().now().to_seconds(),
              hup.agent()
                  .billing()
                  .render_invoice("bioinfo", hup.engine().now(), 0.25)
                  .c_str());
  return 0;
}
