// Chaos-fuzzer CLI: generate, run, fuzz, shrink, and replay seeded chaos
// scenarios (src/chaos, DESIGN.md §13).
//
//   soda_chaos gen <seed>             print the scenario-DSL for one seed
//   soda_chaos run <seed> [-v]        run one seed with invariant checking
//   soda_chaos fuzz <count> [base]    run a corpus, report violations
//   soda_chaos fuzz <count> --from <ckpt>
//                                     warm-start corpus: restore the
//                                     checkpointed T0 world per seed and
//                                     fuzz only faults + traffic
//   soda_chaos checkpoint <seed> <file>
//                                     build seed's world, checkpoint it at
//                                     T0, and run it to completion
//   soda_chaos replay <file> [-v]     replay a (shrunk) reproducer file;
//                                     honors its `# snapshot:` header
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/checkpoint.hpp"
#include "chaos/dsl.hpp"
#include "chaos/generator.hpp"
#include "chaos/runner.hpp"
#include "chaos/shrink.hpp"
#include "core/hup.hpp"
#include "sim/parallel_runner.hpp"
#include "util/log.hpp"

using namespace soda;

namespace {

int usage() {
  std::printf(
      "usage: soda_chaos gen <seed> | run <seed> [-v] |"
      " fuzz <count> [base] [--from <ckpt>] |"
      " checkpoint <seed> <file> | replay <file> [-v]\n");
  return 2;
}

Result<std::string> read_file(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return Error{std::string("cannot open ") + path};
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

/// Resolves `path` relative to the directory holding `anchor_file` (absolute
/// paths pass through).
std::string resolve_near(const char* anchor_file, const std::string& path) {
  if (!path.empty() && path.front() == '/') return path;
  const std::string anchor(anchor_file);
  const std::size_t slash = anchor.rfind('/');
  if (slash == std::string::npos) return path;
  return anchor.substr(0, slash + 1) + path;
}

int report_outcome(const chaos::ChaosReport& report, bool verbose) {
  if (!report.setup_error.empty()) {
    std::printf("setup error: %s\n", report.setup_error.c_str());
    return 1;
  }
  std::printf("digest %016llx | %zu service(s) running, %zu rejected | "
              "%llu fault(s) | %llu request(s): %llu routed, %llu refused\n",
              static_cast<unsigned long long>(report.digest),
              report.services_running, report.creations_rejected,
              static_cast<unsigned long long>(report.faults_injected),
              static_cast<unsigned long long>(report.requests),
              static_cast<unsigned long long>(report.routed),
              static_cast<unsigned long long>(report.refused));
  if (report.violations.empty()) {
    std::printf("invariants: all hold\n");
    return 0;
  }
  const std::size_t shown =
      verbose ? report.violations.size()
              : std::min<std::size_t>(report.violations.size(), 5);
  for (std::size_t i = 0; i < shown; ++i) {
    const chaos::Violation& violation = report.violations[i];
    std::printf("VIOLATION t=%.3fs [%s] %s\n", violation.at_s,
                violation.invariant.c_str(), violation.detail.c_str());
  }
  if (shown < report.violations.size()) {
    std::printf("... and %zu more\n", report.violations.size() - shown);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::global_logger().set_level(util::LogLevel::kOff);
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  const bool verbose = argc > 3 && std::strcmp(argv[3], "-v") == 0;

  if (mode == "gen") {
    const std::uint64_t seed = std::strtoull(argv[2], nullptr, 0);
    std::fputs(chaos::render_dsl(chaos::generate_scenario(seed)).c_str(),
               stdout);
    return 0;
  }
  if (mode == "run") {
    const std::uint64_t seed = std::strtoull(argv[2], nullptr, 0);
    if (verbose) util::global_logger().set_level(util::LogLevel::kInfo);
    return report_outcome(
        chaos::run_scenario(chaos::generate_scenario(seed)), verbose);
  }
  if (mode == "replay") {
    auto text = read_file(argv[2]);
    if (!text.ok()) {
      std::printf("%s\n", text.error().message.c_str());
      return 2;
    }
    auto spec = chaos::parse_dsl(text.value());
    if (!spec.ok()) {
      std::printf("parse error: %s\n", spec.error().message.c_str());
      return 2;
    }
    if (verbose) util::global_logger().set_level(util::LogLevel::kInfo);
    chaos::ChaosOptions options;
    if (!spec.value().snapshot.empty()) {
      // A relative `# snapshot:` path names a checkpoint next to the
      // reproducer, wherever it is replayed from.
      options.from_checkpoint =
          resolve_near(argv[2], spec.value().snapshot);
      std::printf("warm-starting from %s\n", options.from_checkpoint.c_str());
    }
    return report_outcome(chaos::run_scenario(spec.value(), options),
                          verbose);
  }
  if (mode == "checkpoint") {
    if (argc < 4) return usage();
    const std::uint64_t seed = std::strtoull(argv[2], nullptr, 0);
    chaos::ChaosOptions options;
    options.save_checkpoint = argv[3];
    const int rc = report_outcome(
        chaos::run_scenario(chaos::generate_scenario(seed), options), false);
    if (rc == 0) {
      std::printf("T0 world checkpointed to %s\n", argv[3]);
    }
    return rc;
  }
  if (mode == "fuzz") {
    const std::size_t count = std::strtoull(argv[2], nullptr, 10);
    std::uint64_t base = 0xC4A05EEDULL;
    std::string from;
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--from") == 0 && i + 1 < argc) {
        from = argv[++i];
      } else if (argv[i][0] != '-') {
        base = std::strtoull(argv[i], nullptr, 0);
      }
    }
    chaos::ChaosCheckpoint checkpoint;
    chaos::ChaosOptions options;
    if (!from.empty()) {
      auto loaded = chaos::read_chaos_checkpoint(from);
      if (!loaded.ok()) {
        std::printf("%s\n", loaded.error().message.c_str());
        return 2;
      }
      checkpoint = std::move(loaded).value();
      options.from_checkpoint = from;
      std::printf("warm-starting every seed from %s (%zu host(s), %zu "
                  "service(s))\n",
                  from.c_str(), checkpoint.base.hosts.size(),
                  checkpoint.base.services.size());
    }
    std::size_t bad = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t seed = sim::replica_seed(base, i);
      const chaos::ChaosSpec spec =
          from.empty()
              ? chaos::generate_scenario(seed)
              : chaos::generate_scenario_from_base(checkpoint.base, seed);
      const chaos::ChaosReport report = chaos::run_scenario(spec, options);
      if (report.violations.empty() && report.setup_error.empty()) continue;
      ++bad;
      std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
                  report.setup_error.empty()
                      ? report.violations.front().invariant.c_str()
                      : report.setup_error.c_str());
    }
    std::printf("%zu/%zu seed(s) with findings\n", bad, count);
    return bad ? 1 : 0;
  }
  return usage();
}
