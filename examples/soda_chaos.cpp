// Chaos-fuzzer CLI: generate, run, fuzz, shrink, and replay seeded chaos
// scenarios (src/chaos, DESIGN.md §13).
//
//   soda_chaos gen <seed>             print the scenario-DSL for one seed
//   soda_chaos run <seed> [-v]        run one seed with invariant checking
//   soda_chaos fuzz <count> [base]    run a corpus, report violations
//   soda_chaos replay <file> [-v]     replay a (shrunk) reproducer file
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chaos/dsl.hpp"
#include "chaos/generator.hpp"
#include "chaos/runner.hpp"
#include "chaos/shrink.hpp"
#include "core/hup.hpp"
#include "sim/parallel_runner.hpp"
#include "util/log.hpp"

using namespace soda;

namespace {

int usage() {
  std::printf(
      "usage: soda_chaos gen <seed> | run <seed> [-v] | fuzz <count> [base] |"
      " replay <file> [-v]\n");
  return 2;
}

Result<std::string> read_file(const char* path) {
  std::FILE* f = std::fopen(path, "r");
  if (!f) return Error{std::string("cannot open ") + path};
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

int report_outcome(const chaos::ChaosReport& report, bool verbose) {
  if (!report.setup_error.empty()) {
    std::printf("setup error: %s\n", report.setup_error.c_str());
    return 1;
  }
  std::printf("digest %016llx | %zu service(s) running, %zu rejected | "
              "%llu fault(s) | %llu request(s): %llu routed, %llu refused\n",
              static_cast<unsigned long long>(report.digest),
              report.services_running, report.creations_rejected,
              static_cast<unsigned long long>(report.faults_injected),
              static_cast<unsigned long long>(report.requests),
              static_cast<unsigned long long>(report.routed),
              static_cast<unsigned long long>(report.refused));
  if (report.violations.empty()) {
    std::printf("invariants: all hold\n");
    return 0;
  }
  const std::size_t shown =
      verbose ? report.violations.size()
              : std::min<std::size_t>(report.violations.size(), 5);
  for (std::size_t i = 0; i < shown; ++i) {
    const chaos::Violation& violation = report.violations[i];
    std::printf("VIOLATION t=%.3fs [%s] %s\n", violation.at_s,
                violation.invariant.c_str(), violation.detail.c_str());
  }
  if (shown < report.violations.size()) {
    std::printf("... and %zu more\n", report.violations.size() - shown);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::global_logger().set_level(util::LogLevel::kOff);
  if (argc < 3) return usage();
  const std::string mode = argv[1];
  const bool verbose = argc > 3 && std::strcmp(argv[3], "-v") == 0;

  if (mode == "gen") {
    const std::uint64_t seed = std::strtoull(argv[2], nullptr, 0);
    std::fputs(chaos::render_dsl(chaos::generate_scenario(seed)).c_str(),
               stdout);
    return 0;
  }
  if (mode == "run") {
    const std::uint64_t seed = std::strtoull(argv[2], nullptr, 0);
    if (verbose) util::global_logger().set_level(util::LogLevel::kInfo);
    return report_outcome(
        chaos::run_scenario(chaos::generate_scenario(seed)), verbose);
  }
  if (mode == "replay") {
    auto text = read_file(argv[2]);
    if (!text.ok()) {
      std::printf("%s\n", text.error().message.c_str());
      return 2;
    }
    auto spec = chaos::parse_dsl(text.value());
    if (!spec.ok()) {
      std::printf("parse error: %s\n", spec.error().message.c_str());
      return 2;
    }
    if (verbose) util::global_logger().set_level(util::LogLevel::kInfo);
    return report_outcome(chaos::run_scenario(spec.value()), verbose);
  }
  if (mode == "fuzz") {
    const std::size_t count = std::strtoull(argv[2], nullptr, 10);
    const std::uint64_t base =
        argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 0xC4A05EEDULL;
    std::size_t bad = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t seed = sim::replica_seed(base, i);
      const chaos::ChaosReport report =
          chaos::run_scenario(chaos::generate_scenario(seed));
      if (report.violations.empty() && report.setup_error.empty()) continue;
      ++bad;
      std::printf("seed %llu: %s\n", static_cast<unsigned long long>(seed),
                  report.setup_error.empty()
                      ? report.violations.front().invariant.c_str()
                      : report.setup_error.c_str());
    }
    std::printf("%zu/%zu seed(s) with findings\n", bad, count);
    return bad ? 1 : 0;
  }
  return usage();
}
