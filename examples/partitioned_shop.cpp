// A partitionable service (the paper's §3.5 extension): an on-line shop
// whose frontend, search, and database components each get their own
// virtual service node — different entry processes, different tailored
// guest OSes, different capacities — behind one service switch that routes
// requests by target prefix.
//
//   ./build/examples/partitioned_shop
#include <cstdio>

#include "core/hup.hpp"
#include "image/image.hpp"
#include "util/log.hpp"

using namespace soda;

int main() {
  util::global_logger().set_level(util::LogLevel::kWarn);
  auto tb = core::Hup::paper_testbed();
  core::Hup& hup = *tb.hup;
  hup.agent().register_asp("shop", "key");
  const auto loc = must(tb.repo->publish(image::online_shop_image()));

  core::ServiceCreationRequest request;
  request.credentials = {"shop", "key"};
  request.service_name = "online-shop";
  request.image_location = loc;
  // A partitioned image declares its component units; n must equal the sum.
  request.requirement = {image::online_shop_image().total_component_units(),
                         host::MachineConfig::table1_example()};
  core::ServiceCreationReply reply;
  hup.agent().service_creation(request, [&](auto result, sim::SimTime now) {
    reply = must(std::move(result));
    std::printf("online-shop up at t=%.2fs\n\n", now.to_seconds());
  });
  hup.engine().run();

  std::printf("component -> node mapping:\n");
  for (const auto& node : reply.nodes) {
    auto* vsn = hup.find_daemon(node.host_name)->find_node(node.node_name);
    std::printf("  %-9s %-14s on %-8s %s:%d  capacity %dM  guest runs '%s'\n",
                node.component.c_str(), node.node_name.c_str(),
                node.host_name.c_str(), node.address.to_string().c_str(),
                node.port, node.capacity_units,
                vsn->uml()
                    .processes()
                    .find_by_command("shop-")
                    .value_or(os::Process{})
                    .command.c_str());
  }

  core::ServiceSwitch* sw = hup.master().find_switch("online-shop");
  std::printf("\nswitch configuration file (component-tagged):\n%s\n",
              sw->config_text().c_str());

  std::printf("request routing by target prefix:\n");
  for (const char* target :
       {"/", "/index.html", "/search?q=mugs", "/cart/add/42", "/cart"}) {
    const auto backend = must(sw->route_target(target));
    std::printf("  %-16s -> %-9s (%s:%d)\n", target, backend.component.c_str(),
                backend.address.to_string().c_str(), backend.port);
    sw->on_request_complete(backend.address);
  }

  // Crash the db component: only /cart traffic is refused.
  for (const auto& node : reply.nodes) {
    if (node.component == "db") {
      hup.find_daemon(node.host_name)->find_node(node.node_name)->uml().crash();
    }
  }
  hup.health_monitor().probe_once();
  std::printf("\nafter the db guest crashes (health monitor has probed):\n");
  for (const char* target : {"/", "/search?q=x", "/cart/1"}) {
    const auto backend = sw->route_target(target);
    std::printf("  %-16s -> %s\n", target,
                backend.ok() ? backend.value().component.c_str() : "REFUSED");
  }
  std::printf("\nthe frontend and search components keep serving: component "
              "failure is contained, like\nevery other fault in SODA.\n");
  return 0;
}
