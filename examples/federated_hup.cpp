// A wide-area HUP built by federating local HUPs (paper §3.5): three sites,
// each with its own SODA Agent and Master, joined by 45 Mbps WAN links. The
// federation broker places services at the site with the most spare
// capacity and spills over when a site fills up; a service landing at a
// remote site pays the WAN for its image download.
//
//   ./build/examples/federated_hup
#include <cstdio>

#include "core/federation.hpp"
#include "image/image.hpp"
#include "util/log.hpp"

using namespace soda;

namespace {

void create(core::Federation& fed, const image::ImageLocation& loc,
            const std::string& name, int n) {
  core::ServiceCreationRequest request;
  request.credentials = {"asp", "key"};
  request.service_name = name;
  request.image_location = loc;
  request.requirement = {n, {}};
  const sim::SimTime start = fed.engine().now();
  fed.create_service(request, [&fed, name, start](auto reply, sim::SimTime t) {
    if (!reply.ok()) {
      std::printf("  %-10s FAILED: %s\n", name.c_str(),
                  reply.error().to_string().c_str());
      return;
    }
    const auto& nodes = reply.value().nodes;
    std::printf("  %-10s -> site %-6s host %-8s (%zu node(s), %.1f s to prime)\n",
                name.c_str(),
                fed.site_of(name) == fed.find_site("purdue")   ? "purdue"
                : fed.site_of(name) == fed.find_site("zurich") ? "zurich"
                                                               : "tokyo",
                nodes[0].host_name.c_str(), nodes.size(),
                (t - start).to_seconds());
  });
  fed.engine().run();
}

}  // namespace

int main() {
  util::global_logger().set_level(util::LogLevel::kWarn);
  core::Federation fed;  // 45 Mbps / 20 ms WAN mesh

  core::Hup& purdue = fed.add_site("purdue");
  purdue.add_host(host::HostSpec::seattle(), net::Ipv4Address(10, 1, 0, 1), 16);
  purdue.add_host(host::HostSpec::tacoma(), net::Ipv4Address(10, 1, 1, 1), 16);

  core::Hup& zurich = fed.add_site("zurich");
  zurich.add_host(host::HostSpec::tacoma(), net::Ipv4Address(10, 2, 0, 1), 16);

  core::Hup& tokyo = fed.add_site("tokyo");
  tokyo.add_host(host::HostSpec::tacoma(), net::Ipv4Address(10, 3, 0, 1), 16);

  fed.register_asp("asp", "key");
  // The ASP's repository lives at purdue; remote sites download over WAN.
  auto& repo = purdue.add_repository("asp-repo");
  fed.announce_repository(&repo);
  const auto loc =
      must(repo.publish(image::web_content_image(24 * 1024 * 1024)));

  std::printf("creating services until the federation fills:\n");
  create(fed, loc, "svc-1", 3);  // purdue (most capacity)
  create(fed, loc, "svc-2", 2);  // purdue's second host or next site
  create(fed, loc, "svc-3", 2);  // spills onward
  create(fed, loc, "svc-4", 2);  // and onward
  create(fed, loc, "svc-5", 9);  // too big for any single site

  std::printf("\nper-site load after placement:\n");
  for (const char* name : {"purdue", "zurich", "tokyo"}) {
    core::Hup* site = fed.find_site(name);
    const auto avail = site->master().hup_available();
    std::printf("  %-6s: %zu service(s), spare %s\n", name,
                site->master().service_count(), avail.to_string().c_str());
  }

  // Monitoring and teardown route transparently to the owning site.
  const auto status = fed.service_status({"asp", "key"}, "svc-3");
  if (status.ok()) {
    std::printf("\nsvc-3 status via the broker: %zu node(s), state %s\n",
                status.value().nodes.size(),
                std::string(core::service_state_name(status.value().state)).c_str());
  }
  must(fed.teardown_service(core::ServiceTeardownRequest{{"asp", "key"}, "svc-3"}));
  std::printf("svc-3 torn down at its owning site.\n");
  std::printf("\nnote the priming times: services placed across the WAN take "
              "visibly longer — the image\ncrosses the 45 Mbps inter-site "
              "pipe instead of the local 100 Mbps LAN.\n");
  return 0;
}
