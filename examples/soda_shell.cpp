// The scenario DSL as a tool: run a SODA script from a file (or stdin) and
// print the transcript. Expectation verbs make scripts executable tests.
//
//   ./build/examples/soda_shell <<'EOF'
//   host seattle 128.10.9.120
//   host tacoma  128.10.9.140
//   repo asp-repo
//   asp bioinfo key-123
//   publish web content-mb=16
//   create web-content web n=3
//   status web-content
//   expect-state web-content running
//   billing bioinfo
//   teardown web-content
//   expect-services 0
//   EOF
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/scenario.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  soda::util::global_logger().set_level(soda::util::LogLevel::kOff);

  std::string text;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "soda_shell: cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  }

  auto scenario = soda::core::Scenario::parse(text);
  if (!scenario.ok()) {
    std::fprintf(stderr, "parse error: %s\n", scenario.error().message.c_str());
    return 2;
  }
  auto transcript = scenario.value().run();
  if (!transcript.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 transcript.error().message.c_str());
    return 1;
  }
  for (const auto& line : transcript.value()) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}
