// The resource-isolation experiment as a runnable walk-through (paper §5,
// Figure 5): three virtual service nodes — web, comp, log — on one host,
// each entitled to an equal CPU share but offering more load. Compare the
// unmodified-Linux host OS against SODA's proportional-share scheduler, and
// try an unequal 4:2:1 entitlement.
//
//   ./build/examples/cpu_isolation
#include <cstdio>

#include "sched/cpu_sim.hpp"
#include "workload/apps.hpp"

using namespace soda;

namespace {

void report(const char* title, const sched::CpuSimResult& result) {
  double total = 0;
  for (const auto& [uid, seconds] : result.total_cpu_s) total += seconds;
  std::printf("%-45s", title);
  for (const char* uid : {"svc-web", "svc-comp", "svc-log"}) {
    std::printf("  %s %.3f", uid + 4, result.total_cpu_s.at(uid) / total);
  }
  std::printf("  (idle %.1f%%)\n", result.idle_fraction * 100);
}

}  // namespace

int main() {
  const auto duration = sim::SimTime::seconds(30);
  std::printf("CPU shares of web/comp/log over %.0f s (each entitled to "
              "1/3, all overloaded):\n\n", duration.to_seconds());

  {
    auto sim = workload::make_fig5_scenario(sched::make_timeshare_scheduler());
    report("host OS: unmodified Linux", sim.run(duration));
  }
  {
    auto sim = workload::make_fig5_scenario(sched::make_proportional_scheduler());
    report("host OS: SODA proportional-share", sim.run(duration));
  }

  std::printf("\nnow with unequal entitlements 4:2:1 "
              "(web:comp:log), proportional-share:\n\n");
  {
    auto sim = workload::make_fig5_scenario(sched::make_proportional_scheduler());
    sim.set_weight("svc-web", 4.0);
    sim.set_weight("svc-comp", 2.0);
    sim.set_weight("svc-log", 1.0);
    report("weights 4:2:1", sim.run(duration));
  }

  std::printf("\nunmodified Linux gives the CPU to whoever spins (comp); "
              "SODA's scheduler enforces the\nshares each service paid for, "
              "whatever its thread count or blocking pattern.\n");
  return 0;
}
