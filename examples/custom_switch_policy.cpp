// Replacing the default request switching policy with a service-specific
// one (paper §3.4): the ASP of a session-heavy service installs a
// "sticky-by-client-hash" policy in its own switch. Thanks to service
// isolation, even an ill-behaved custom policy only ever hurts its own
// service — demonstrated by also installing a broken policy and watching
// requests get refused without touching anything else.
//
//   ./build/examples/custom_switch_policy
#include <cstdio>

#include "core/hup.hpp"
#include "core/switch.hpp"
#include "image/image.hpp"
#include "util/log.hpp"

using namespace soda;

namespace {

host::MachineConfig fig2_unit() {
  host::MachineConfig m;
  m.cpu_mhz = 860;
  m.memory_mb = 192;
  m.disk_mb = 2048;
  m.bandwidth_mbps = 20;
  return m;
}

}  // namespace

int main() {
  util::global_logger().set_level(util::LogLevel::kWarn);
  auto tb = core::Hup::paper_testbed();
  core::Hup& hup = *tb.hup;
  hup.agent().register_asp("shop", "key");
  const auto loc =
      must(tb.repo->publish(image::web_content_image(8 * 1024 * 1024)));

  core::ServiceCreationRequest request;
  request.credentials = {"shop", "key"};
  request.service_name = "online-shop";
  request.image_location = loc;
  request.requirement = {3, fig2_unit()};
  hup.agent().service_creation(request,
                               [](core::ApiResult<core::ServiceCreationReply> r,
                                  sim::SimTime) { must(std::move(r)); });
  hup.engine().run();

  core::ServiceSwitch* sw = hup.master().find_switch("online-shop");
  std::printf("default policy: %s\n", sw->policy().name().c_str());

  // --- The ASP's own policy: stick each client to a backend by hash. ---
  // (Here the "client id" is a rotating counter standing in for a cookie.)
  auto session_counter = std::make_shared<std::uint64_t>(0);
  sw->set_policy(core::make_custom_policy(
      "sticky-session",
      [session_counter](const std::vector<core::BackEndState>& backends)
          -> std::optional<std::size_t> {
        if (backends.empty()) return std::nullopt;
        const std::uint64_t client = (*session_counter)++ % 7;  // 7 clients
        return static_cast<std::size_t>(client % backends.size());
      }));
  std::printf("ASP replaced it with: %s\n", sw->policy().name().c_str());

  for (int i = 0; i < 700; ++i) {
    const auto backend = must(sw->route());
    sw->on_request_complete(backend.address);
  }
  std::printf("\nper-backend mix under sticky-session (700 requests, 7 "
              "clients):\n");
  for (const auto& backend : sw->backends()) {
    std::printf("  %-14s capacity %d -> %llu requests\n",
                backend.entry.address.to_string().c_str(),
                backend.entry.capacity,
                static_cast<unsigned long long>(backend.requests_routed));
  }

  // --- An ill-behaved replacement: refuses everything. ---
  sw->set_policy(core::make_custom_policy(
      "broken", [](const std::vector<core::BackEndState>&) {
        return std::optional<std::size_t>{};
      }));
  int refused = 0;
  for (int i = 0; i < 10; ++i) {
    if (!sw->route().ok()) ++refused;
  }
  std::printf("\nbroken policy refused %d/10 requests — but only for "
              "'online-shop'. Other HUP services\nkeep their own switches "
              "and policies (isolation).\n", refused);

  // Back to the default.
  sw->set_policy(core::make_weighted_round_robin());
  std::printf("restored default: %s\n", sw->policy().name().c_str());
  return 0;
}
