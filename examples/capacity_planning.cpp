// Off-line QoS/resource profiling (the step the paper assumes has already
// happened before an ASP calls SODA): describe the workload, let the
// profiler derive <n, M>, then create the service with exactly that
// requirement and verify it carries the declared load.
//
//   ./build/examples/capacity_planning
#include <cstdio>

#include "core/hup.hpp"
#include "core/profiler.hpp"
#include "image/image.hpp"
#include "util/log.hpp"
#include "workload/siege.hpp"
#include "workload/webservice.hpp"

using namespace soda;

int main() {
  util::global_logger().set_level(util::LogLevel::kWarn);

  // 1. The ASP describes its expected workload.
  core::WorkloadProfile workload;
  workload.peak_request_rate = 250;          // req/s at peak
  workload.response_bytes = 12 * 1024;       // mean page size
  workload.target_utilization = 0.6;         // headroom for burstiness
  workload.dataset_mb = 512;
  workload.resident_memory_mb = 64;

  // 2. The profiler derives <n, M>, pricing CPU on the traced (in-VM) path.
  const auto report = must(core::profile_requirement(workload));
  std::printf("profiled requirement: %s\n",
              report.requirement.to_string().c_str());
  std::printf("  aggregate demand:  %.0f MHz CPU, %.1f Mbps outbound\n",
              report.cpu_mhz_needed, report.bandwidth_mbps_needed);
  std::printf("  binding resource:  %s\n\n",
              std::string(core::binding_resource_name(report.binding)).c_str());

  // 3. Create the service with the derived requirement.
  auto tb = core::Hup::paper_testbed();
  core::Hup& hup = *tb.hup;
  hup.agent().register_asp("asp", "key");
  const auto loc =
      must(tb.repo->publish(image::web_content_image(8 * 1024 * 1024)));
  core::ServiceCreationRequest request;
  request.credentials = {"asp", "key"};
  request.service_name = "planned";
  request.image_location = loc;
  request.requirement = report.requirement;
  core::ServiceCreationReply reply;
  hup.agent().service_creation(request, [&](auto result, sim::SimTime now) {
    reply = must(std::move(result));
    std::printf("service up at t=%.2fs with %zu node(s)\n", now.to_seconds(),
                reply.nodes.size());
  });
  hup.engine().run();

  // 4. Drive it at the declared peak rate and check the response times.
  std::vector<std::unique_ptr<workload::WebContentServer>> servers;
  core::ServiceSwitch* sw = hup.master().find_switch("planned");
  net::NodeId switch_node{};
  workload::SiegeConfig cfg;
  cfg.arrival_rate = workload.peak_request_rate;
  cfg.max_requests = 2000;
  cfg.response_bytes = workload.response_bytes;
  for (const auto& node : reply.nodes) {
    auto* daemon = hup.find_daemon(node.host_name);
    auto* vsn = daemon->find_node(node.node_name);
    std::vector<net::LinkId> outbound;
    if (auto link = hup.find_shaper(node.host_name)->link_for(vsn->address())) {
      outbound.push_back(*link);
    }
    servers.push_back(std::make_unique<workload::WebContentServer>(
        hup.engine(), hup.network(), vsn->net_node(), vm::ExecMode::kUmlTraced,
        daemon->host().spec().cpu_ghz, 4 * node.capacity_units,
        std::move(outbound)));
    if (node.address == sw->listen_address()) switch_node = vsn->net_node();
  }
  workload::SiegeClient siege2(hup.engine(), hup.network(), tb.client, sw,
                               switch_node, cfg);
  for (std::size_t i = 0; i < reply.nodes.size(); ++i) {
    siege2.register_backend(reply.nodes[i].address, servers[i].get(),
                            servers[i]->node());
  }
  siege2.start();
  hup.engine().run();

  std::printf("\nat the declared peak of %.0f req/s:\n", cfg.arrival_rate);
  std::printf("  served:    %llu/%llu\n",
              static_cast<unsigned long long>(siege2.completed()),
              static_cast<unsigned long long>(cfg.max_requests));
  std::printf("  mean RT:   %.2f ms   p95: %.2f ms   p99: %.2f ms\n",
              siege2.response_times().mean() * 1e3,
              siege2.response_times().p95() * 1e3,
              siege2.response_times().p99() * 1e3);
  std::printf("\nthe profiled <n, M> carries the declared peak with stable "
              "response times — capacity\nplanning done before the first "
              "SODA_service_creation call, as the paper envisions.\n");
  return siege2.completed() == cfg.max_requests ? 0 : 1;
}
