// The paper's §5 scenario end to end: a web content service and a honeypot
// ("attack emulation") service share the HUP. The honeypot's vulnerable
// ghttpd is exploited and its guest crashes — repeatedly — while the web
// content service keeps serving, demonstrating fault/attack isolation.
//
//   ./build/examples/web_and_honeypot
#include <cstdio>

#include "core/hup.hpp"
#include "image/image.hpp"
#include "util/log.hpp"
#include "workload/honeypot.hpp"
#include "workload/siege.hpp"
#include "workload/webservice.hpp"

using namespace soda;

namespace {

core::ServiceCreationReply create_or_die(core::Hup& hup,
                                         const image::ImageLocation& loc,
                                         const std::string& name, int n) {
  core::ServiceCreationRequest request;
  request.credentials = {"asp", "key"};
  request.service_name = name;
  request.image_location = loc;
  request.requirement = {n, {}};
  core::ServiceCreationReply out;
  hup.agent().service_creation(
      request, [&](core::ApiResult<core::ServiceCreationReply> reply,
                   sim::SimTime now) {
        out = must(std::move(reply));
        std::printf("[t=%6.2fs] %s is up (%zu node(s))\n", now.to_seconds(),
                    name.c_str(), out.nodes.size());
      });
  hup.engine().run();
  return out;
}

}  // namespace

int main() {
  util::global_logger().set_level(util::LogLevel::kWarn);
  auto tb = core::Hup::paper_testbed();
  core::Hup& hup = *tb.hup;
  hup.agent().register_asp("asp", "key");

  const auto web_loc =
      must(tb.repo->publish(image::web_content_image(16 * 1024 * 1024)));
  const auto pot_loc = must(tb.repo->publish(image::honeypot_image()));
  const auto web = create_or_die(hup, web_loc, "web-content", 1);
  const auto pot = create_or_die(hup, pot_loc, "honeypot", 1);

  auto* web_node =
      hup.find_daemon(web.nodes[0].host_name)->find_node("web-content/0");
  auto* pot_node =
      hup.find_daemon(pot.nodes[0].host_name)->find_node("honeypot/0");

  std::printf("\nWelcome to SODA — two guests, two process tables:\n\n");
  std::printf("[web guest ps -ef]\n%s\n[honeypot guest ps -ef]\n%s\n",
              web_node->uml().processes().ps_ef().c_str(),
              pot_node->uml().processes().ps_ef().c_str());

  // Attack the honeypot while sieging the web service.
  workload::GhttpdVictim victim(*pot_node);
  workload::Attacker attacker(victim);
  workload::WebContentServer server(hup.engine(), hup.network(),
                                    web_node->net_node(),
                                    vm::ExecMode::kUmlTraced, 2.6, 2);
  workload::SiegeConfig cfg;
  cfg.concurrency = 4;
  cfg.max_requests = 200;
  cfg.response_bytes = 16 * 1024;
  workload::SiegeClient siege(hup.engine(), hup.network(), tb.client, nullptr,
                              std::nullopt, cfg);
  siege.register_backend(web.nodes[0].address, &server, web_node->net_node());
  siege.start();
  for (int i = 1; i <= 8; ++i) {
    hup.engine().schedule_after(sim::SimTime::milliseconds(30 * i), [&] {
      const auto outcome = attacker.attack_once(hup.engine().now());
      std::printf("[t=%6.2fs] exploit -> shell on :%d, guest %s; restarted\n",
                  hup.engine().now().to_seconds(), outcome.shell_port,
                  outcome.victim_state.c_str());
    });
  }
  hup.engine().run();

  std::printf("\nweb served %llu/%llu requests (mean %.2f ms) while the "
              "honeypot crashed %llu times.\n",
              static_cast<unsigned long long>(siege.completed()),
              static_cast<unsigned long long>(cfg.max_requests),
              siege.response_times().mean() * 1e3,
              static_cast<unsigned long long>(victim.times_exploited()));
  std::printf("attack isolation: the exploited root was the guest's root — "
              "the host OS and the web\nservice never noticed.\n");
  return siege.completed() == cfg.max_requests ? 0 : 1;
}
